"""Runtime overhead measurement: vanilla vs instrumented executions.

One :class:`BenchmarkMeasurement` holds, per scheme, the protection
result (static counts) and the execution result (dynamic counts), and
derives every performance number the paper's figures report: runtime
overhead (Fig. 4(a)), binary size increase (Fig. 4(b)), IPC degradation
(Fig. 5(a)), and static/dynamic PA instruction counts (Fig. 6(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.config import DefenseConfig, SCHEMES
from ..core.framework import ProtectionResult, protect_all
from ..hardware.cpu import CPU, ExecutionResult
from ..ir.module import Module
from ..observability import current_tracer, get_metrics, publish_execution
from ..workloads.generator import GeneratedProgram


@dataclass
class SchemeRun:
    """One scheme's static protection + dynamic execution."""

    scheme: str
    protection: ProtectionResult
    execution: ExecutionResult
    #: True when the protection came from the compilation cache instead
    #: of being recompiled
    cache_hit: bool = False


@dataclass
class BenchmarkMeasurement:
    """All schemes' runs of one benchmark program."""

    name: str
    runs: Dict[str, SchemeRun] = field(default_factory=dict)

    def _run(self, scheme: str) -> SchemeRun:
        try:
            return self.runs[scheme]
        except KeyError:
            raise KeyError(f"scheme {scheme!r} was not measured for {self.name}") from None

    # -- Fig. 4(a): runtime overhead -----------------------------------------------

    def runtime_overhead(self, scheme: str) -> float:
        """Relative cycle overhead vs vanilla (0.13 = +13%)."""
        base = self._run("vanilla").execution.cycles
        inst = self._run(scheme).execution.cycles
        if base <= 0:
            return 0.0
        return inst / base - 1.0

    # -- Fig. 4(b): binary size ---------------------------------------------------------

    def binary_increase(self, scheme: str) -> float:
        base = self._run("vanilla").protection.binary_bytes
        inst = self._run(scheme).protection.binary_bytes
        if base <= 0:
            return 0.0
        return inst / base - 1.0

    # -- Fig. 5(a): IPC -----------------------------------------------------------------

    def ipc(self, scheme: str) -> float:
        return self._run(scheme).execution.ipc

    def ipc_degradation(self, scheme: str) -> float:
        base = self.ipc("vanilla")
        if base <= 0:
            return 0.0
        return 1.0 - self.ipc(scheme) / base

    # -- Fig. 6(b): PA instructions ----------------------------------------------------------

    def pa_static(self, scheme: str) -> int:
        return self._run(scheme).protection.pa_static

    def pa_dynamic(self, scheme: str) -> int:
        return self._run(scheme).execution.pa_dynamic

    def pa_executed_fraction(self, scheme: str) -> float:
        """Fraction of instrumented PA sites that executed dynamically
        at least once is not directly observable; the paper reports the
        dynamic/static *instruction* ratio instead."""
        static = self.pa_static(scheme)
        if static == 0:
            return 0.0
        # dynamic executions per static site, capped at 1 for the
        # "fraction of sites executed" reading
        return min(1.0, self.pa_dynamic(scheme) / static)

    def isolated_allocations(self, scheme: str) -> int:
        return self._run(scheme).execution.isolated_allocations


#: (cache root, cache key) -> protected Module, already parsed.  Keys
#: are content addresses, so a memoized module is exactly what parsing
#: the (digest-verified) entry text would produce; reusing the object
#: also carries over its attached decode/block caches, so warm runs
#: skip re-decoding too.  Never consulted when the cache has a fault
#: hook (chaos runs must see every deserialize).
_PARSED_MODULES: Dict[tuple, Module] = {}
_PARSED_MODULES_CAP = 128


def _memo_module(cache, key: str, module: Module) -> Module:
    if len(_PARSED_MODULES) >= _PARSED_MODULES_CAP:
        _PARSED_MODULES.pop(next(iter(_PARSED_MODULES)))
    _PARSED_MODULES[(cache.root, key)] = module
    return module


def _protect_schemes(module: Module, schemes: Sequence[str], cache):
    """Protect ``module`` under every scheme, through ``cache`` if given.

    Returns ``(results, hit_flags)``.  With a cache, the key is the
    printed *input* module plus each scheme's config; a full set of
    valid entries skips compilation entirely (entries carry the printed
    protected module, re-parsed here -- or served from the in-process
    parsed-module memo, which is seeded on store so a warm run never
    re-parses what this process just compiled).  On any miss the whole
    scheme set is recompiled via the shared-analysis pipeline and the
    missing entries are stored.
    """
    schemes = tuple(schemes)
    entries = None
    if cache is not None:
        from ..ir.parser import parse_module
        from ..ir.printer import print_module

        use_memo = cache.fault_hook is None
        text = print_module(module)
        keys = {
            scheme: cache.key_for(text, DefenseConfig(scheme=scheme))
            for scheme in schemes
        }
        entries = {scheme: cache.load(keys[scheme]) for scheme in schemes}
        if all(entry is not None for entry in entries.values()):
            results = {}
            for scheme in schemes:
                key = keys[scheme]
                parsed = _PARSED_MODULES.get((cache.root, key)) if use_memo else None
                if parsed is None:
                    parsed = parse_module(entries[scheme]["module"])
                    if use_memo:
                        _memo_module(cache, key, parsed)
                results[scheme] = ProtectionResult(
                    module=parsed,
                    scheme=scheme,
                    report=None,
                    pass_stats=entries[scheme]["pass_stats"],
                    timings=dict(entries[scheme].get("timings", {})),
                )
            return results, {scheme: True for scheme in schemes}

    results = protect_all(module, schemes=schemes)
    if cache is None:
        return results, {scheme: False for scheme in schemes}
    for scheme in schemes:
        if entries[scheme] is None:
            cache.store(
                keys[scheme],
                scheme,
                print_module(results[scheme].module),
                results[scheme].pass_stats,
                results[scheme].timings,
            )
            if cache.fault_hook is None and not cache.disabled:
                _memo_module(cache, keys[scheme], results[scheme].module)
    return results, {scheme: entries[scheme] is not None for scheme in schemes}


def measure_module(
    module: Module,
    name: str,
    inputs: Optional[Sequence[bytes]] = None,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 2024,
    interpreter: Optional[str] = None,
    cache_dir: Optional[str] = None,
) -> BenchmarkMeasurement:
    """Protect and execute one module under each scheme.

    ``interpreter`` selects the CPU backend (``"decoded"`` /
    ``"reference"``); ``None`` uses the CPU default.  ``cache_dir``
    enables the content-addressed compilation cache: cached schemes
    skip recompilation and are marked ``cache_hit`` on their runs.
    """
    cache = None
    if cache_dir is not None:
        # Imported lazily: repro.perf imports this module at package
        # init, so a top-level import back into repro.perf would cycle.
        from ..perf.cache import CompilationCache

        cache = CompilationCache(cache_dir)
    tracer = current_tracer()
    metrics = get_metrics()
    with tracer.span(f"compile:{name}", "compile", schemes=",".join(schemes)):
        protections, hit_flags = _protect_schemes(module, schemes, cache)
    measurement = BenchmarkMeasurement(name=name)
    for scheme in schemes:
        protection = protections[scheme]
        cpu = CPU(protection.module, seed=seed, interpreter=interpreter)
        with tracer.span(f"execute:{scheme}", "exec", benchmark=name):
            execution = cpu.run(inputs=list(inputs or []))
        publish_execution(metrics, execution, scheme=scheme)
        if not execution.ok:
            raise RuntimeError(
                f"{name}/{scheme}: benign execution failed "
                f"({execution.status}: {execution.trap})"
            )
        measurement.runs[scheme] = SchemeRun(
            scheme, protection, execution, cache_hit=hit_flags[scheme]
        )
    return measurement


def measure_program(
    program: GeneratedProgram,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 2024,
    interpreter: Optional[str] = None,
    cache_dir: Optional[str] = None,
) -> BenchmarkMeasurement:
    """Protect and execute a generated benchmark under each scheme."""
    return measure_module(
        program.compile(),
        name=program.profile.name,
        inputs=program.inputs,
        schemes=schemes,
        seed=seed,
        interpreter=interpreter,
        cache_dir=cache_dir,
    )


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    items = list(values)
    return sum(items) / len(items) if items else 0.0
