"""repro.metrics -- the evaluation's measurement layer.

Runtime overhead / IPC / binary size (Figs. 4-5), vulnerable-variable
and PA-instruction censuses (Fig. 6), branch security (Fig. 7(b)),
attack distance (§6.2), and the analytic bounds of Eqs. 1-5.
"""

from .attack_distance import AttackDistanceRow, attack_distance_row
from .bounds import BoundParameters, extract_bound_parameters
from .branch_security import BranchSecurityRow, branch_security_row
from .spills import (
    AARCH64_REGISTERS,
    SpillEstimate,
    cpa_spill_pa,
    estimate_spills,
    pythia_spill_pa,
)
from .overhead import (
    BenchmarkMeasurement,
    SchemeRun,
    mean,
    measure_module,
    measure_program,
)

__all__ = [
    "attack_distance_row",
    "AttackDistanceRow",
    "BenchmarkMeasurement",
    "BoundParameters",
    "branch_security_row",
    "BranchSecurityRow",
    "extract_bound_parameters",
    "mean",
    "measure_module",
    "measure_program",
    "SchemeRun",
    "SpillEstimate",
    "AARCH64_REGISTERS",
    "cpa_spill_pa",
    "estimate_spills",
    "pythia_spill_pa",
]
