"""Attack-distance metrics (Definition 2.4, §6.2).

Attack distance is the number of static IR instructions between where a
technique's protection starts and the branch predicate.  Three
distances are compared:

- **input channel**: how far the attacker's entry point is from the
  branch (the minimum the defense must cover);
- **DFI**: the length of DFI's backward slice, which terminates at
  pointer arithmetic and field-insensitive accesses;
- **Pythia**: the length of the full backward slice (PA protection of
  every variable encountered lets it keep slicing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.report import build_security_report
from ..core.framework import clone_module
from ..core.vulnerability import VulnerabilityAnalysis
from ..ir.module import Module
from ..transforms.mem2reg import Mem2Reg


@dataclass
class AttackDistanceRow:
    """Average distances over the IC-affected branches of one module."""

    name: str
    ic_distance: float
    dfi_distance: float
    pythia_distance: float
    affected_branches: int

    @property
    def pythia_exceeds_ic(self) -> bool:
        """Protection must start at least as far out as the attacker."""
        return self.pythia_distance >= self.ic_distance

    @property
    def pythia_exceeds_dfi(self) -> bool:
        return self.pythia_distance >= self.dfi_distance


def attack_distance_row(module: Module, name: str) -> AttackDistanceRow:
    """Compute the attack-distance row for one module."""
    module = clone_module(module)
    Mem2Reg().run(module)
    report = VulnerabilityAnalysis(module).analyze()
    security = build_security_report(report)
    affected = [v for v in security.verdicts if v.ic_affected]
    return AttackDistanceRow(
        name=name,
        ic_distance=security.mean_ic_distance,
        dfi_distance=security.mean_dfi_distance,
        pythia_distance=security.mean_pythia_distance,
        affected_branches=len(affected),
    )
