"""Analytic instruction-count bounds: Eqs. 1-5 of the paper.

Eq. 1 bounds the conservative scheme:   I_cpa  = B * v * (2u + 1)
Eq. 5 bounds the performance-aware one: I_py  <= B * (1 + 2du) * v'

with B conditional branches, v un-refined vulnerable variables with u
average uses, v' refined variables with du average input-channel uses.
The benches verify that the *measured* static PA counts respect these
bounds and that the refinement factor v/v' drives the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.vulnerability import VulnerabilityAnalysis, VulnerabilityReport
from ..ir.instructions import Load, Store
from ..ir.module import Module


@dataclass
class BoundParameters:
    """The symbols of Eqs. 1-5, extracted from a module's analysis."""

    branches: int  # B
    vulnerable: int  # v (un-refined)
    refined: int  # v'
    stack_refined: int  # sv
    heap_refined: int  # hv
    mean_uses: float  # u
    mean_ic_uses: float  # du

    def conservative_bound(self) -> float:
        """Eq. 1: maximum extra instructions for the CPA scheme."""
        return self.branches * self.vulnerable * (2 * self.mean_uses + 1)

    def pythia_bound(self) -> float:
        """Eq. 2: upper bound for the performance-aware scheme."""
        return self.branches * (
            self.stack_refined * (1 + 3 * self.mean_ic_uses)
            + self.heap_refined * (1 + 2 * self.mean_ic_uses)
        )

    def pythia_simplified_bound(self) -> float:
        """Eq. 5: B (1 + 2du) v'."""
        return self.branches * (1 + 2 * self.mean_ic_uses) * self.refined

    def refinement_factor(self) -> float:
        """v / v' -- the paper reports ~4.5x."""
        if self.refined == 0:
            return float(self.vulnerable) if self.vulnerable else 1.0
        return self.vulnerable / self.refined


def extract_bound_parameters(
    module: Module, report: Optional[VulnerabilityReport] = None
) -> BoundParameters:
    """Measure B, v, v', sv, hv, u, du for a module."""
    if report is None:
        report = VulnerabilityAnalysis(module).analyze()
    analysis = report.analysis
    assert analysis is not None

    branches = sum(
        len(f.conditional_branches()) for f in module.defined_functions()
    )

    def uses_of(objects) -> float:
        if not objects:
            return 0.0
        total = 0
        for obj in objects:
            total += len(analysis.memdu.loads_by_object.get(obj, []))
            total += len(analysis.memdu.defs_of_object(obj))
        return total / len(objects)

    def ic_uses_of(objects) -> float:
        if not objects:
            return 0.0
        total = 0
        for obj in objects:
            total += len(analysis.memdu.ic_defs_of_object(obj))
        return total / len(objects)

    return BoundParameters(
        branches=branches,
        vulnerable=len(report.cpa_variables),
        refined=len(report.refined_variables),
        stack_refined=len(report.stack_vulnerable),
        heap_refined=len(report.heap_vulnerable),
        mean_uses=uses_of(report.cpa_variables),
        mean_ic_uses=max(1.0, ic_uses_of(report.refined_variables)),
    )
