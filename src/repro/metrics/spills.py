"""Register-spill PA accounting (the paper's §5 machine pass).

Pythia's machine pass adds PA instructions wherever a protected value
is spilled by register allocation.  §6.2 quantifies the asymmetry:

    "a variable spilled twice in the CPA Scheme would have 7 PA
    instructions (4 encrypts and 3 decrypts), while the Pythia requires
    only 4 PA instructions (3 encrypts and 1 decrypt right after the
    input channel)"

The closed forms implemented here generalise that example:

- CPA re-signs at every spill and re-authenticates at every reload, on
  top of its baseline sign + per-use auths:
  ``encrypts = 2 + s``, ``decrypts = 1 + s`` -> ``3 + 2s`` total.
- Pythia's canary never lives in a register, so spills cost nothing;
  per protected variable with ``du`` input-channel uses it pays the
  init sign plus, per input-channel use, a re-randomising sign, a
  post-channel re-sign and one authenticating load:
  ``1 + 2*du`` encrypts + ``du`` decrypts -> ``1 + 3*du`` total.

Spill counts themselves are estimated from SSA liveness: values beyond
the register file at the pressure peak spill (AArch64 exposes ~28
allocatable GPRs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.liveness import Liveness
from ..ir.module import Module

#: Allocatable AArch64 general-purpose registers.
AARCH64_REGISTERS = 28


def cpa_spill_pa(spills: int) -> int:
    """Total PA instructions for one CPA-protected variable spilled
    ``spills`` times: (2 + s) encrypts + (1 + s) decrypts."""
    if spills < 0:
        raise ValueError("spills must be non-negative")
    return 3 + 2 * spills


def pythia_spill_pa(spills: int, ic_uses: int = 1) -> int:
    """Total PA instructions for one Pythia-canaried variable.

    Canaries live in memory, so spills add nothing: 1 init sign plus,
    per IC use, a re-randomising sign, a post-channel re-sign and one
    authenticating load (the paper's "3 encrypts and 1 decrypt").
    """
    if spills < 0 or ic_uses < 0:
        raise ValueError("counts must be non-negative")
    return 1 + 3 * ic_uses


@dataclass
class SpillEstimate:
    """Per-module spill pressure summary."""

    functions: int
    spilled_values: int
    peak_pressure: int
    #: extra PA instructions a CPA machine pass would add
    cpa_extra_pa: int
    #: extra PA instructions Pythia's machine pass would add (0: the
    #: canary is memory-resident)
    pythia_extra_pa: int = 0


def estimate_spills(module: Module, registers: int = AARCH64_REGISTERS) -> SpillEstimate:
    """Liveness-based spill estimate over all defined functions."""
    functions = spilled = peak = 0
    for function in module.defined_functions():
        if not function.blocks:
            continue
        functions += 1
        liveness = Liveness(function)
        pressure = liveness.max_pressure()
        peak = max(peak, pressure)
        spilled += liveness.estimated_spills(registers)
    return SpillEstimate(
        functions=functions,
        spilled_values=spilled,
        peak_pressure=peak,
        # each spilled CPA-protected value costs one extra sign + auth
        cpa_extra_pa=2 * spilled,
        pythia_extra_pa=0,
    )
