"""Branch-security metrics: Fig. 7(b) and the §6.2 security comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.report import SecurityReport, build_security_report
from ..core.framework import clone_module
from ..core.vulnerability import VulnerabilityAnalysis
from ..ir.module import Module
from ..transforms.mem2reg import Mem2Reg


@dataclass
class BranchSecurityRow:
    """One benchmark's row in the Fig. 7(b) comparison."""

    name: str
    total_branches: int
    pythia_secured: float
    dfi_secured: float
    pythia_extra_branches: int
    ic_affected_fraction: float

    @property
    def pythia_fully_secures(self) -> bool:
        return self.pythia_secured >= 1.0

    @property
    def dfi_fully_secures(self) -> bool:
        return self.dfi_secured >= 1.0

    @property
    def advantage(self) -> float:
        """Pythia's protection advantage over DFI in percentage points."""
        return self.pythia_secured - self.dfi_secured


def branch_security_row(module: Module, name: str) -> BranchSecurityRow:
    """Compute the branch-security row for one module."""
    module = clone_module(module)
    Mem2Reg().run(module)
    report = VulnerabilityAnalysis(module).analyze()
    security = build_security_report(report)
    affected = sum(1 for v in security.verdicts if v.ic_affected)
    total = max(1, security.total_branches)
    return BranchSecurityRow(
        name=name,
        total_branches=security.total_branches,
        pythia_secured=security.pythia_secured_fraction,
        dfi_secured=security.dfi_secured_fraction,
        pythia_extra_branches=security.pythia_extra_branches,
        ic_affected_fraction=affected / total,
    )
