"""Core value hierarchy of the repro IR.

Every operand in the IR is a :class:`Value`.  Values track their *uses*
(which instructions consume them), which gives the analyses in
:mod:`repro.analysis` their def-use chains for free.  The hierarchy is:

- :class:`Constant` -- immediate integers and ``null``.
- :class:`GlobalVariable` -- module-level storage, pointer-valued.
- :class:`Argument` -- a formal function parameter.
- :class:`repro.ir.instructions.Instruction` -- every computed value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .types import IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function
    from .instructions import Instruction


class Use:
    """A single use of a value: ``user.operands[index] is value``."""

    __slots__ = ("user", "index")

    def __init__(self, user: "Instruction", index: int):
        self.user = user
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Use({self.user!r}, {self.index})"


class Value:
    """Base class of everything that can appear as an operand."""

    def __init__(self, vtype: Type, name: str = ""):
        self.type = vtype
        self.name = name
        self.uses: List[Use] = []

    @property
    def users(self) -> List["Instruction"]:
        """The distinct instructions that use this value, in use order."""
        seen = []
        for use in self.uses:
            if use.user not in seen:
                seen.append(use.user)
        return seen

    def add_use(self, user: "Instruction", index: int) -> None:
        self.uses.append(Use(user, index))

    def remove_use(self, user: "Instruction", index: int) -> None:
        for i, use in enumerate(self.uses):
            if use.user is user and use.index == index:
                del self.uses[i]
                return

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every user's operand list to reference ``replacement``."""
        for use in list(self.uses):
            use.user.set_operand(use.index, replacement)

    def ref(self) -> str:
        """The textual reference used when this value appears as an operand."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    """An immediate integer constant (or ``null`` for pointer types)."""

    def __init__(self, vtype: Type, value: int):
        super().__init__(vtype, name="")
        if isinstance(vtype, IntType):
            value = vtype.wrap(value)
        self.value = value

    def ref(self) -> str:
        if isinstance(self.type, PointerType):
            return "null" if self.value == 0 else str(self.value)
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


def const_int(vtype: IntType, value: int) -> Constant:
    """Build an integer constant of the given type."""
    return Constant(vtype, value)


def null_pointer(vtype: PointerType) -> Constant:
    """Build the null constant of the given pointer type."""
    return Constant(vtype, 0)


class GlobalVariable(Value):
    """Module-level storage.  The value itself is a *pointer* to storage.

    ``initializer`` is either ``None`` (zero-initialised), an ``int``, a
    ``bytes`` object (for string literals), or a list of ints (for arrays).
    """

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: object = None,
        constant: bool = False,
    ):
        super().__init__(PointerType(value_type), name=name)
        self.value_type = value_type
        self.initializer = initializer
        self.constant = constant

    def ref(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, function: "Function", index: int, vtype: Type, name: str):
        super().__init__(vtype, name=name)
        self.function = function
        self.index = index


class UndefValue(Value):
    """An undefined value (used by mem2reg for paths with no store)."""

    def __init__(self, vtype: Type):
        super().__init__(vtype, name="")

    def ref(self) -> str:
        return "undef"
