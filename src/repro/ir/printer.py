"""Textual printing of IR modules.

The format is LLVM-flavoured and is the exact inverse of
:mod:`repro.ir.parser`: ``parse_module(print_module(m))`` reproduces the
module structurally (a property exercised by the round-trip tests).
"""

from __future__ import annotations

from typing import List

from .function import Function
from .module import Module
from .values import GlobalVariable


def _format_initializer(gvar: GlobalVariable) -> str:
    init = gvar.initializer
    if init is None:
        return "zeroinitializer"
    if isinstance(init, bytes):
        body = "".join(f"\\{b:02x}" for b in init)
        return f'c"{body}"'
    if isinstance(init, int):
        return str(init)
    if isinstance(init, (list, tuple)):
        return "[" + ", ".join(str(v) for v in init) + "]"
    raise TypeError(f"unsupported initializer: {init!r}")


def print_global(gvar: GlobalVariable) -> str:
    kind = "constant" if gvar.constant else "global"
    return f"@{gvar.name} = {kind} {gvar.value_type} {_format_initializer(gvar)}"


def print_function(function: Function) -> str:
    ftype = function.function_type
    params = ", ".join(f"{arg.type} %{arg.name}" for arg in function.args)
    if ftype.varargs:
        params = f"{params}, ..." if params else "..."
    header = f"{ftype.return_type} @{function.name}({params})"
    if function.is_declaration:
        line = f"declare {header}"
        if function.input_channel_kind:
            line += f" !ic:{function.input_channel_kind}"
        return line
    lines = [f"define {header} {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {inst}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render the whole module as text."""
    sections: List[str] = [f"; module: {module.name}"]
    for struct in module.structs.values():
        fields = ", ".join(str(ftype) for _, ftype in struct.fields)
        names = ",".join(fname for fname, _ in struct.fields)
        sections.append(f"%{struct.name} = type {{ {fields} }} ; fields: {names}")
    for gvar in module.globals.values():
        sections.append(print_global(gvar))
    # Declarations first so call sites in definitions always resolve
    # when the text is re-parsed sequentially.
    for function in module.functions.values():
        if function.is_declaration:
            sections.append(print_function(function))
    for function in module.functions.values():
        if not function.is_declaration:
            sections.append(print_function(function))
    return "\n\n".join(sections) + "\n"
