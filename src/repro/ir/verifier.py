"""Structural well-formedness checks for IR modules.

The verifier is run after the front-end and after every transform in the
test suite; instrumentation passes that corrupt the IR are caught here
rather than as mysterious interpreter failures.
"""

from __future__ import annotations

from typing import List, Set

from .function import BasicBlock, Function
from .instructions import Call, CondBranch, Instruction, Phi, Ret
from .module import Module
from .types import I1
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerificationError(Exception):
    """Raised when a module violates IR invariants."""

    def __init__(self, errors: List[str]):
        super().__init__("\n".join(errors))
        self.errors = errors


def verify_module(module: Module) -> None:
    """Verify every defined function; raise :class:`VerificationError`."""
    errors: List[str] = []
    for function in module.defined_functions():
        errors.extend(_verify_function(function))
    if errors:
        raise VerificationError(errors)


def _verify_function(function: Function) -> List[str]:
    errors: List[str] = []
    where = f"in @{function.name}"
    if not function.blocks:
        return [f"{where}: defined function has no blocks"]

    seen_names: Set[str] = set()
    for block in function.blocks:
        if block.name in seen_names:
            errors.append(f"{where}: duplicate block name %{block.name}")
        seen_names.add(block.name)

    # Predecessor map computed once up front: the per-block
    # ``predecessors`` property rescans every block in the function, so
    # calling it per block made verification quadratic in block count.
    preds: dict = {block: set() for block in function.blocks}
    for block in function.blocks:
        for successor in block.successors:
            if successor in preds:
                preds[successor].add(block)

    value_names: Set[str] = {arg.name for arg in function.args}
    for block in function.blocks:
        errors.extend(_verify_block(function, block, value_names, where, preds[block]))

    return errors


def _verify_block(
    function: Function,
    block: BasicBlock,
    value_names: Set[str],
    where: str,
    preds: Set[BasicBlock],
) -> List[str]:
    errors: List[str] = []
    blk = f"{where}, block %{block.name}"
    if not block.instructions:
        errors.append(f"{blk}: empty block")
        return errors

    terminator = block.instructions[-1]
    if not terminator.is_terminator:
        errors.append(f"{blk}: does not end with a terminator")
    for inst in block.instructions[:-1]:
        if inst.is_terminator:
            errors.append(f"{blk}: terminator {inst.opcode} in mid-block")

    past_phis = False
    for inst in block.instructions:
        if isinstance(inst, Phi):
            if past_phis:
                errors.append(f"{blk}: phi %{inst.name} after non-phi instruction")
            incoming = set(inst.incoming_blocks)
            if incoming != preds:
                got = sorted(b.name for b in incoming)
                want = sorted(b.name for b in preds)
                errors.append(
                    f"{blk}: phi %{inst.name} incoming blocks {got} != predecessors {want}"
                )
            for value, _ in inst.incomings:
                if value.type != inst.type and not isinstance(value, UndefValue):
                    errors.append(
                        f"{blk}: phi %{inst.name} incoming type {value.type} != {inst.type}"
                    )
        else:
            past_phis = True

        if not inst.type.is_void:
            if not inst.name:
                errors.append(f"{blk}: unnamed value-producing {inst.opcode}")
            elif inst.name in value_names:
                errors.append(f"{blk}: duplicate value name %{inst.name}")
            else:
                value_names.add(inst.name)

        errors.extend(_verify_instruction(function, inst, blk))
    return errors


def _verify_instruction(function: Function, inst: Instruction, blk: str) -> List[str]:
    errors: List[str] = []
    if isinstance(inst, CondBranch) and inst.condition.type != I1:
        errors.append(f"{blk}: br condition is {inst.condition.type}, not i1")
    if isinstance(inst, Ret):
        want = function.function_type.return_type
        if inst.value is None:
            if not want.is_void:
                errors.append(f"{blk}: ret void from {want} function")
        elif inst.value.type != want:
            errors.append(f"{blk}: ret {inst.value.type} from {want} function")
    if isinstance(inst, Call):
        ftype = inst.callee.function_type
        args = inst.args
        if len(args) < len(ftype.params) or (
            len(args) > len(ftype.params) and not ftype.varargs
        ):
            errors.append(
                f"{blk}: call @{inst.callee.name} with {len(args)} args, "
                f"expected {len(ftype.params)}"
            )
        for arg, ptype in zip(args, ftype.params):
            if arg.type != ptype:
                errors.append(
                    f"{blk}: call @{inst.callee.name} argument type {arg.type}, "
                    f"expected {ptype}"
                )
    for operand in inst.operands:
        if isinstance(operand, Instruction):
            if operand.function is not function:
                errors.append(
                    f"{blk}: operand %{operand.name} of {inst.opcode} belongs to "
                    "another function"
                )
        elif isinstance(operand, Argument):
            if operand.function is not function:
                errors.append(
                    f"{blk}: argument operand %{operand.name} belongs to another function"
                )
        elif not isinstance(operand, (Constant, GlobalVariable, UndefValue, Function)):
            errors.append(f"{blk}: unexpected operand kind {type(operand).__name__}")
    return errors
