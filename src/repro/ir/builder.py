"""A positioned instruction builder, in the style of ``llvm::IRBuilder``.

The builder owns naming: every produced value gets a fresh,
function-unique name derived from an opcode hint, so modules built
through it always print and re-parse cleanly.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Union

from .function import BasicBlock, Function
from .instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CondBranch,
    DfiChkDef,
    DfiSetDef,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    PacAuth,
    PacSign,
    Phi,
    Ret,
    SecAssert,
    Select,
    Store,
)
from .types import I64, IntType, PointerType, Type
from .values import Constant, Value


class IRBuilder:
    """Builds instructions at an insertion point inside a basic block."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self._insert_index: Optional[int] = None  # None = append at end

    # -- positioning ---------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block
        self._insert_index = None

    def position_before(self, inst: Instruction) -> None:
        if inst.parent is None:
            raise ValueError("instruction is not attached to a block")
        self.block = inst.parent
        self._insert_index = self.block.instructions.index(inst)

    def position_after(self, inst: Instruction) -> None:
        if inst.parent is None:
            raise ValueError("instruction is not attached to a block")
        self.block = inst.parent
        self._insert_index = self.block.instructions.index(inst) + 1

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder is not positioned inside a function")
        return self.block.parent

    def _insert(self, inst: Instruction, hint: str) -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion block")
        if not inst.type.is_void and not inst.name:
            inst.name = self.function.unique_name(hint)
        if self._insert_index is None:
            self.block.append(inst)
        else:
            self.block.insert(self._insert_index, inst)
            self._insert_index += 1
        return inst

    # -- memory --------------------------------------------------------------

    def alloca(self, allocated_type: Type, name: str = "") -> Alloca:
        return self._insert(Alloca(allocated_type, name=name), "a")  # type: ignore[return-value]

    def load(self, ptr: Value, name: str = "") -> Load:
        return self._insert(Load(ptr, name=name), "l")  # type: ignore[return-value]

    def store(self, value: Value, ptr: Value) -> Store:
        return self._insert(Store(value, ptr), "")  # type: ignore[return-value]

    def gep(self, ptr: Value, indices: Sequence[Union[Value, int]], name: str = "") -> GetElementPtr:
        resolved = [self._as_index(i) for i in indices]
        return self._insert(GetElementPtr(ptr, resolved, name=name), "p")  # type: ignore[return-value]

    @staticmethod
    def _as_index(index: Union[Value, int]) -> Value:
        if isinstance(index, int):
            return Constant(I64, index)
        return index

    # -- arithmetic ----------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self._insert(BinOp(op, lhs, rhs, name=name), op)  # type: ignore[return-value]

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("mul", lhs, rhs, name)

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self._insert(ICmp(predicate, lhs, rhs, name=name), "c")  # type: ignore[return-value]

    def cast(self, op: str, value: Value, to_type: Type, name: str = "") -> Cast:
        return self._insert(Cast(op, value, to_type, name=name), op)  # type: ignore[return-value]

    def select(self, cond: Value, true_value: Value, false_value: Value, name: str = "") -> Select:
        return self._insert(Select(cond, true_value, false_value, name=name), "sel")  # type: ignore[return-value]

    # -- control flow ----------------------------------------------------------

    def jump(self, target: BasicBlock) -> Jump:
        return self._insert(Jump(target), "")  # type: ignore[return-value]

    def cond_branch(self, cond: Value, true_block: BasicBlock, false_block: BasicBlock) -> CondBranch:
        return self._insert(CondBranch(cond, true_block, false_block), "")  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._insert(Ret(value), "")  # type: ignore[return-value]

    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Call:
        return self._insert(Call(callee, args, name=name), "call")  # type: ignore[return-value]

    def phi(self, vtype: Type, name: str = "") -> Phi:
        return self._insert(Phi(vtype, name=name), "phi")  # type: ignore[return-value]

    # -- security intrinsics ---------------------------------------------------

    def pac_sign(self, value: Value, modifier: Value, key_id: str = "da", name: str = "") -> PacSign:
        return self._insert(PacSign(value, modifier, key_id, name=name), "pac")  # type: ignore[return-value]

    def pac_auth(self, value: Value, modifier: Value, key_id: str = "da", name: str = "") -> PacAuth:
        return self._insert(PacAuth(value, modifier, key_id, name=name), "aut")  # type: ignore[return-value]

    def dfi_setdef(self, ptr: Value, def_id: int, size: int = 8) -> DfiSetDef:
        return self._insert(DfiSetDef(ptr, def_id, size), "")  # type: ignore[return-value]

    def dfi_chkdef(self, ptr: Value, allowed: FrozenSet[int], size: int = 8) -> DfiChkDef:
        return self._insert(DfiChkDef(ptr, allowed, size), "")  # type: ignore[return-value]

    def sec_assert(self, cond: Value, kind: str = "check") -> SecAssert:
        return self._insert(SecAssert(cond, kind), "")  # type: ignore[return-value]

    # -- constants -------------------------------------------------------------

    @staticmethod
    def const(vtype: IntType, value: int) -> Constant:
        return Constant(vtype, value)
