"""Instruction set of the repro IR.

The instruction set mirrors the LLVM subset that the Pythia paper's
passes operate over: stack allocation, loads/stores, pointer arithmetic
(``getelementptr``), integer arithmetic and comparison, control flow,
calls, and phi nodes -- plus the security intrinsics that the defense
passes insert:

- :class:`PacSign` / :class:`PacAuth` model the ARM Pointer
  Authentication ``PAC*`` / ``AUT*`` instructions.
- :class:`DfiSetDef` / :class:`DfiChkDef` model the Castro et al. DFI
  instrumentation used as the paper's comparison baseline.

Every instruction is a :class:`~repro.ir.values.Value`; operand lists
maintain def-use chains automatically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, List, Optional, Sequence, Tuple, Union

from .types import (
    ArrayType,
    FunctionType,
    I1,
    I64,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from .values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover
    from .function import BasicBlock, Function


class Instruction(Value):
    """Base class of all instructions.

    Subclasses set :attr:`opcode`; terminators override
    :attr:`is_terminator`.
    """

    opcode: str = "?"
    is_terminator: bool = False

    def __init__(self, vtype: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(vtype, name=name)
        self.parent: Optional["BasicBlock"] = None
        self._operands: List[Value] = []
        for operand in operands:
            self.append_operand(operand)

    # -- operand management -------------------------------------------------

    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(self._operands)

    def append_operand(self, value: Value) -> None:
        index = len(self._operands)
        self._operands.append(value)
        value.add_use(self, index)

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old.remove_use(self, index)
        self._operands[index] = value
        value.add_use(self, index)

    def drop_all_operands(self) -> None:
        for index, operand in enumerate(self._operands):
            operand.remove_use(self, index)
        self._operands = []

    def drop_trailing_operand(self) -> None:
        """Remove the last operand (used when shrinking call arg lists)."""
        index = len(self._operands) - 1
        operand = self._operands.pop()
        operand.remove_use(self, index)

    # -- block linkage -------------------------------------------------------

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    def erase_from_parent(self) -> None:
        """Unlink from the containing block and drop all operand uses."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_all_operands()

    # -- printing ------------------------------------------------------------

    def _operand_refs(self) -> str:
        return ", ".join(f"{op.type} {op.ref()}" for op in self._operands)

    def __str__(self) -> str:
        if self.type.is_void:
            return f"{self.opcode} {self._operand_refs()}"
        return f"%{self.name} = {self.opcode} {self._operand_refs()}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {str(self)}>"


# ---------------------------------------------------------------------------
# Memory instructions
# ---------------------------------------------------------------------------


class Alloca(Instruction):
    """Reserve stack storage for one value of ``allocated_type``.

    Yields a pointer into the current stack frame.  Stack re-layout
    (Algorithm 3 of the paper) works by reordering a function's allocas.
    """

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = ""):
        super().__init__(PointerType(allocated_type), [], name=name)
        self.allocated_type = allocated_type

    def __str__(self) -> str:
        return f"%{self.name} = alloca {self.allocated_type}"


class Load(Instruction):
    """Load a value of the pointee type through a pointer operand."""

    opcode = "load"

    def __init__(self, ptr: Value, name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"load requires a pointer operand, got {ptr.type}")
        super().__init__(ptr.type.pointee, [ptr], name=name)

    @property
    def pointer(self) -> Value:
        return self._operands[0]

    def __str__(self) -> str:
        return f"%{self.name} = load {self.type}, {self.pointer.type} {self.pointer.ref()}"


class Store(Instruction):
    """Store ``value`` through ``ptr``.  Produces no value."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"store requires a pointer operand, got {ptr.type}")
        super().__init__(VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self._operands[0]

    @property
    def pointer(self) -> Value:
        return self._operands[1]


class GetElementPtr(Instruction):
    """Pointer arithmetic with LLVM ``getelementptr`` semantics.

    The first index scales by the pointee size; later indices step into
    arrays (dynamic) or struct fields (constant only).  The paper's DFI
    baseline gives up on slices containing this instruction when it is
    used for raw pointer arithmetic or field-insensitive access -- see
    :meth:`is_pointer_arithmetic` and :meth:`is_field_access`.
    """

    opcode = "getelementptr"

    def __init__(self, ptr: Value, indices: Sequence[Value], name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise TypeError(f"gep requires a pointer operand, got {ptr.type}")
        result = self._walk_type(ptr.type, indices)
        super().__init__(PointerType(result), [ptr, *indices], name=name)

    @staticmethod
    def _walk_type(ptr_type: PointerType, indices: Sequence[Value]) -> Type:
        current: Type = ptr_type.pointee
        for index in indices[1:]:
            if isinstance(current, ArrayType):
                current = current.element
            elif isinstance(current, StructType):
                if not isinstance(index, Constant):
                    raise TypeError("struct gep index must be constant")
                current = current.field_type(index.value)
            else:
                raise TypeError(f"cannot index into {current}")
        return current

    @property
    def pointer(self) -> Value:
        return self._operands[0]

    @property
    def indices(self) -> Tuple[Value, ...]:
        return tuple(self._operands[1:])

    def is_field_access(self) -> bool:
        """True when any index steps into a struct field."""
        current: Type = self.pointer.type.pointee  # type: ignore[union-attr]
        for index in self.indices[1:]:
            if isinstance(current, StructType):
                return True
            if isinstance(current, ArrayType):
                current = current.element
        return isinstance(current, StructType) and len(self.indices) > 1

    def is_pointer_arithmetic(self) -> bool:
        """True when the leading index is a non-zero / non-constant offset.

        This is the raw ``p + i`` pattern the paper highlights: the kind
        of computed pointer DFI cannot reason about.
        """
        first = self.indices[0]
        return not (isinstance(first, Constant) and first.value == 0)


# ---------------------------------------------------------------------------
# Arithmetic and comparison
# ---------------------------------------------------------------------------

BINARY_OPS = ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr", "lshr")


class BinOp(Instruction):
    """Two-operand integer arithmetic."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op: {op}")
        if lhs.type != rhs.type:
            raise TypeError(f"binop operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name=name)
        self.op = op

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return self.op

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]

    def __str__(self) -> str:
        return (
            f"%{self.name} = {self.op} {self.type} "
            f"{self.lhs.ref()}, {self.rhs.ref()}"
        )


ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")


class ICmp(Instruction):
    """Integer / pointer comparison producing an ``i1``."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise TypeError(f"icmp operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(I1, [lhs, rhs], name=name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self._operands[0]

    @property
    def rhs(self) -> Value:
        return self._operands[1]

    def __str__(self) -> str:
        return (
            f"%{self.name} = icmp {self.predicate} {self.lhs.type} "
            f"{self.lhs.ref()}, {self.rhs.ref()}"
        )


CAST_OPS = ("trunc", "zext", "sext", "ptrtoint", "inttoptr", "bitcast")


class Cast(Instruction):
    """Width and pointer/integer conversions."""

    def __init__(self, op: str, value: Value, to_type: Type, name: str = ""):
        if op not in CAST_OPS:
            raise ValueError(f"unknown cast op: {op}")
        super().__init__(to_type, [value], name=name)
        self.op = op

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return self.op

    @property
    def value(self) -> Value:
        return self._operands[0]

    def __str__(self) -> str:
        return (
            f"%{self.name} = {self.op} {self.value.type} "
            f"{self.value.ref()} to {self.type}"
        )


class Select(Instruction):
    """``select i1 %c, T %a, T %b`` -- branchless conditional."""

    opcode = "select"

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = ""):
        if true_value.type != false_value.type:
            raise TypeError("select arms must have the same type")
        super().__init__(true_value.type, [cond, true_value, false_value], name=name)

    @property
    def condition(self) -> Value:
        return self._operands[0]

    @property
    def true_value(self) -> Value:
        return self._operands[1]

    @property
    def false_value(self) -> Value:
        return self._operands[2]


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


class Jump(Instruction):
    """Unconditional branch."""

    opcode = "br"
    is_terminator = True

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID, [])
        self.target = target

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.target]

    def __str__(self) -> str:
        return f"br label %{self.target.name}"


class CondBranch(Instruction):
    """Conditional branch on an ``i1`` -- the unit of control-flow bending."""

    opcode = "br"
    is_terminator = True

    def __init__(self, cond: Value, true_block: "BasicBlock", false_block: "BasicBlock"):
        super().__init__(VOID, [cond])
        self.true_block = true_block
        self.false_block = false_block

    @property
    def condition(self) -> Value:
        return self._operands[0]

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.true_block, self.false_block]

    def __str__(self) -> str:
        return (
            f"br i1 {self.condition.ref()}, label %{self.true_block.name}, "
            f"label %{self.false_block.name}"
        )


class Ret(Instruction):
    """Return from the current function, optionally with a value."""

    opcode = "ret"
    is_terminator = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self._operands[0] if self._operands else None

    @property
    def successors(self) -> List["BasicBlock"]:
        return []

    def __str__(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.type} {self.value.ref()}"


class Call(Instruction):
    """Direct call.  ``callee`` is a :class:`repro.ir.function.Function`,
    which may be a declaration (external library function / input channel).
    """

    opcode = "call"

    def __init__(self, callee: "Function", args: Sequence[Value], name: str = ""):
        ftype = callee.function_type
        super().__init__(ftype.return_type, list(args), name=name)
        self.callee = callee

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands

    def __str__(self) -> str:
        arg_text = ", ".join(f"{a.type} {a.ref()}" for a in self.args)
        head = f"call {self.type} @{self.callee.name}({arg_text})"
        if self.type.is_void:
            return head
        return f"%{self.name} = {head}"


class Phi(Instruction):
    """SSA phi node.  Incoming blocks are kept parallel to operands."""

    opcode = "phi"

    def __init__(self, vtype: Type, name: str = ""):
        super().__init__(vtype, [], name=name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incomings(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self._operands, self.incoming_blocks))

    def incoming_for_block(self, block: "BasicBlock") -> Value:
        for value, pred in self.incomings:
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming for block {block.name}")

    def __str__(self) -> str:
        parts = ", ".join(
            f"[ {value.ref()}, %{block.name} ]" for value, block in self.incomings
        )
        return f"%{self.name} = phi {self.type} {parts}"


# ---------------------------------------------------------------------------
# Security intrinsics
# ---------------------------------------------------------------------------


class PacSign(Instruction):
    """Model of ARM ``PACIA``/``PACDA``: embed a PAC in a 64-bit value.

    ``modifier`` is the tweak (the paper uses the storage address, i.e.
    the canary slot or variable slot address).  ``key_id`` selects one of
    the simulated per-process PA keys.
    """

    opcode = "pac.sign"

    def __init__(self, value: Value, modifier: Value, key_id: str = "da", name: str = ""):
        super().__init__(value.type, [value, modifier], name=name)
        self.key_id = key_id

    @property
    def value(self) -> Value:
        return self._operands[0]

    @property
    def modifier(self) -> Value:
        return self._operands[1]

    def __str__(self) -> str:
        return (
            f"%{self.name} = pac.sign.{self.key_id} {self.value.type} "
            f"{self.value.ref()}, {self.modifier.type} {self.modifier.ref()}"
        )


class PacAuth(Instruction):
    """Model of ARM ``AUTIA``/``AUTDA``: verify and strip a PAC.

    Authentication of a value whose PAC does not match raises a
    :class:`repro.hardware.cpu.PacAuthenticationError` in the simulated
    CPU -- the paper's "program crash on memory violation".
    """

    opcode = "pac.auth"

    def __init__(self, value: Value, modifier: Value, key_id: str = "da", name: str = ""):
        super().__init__(value.type, [value, modifier], name=name)
        self.key_id = key_id

    @property
    def value(self) -> Value:
        return self._operands[0]

    @property
    def modifier(self) -> Value:
        return self._operands[1]

    def __str__(self) -> str:
        return (
            f"%{self.name} = pac.auth.{self.key_id} {self.value.type} "
            f"{self.value.ref()}, {self.modifier.type} {self.modifier.ref()}"
        )


def is_pa_instruction(inst: Instruction) -> bool:
    """True for instructions that the paper counts as "ARM-PA instructions"."""
    return isinstance(inst, (PacSign, PacAuth))


class DfiSetDef(Instruction):
    """DFI baseline: record that definition ``def_id`` last wrote ``ptr``.

    ``size`` is the byte width of the guarded store so the runtime
    definitions table can track at byte granularity -- overflows land
    *between* variable start addresses.
    """

    opcode = "dfi.setdef"

    def __init__(self, ptr: Value, def_id: int, size: int = 8):
        super().__init__(VOID, [ptr])
        self.def_id = def_id
        self.size = size

    @property
    def pointer(self) -> Value:
        return self._operands[0]

    def __str__(self) -> str:
        return (
            f"dfi.setdef {self.pointer.type} {self.pointer.ref()}, "
            f"{self.def_id}, {self.size}"
        )


class DfiChkDef(Instruction):
    """DFI baseline: trap unless the last writer of ``ptr`` is permitted."""

    opcode = "dfi.chkdef"

    def __init__(self, ptr: Value, allowed: FrozenSet[int], size: int = 8):
        super().__init__(VOID, [ptr])
        self.allowed = frozenset(allowed)
        self.size = size

    @property
    def pointer(self) -> Value:
        return self._operands[0]

    def __str__(self) -> str:
        ids = ",".join(str(i) for i in sorted(self.allowed))
        return (
            f"dfi.chkdef {self.pointer.type} {self.pointer.ref()}, "
            f"{{{ids}}}, {self.size}"
        )


class SecAssert(Instruction):
    """Trap when the ``i1`` operand is false.

    Used to lower explicit canary comparisons; ``kind`` labels the trap
    for security reports (e.g. ``"canary"``).
    """

    opcode = "sec.assert"

    def __init__(self, cond: Value, kind: str = "check"):
        super().__init__(VOID, [cond])
        self.kind = kind

    @property
    def condition(self) -> Value:
        return self._operands[0]

    def __str__(self) -> str:
        return f"sec.assert {self.condition.ref()}, !{self.kind}"
