"""Type system for the repro IR.

The IR is a small, typed, LLVM-like intermediate representation.  Types
know their own size and alignment so that the code generator and the
hardware model can lay out stack frames, heap objects, and globals with
byte-level precision -- a requirement for simulating the buffer-overflow
attacks the paper defends against.

All types are immutable and interned where practical; equality is
structural.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class Type:
    """Base class of every IR type."""

    #: Size of a value of this type in bytes (0 for void/function types).
    size: int = 0
    #: Required alignment in bytes.
    alignment: int = 1

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)


class VoidType(Type):
    """The type of instructions that produce no value."""

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """A fixed-width two's-complement integer type (i1/i8/i16/i32/i64)."""

    def __init__(self, bits: int):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits
        self.size = max(1, bits // 8)
        self.alignment = self.size
        # precomputed bounds: wrap/to_signed run once per interpreted
        # arithmetic step, so they must not rebuild these per call
        self.max_unsigned = (1 << bits) - 1
        self.min_signed = -(1 << (bits - 1))
        self.max_signed = (1 << (bits - 1)) - 1
        self._span = 1 << bits

    def _key(self) -> tuple:
        return (self.bits,)

    def __str__(self) -> str:
        return f"i{self.bits}"

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to this type's unsigned bit-width."""
        return value & self.max_unsigned

    def to_signed(self, value: int) -> int:
        """Reinterpret the unsigned representation ``value`` as signed."""
        value &= self.max_unsigned
        if value > self.max_signed:
            value -= self._span
        return value


class PointerType(Type):
    """A pointer to a value of ``pointee`` type.

    Pointers are 8 bytes: the simulated machine is 64-bit with a 40-bit
    virtual address space, leaving 24 high bits for the Pointer
    Authentication Code (see :mod:`repro.hardware.pac`).
    """

    size = 8
    alignment = 8

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def _key(self) -> tuple:
        return (self.pointee,)

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    """A fixed-length array of ``count`` elements of type ``element``."""

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count
        self.size = element.size * count
        self.alignment = element.alignment

    def _key(self) -> tuple:
        return (self.element, self.count)

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


def _align_up(offset: int, alignment: int) -> int:
    return (offset + alignment - 1) // alignment * alignment


class StructType(Type):
    """A named structure with C-style layout (natural alignment, padding)."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, Type]] = ()):
        self.name = name
        self.fields: List[Tuple[str, Type]] = []
        self.offsets: List[int] = []
        self.size = 0
        self.alignment = 1
        if fields:
            self.set_body(fields)

    def set_body(self, fields: Sequence[Tuple[str, Type]]) -> None:
        """Define (or redefine) the field list and recompute the layout."""
        self.fields = list(fields)
        self.offsets = []
        offset = 0
        alignment = 1
        for _, ftype in self.fields:
            offset = _align_up(offset, ftype.alignment)
            self.offsets.append(offset)
            offset += ftype.size
            alignment = max(alignment, ftype.alignment)
        self.alignment = alignment
        self.size = _align_up(offset, alignment)

    def field_index(self, name: str) -> int:
        for i, (fname, _) in enumerate(self.fields):
            if fname == name:
                return i
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def field_type(self, index: int) -> Type:
        return self.fields[index][1]

    def field_offset(self, index: int) -> int:
        return self.offsets[index]

    def _key(self) -> tuple:
        # Structs are nominal: two structs with the same name are the same
        # type (the module owns the namespace).
        return (self.name,)

    def __str__(self) -> str:
        return f"%{self.name}"


class FunctionType(Type):
    """The type of a function: return type, parameter types, varargs flag."""

    def __init__(self, return_type: Type, params: Sequence[Type], varargs: bool = False):
        self.return_type = return_type
        self.params = tuple(params)
        self.varargs = varargs

    def _key(self) -> tuple:
        return (self.return_type, self.params, self.varargs)

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.varargs:
            parts.append("...")
        return f"{self.return_type} ({', '.join(parts)})"


# Interned singletons for the common types.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)

_INT_CACHE: Dict[int, IntType] = {1: I1, 8: I8, 16: I16, 32: I32, 64: I64}


def int_type(bits: int) -> IntType:
    """Return the interned integer type of the given width."""
    try:
        return _INT_CACHE[bits]
    except KeyError:
        raise ValueError(f"unsupported integer width: {bits}") from None


def pointer(pointee: Type) -> PointerType:
    """Shorthand constructor for :class:`PointerType`."""
    return PointerType(pointee)


def array(element: Type, count: int) -> ArrayType:
    """Shorthand constructor for :class:`ArrayType`."""
    return ArrayType(element, count)


def parse_type(text: str, structs: Optional[Dict[str, StructType]] = None) -> Type:
    """Parse a type from its textual form (``i32``, ``i8*``, ``[4 x i32]``...).

    ``structs`` supplies named struct types for ``%name`` references.
    """
    text = text.strip()
    if text.endswith("*"):
        return PointerType(parse_type(text[:-1], structs))
    if text == "void":
        return VOID
    if text.startswith("i") and text[1:].isdigit():
        return int_type(int(text[1:]))
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1]
        count_text, _, elem_text = inner.partition(" x ")
        return ArrayType(parse_type(elem_text, structs), int(count_text))
    if text.startswith("%"):
        name = text[1:]
        if structs is None or name not in structs:
            raise ValueError(f"unknown struct type: {text}")
        return structs[name]
    raise ValueError(f"cannot parse type: {text!r}")
