"""Parser for the textual IR format emitted by :mod:`repro.ir.printer`.

The parser exists so modules can round-trip through text -- IR fixtures
in the test suite are written as text, and the round-trip property
(``parse(print(m))`` is structurally identical to ``m``) is checked by
hypothesis tests.

Forward references (a use textually before its definition, as happens
with loop phis) are handled with placeholder values that are patched
once the real definition is seen.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .function import BasicBlock, Function
from .instructions import (
    Alloca,
    BINARY_OPS,
    BinOp,
    Call,
    CAST_OPS,
    Cast,
    CondBranch,
    DfiChkDef,
    DfiSetDef,
    GetElementPtr,
    ICMP_PREDICATES,
    ICmp,
    Instruction,
    Jump,
    Load,
    PacAuth,
    PacSign,
    Phi,
    Ret,
    SecAssert,
    Select,
    Store,
)
from .module import Module
from .types import (
    ArrayType,
    FunctionType,
    I1,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    int_type,
)
from .values import Constant, UndefValue, Value


class ParseError(Exception):
    """Raised on malformed IR text; carries the offending line."""

    def __init__(self, message: str, line: str = ""):
        super().__init__(f"{message}  (line: {line.strip()!r})" if line else message)


class _ForwardValue(Value):
    """Placeholder for a value referenced before its definition."""


class _Cursor:
    """A tiny tokenizer-cursor over a single line of IR text."""

    _TOKEN = re.compile(
        r"""
        \s*(
            c"(?:\\[0-9a-fA-F]{2})*"   # string initializer
          | \.\.\.                     # varargs ellipsis
          | [%@][\w.$-]+               # local / global names
          | !\w+(?::\w+)?              # metadata like !ic:put
          | -?\d+                      # integers
          | [\w.]+                     # identifiers (may contain dots)
          | [=,(){}\[\]:*]             # punctuation
        )
        """,
        re.VERBOSE,
    )

    def __init__(self, line: str):
        self.line = line
        self.tokens: List[str] = []
        pos = 0
        stripped = line.split(";", 1)[0] if not line.strip().startswith("c\"") else line
        while pos < len(stripped):
            match = self._TOKEN.match(stripped, pos)
            if match is None:
                if stripped[pos:].strip():
                    raise ParseError(f"cannot tokenize at {stripped[pos:]!r}", line)
                break
            self.tokens.append(match.group(1))
            pos = match.end()
        self.index = 0

    def peek(self, offset: int = 0) -> Optional[str]:
        i = self.index + offset
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of line", self.line)
        self.index += 1
        return token

    def expect(self, token: str) -> str:
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}", self.line)
        return got

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.index += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.tokens)


class ModuleParser:
    """Parses a whole module from text.  Use :func:`parse_module`."""

    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.module = Module()
        self.pos = 0

    # -- type parsing ----------------------------------------------------------

    def _parse_type(self, cur: _Cursor) -> Type:
        token = cur.next()
        base: Type
        if token == "void":
            base = VOID
        elif token.startswith("i") and token[1:].isdigit():
            base = int_type(int(token[1:]))
        elif token == "[":
            count = int(cur.next())
            cur.expect("x")
            element = self._parse_type(cur)
            cur.expect("]")
            base = ArrayType(element, count)
        elif token.startswith("%"):
            name = token[1:]
            if name not in self.module.structs:
                raise ParseError(f"unknown struct type %{name}", cur.line)
            base = self.module.structs[name]
        else:
            raise ParseError(f"expected a type, got {token!r}", cur.line)
        while cur.accept("*"):
            base = PointerType(base)
        return base

    # -- top level ---------------------------------------------------------------

    def parse(self) -> Module:
        # Function bodies are parsed after every define/declare has been
        # registered, so mutually recursive calls resolve regardless of
        # textual order.
        pending_bodies: List[Tuple[object, List[str]]] = []
        while self.pos < len(self.lines):
            raw = self.lines[self.pos]
            line = raw.strip()
            self.pos += 1
            if not line:
                continue
            if line.startswith(";"):
                if line.startswith("; module:"):
                    self.module.name = line.split(":", 1)[1].strip()
                continue
            if line.startswith("%") and " = type " in line:
                self._parse_struct(raw)
            elif line.startswith("@"):
                self._parse_global(raw)
            elif line.startswith("declare "):
                self._parse_declaration(raw)
            elif line.startswith("define "):
                pending_bodies.append(self._parse_definition(raw))
            else:
                raise ParseError("unrecognised top-level construct", raw)
        for function, body in pending_bodies:
            _FunctionBodyParser(self, function, body).parse()
        return self.module

    def _parse_struct(self, line: str) -> None:
        body, _, comment = line.partition(";")
        field_names: List[str] = []
        if "fields:" in comment:
            names = comment.split("fields:", 1)[1].strip()
            field_names = [n for n in names.split(",") if n]
        cur = _Cursor(body)
        name = cur.next()[1:]
        cur.expect("=")
        cur.expect("type")
        cur.expect("{")
        struct = StructType(name)
        self.module.add_struct(struct)
        fields: List[Tuple[str, Type]] = []
        index = 0
        while not cur.accept("}"):
            if fields:
                cur.expect(",")
            ftype = self._parse_type(cur)
            fname = field_names[index] if index < len(field_names) else f"f{index}"
            fields.append((fname, ftype))
            index += 1
        struct.set_body(fields)

    def _parse_global(self, line: str) -> None:
        cur = _Cursor(line)
        name = cur.next()[1:]
        cur.expect("=")
        kind = cur.next()
        if kind not in ("global", "constant"):
            raise ParseError(f"expected global/constant, got {kind!r}", line)
        vtype = self._parse_type(cur)
        initializer = self._parse_initializer(cur)
        self.module.add_global(name, vtype, initializer, constant=(kind == "constant"))

    def _parse_initializer(self, cur: _Cursor) -> object:
        token = cur.next()
        if token == "zeroinitializer":
            return None
        if token.startswith('c"'):
            body = token[2:-1]
            return bytes(int(body[i + 1 : i + 3], 16) for i in range(0, len(body), 3))
        if token == "[":
            values: List[int] = []
            while not cur.accept("]"):
                if values:
                    cur.expect(",")
                values.append(int(cur.next()))
            return values
        return int(token)

    # -- functions ------------------------------------------------------------

    def _parse_signature(
        self, cur: _Cursor
    ) -> Tuple[str, FunctionType, List[str]]:
        return_type = self._parse_type(cur)
        name = cur.next()
        if not name.startswith("@"):
            raise ParseError(f"expected function name, got {name!r}", cur.line)
        cur.expect("(")
        params: List[Type] = []
        param_names: List[str] = []
        varargs = False
        while not cur.accept(")"):
            if params or varargs:
                cur.expect(",")
            if cur.accept("..."):
                varargs = True
                continue
            params.append(self._parse_type(cur))
            token = cur.peek()
            if token is not None and token.startswith("%"):
                param_names.append(cur.next()[1:])
            else:
                param_names.append(f"arg{len(params) - 1}")
        return name[1:], FunctionType(return_type, params, varargs), param_names

    def _parse_declaration(self, line: str) -> None:
        cur = _Cursor(line)
        cur.expect("declare")
        name, ftype, param_names = self._parse_signature(cur)
        ic_kind = None
        token = cur.peek()
        if token is not None and token.startswith("!ic:"):
            ic_kind = cur.next().split(":", 1)[1]
        function = Function(
            name,
            ftype,
            param_names=param_names,
            is_declaration=True,
            input_channel_kind=ic_kind,
        )
        self.module.add_function(function)

    def _parse_definition(self, header: str) -> "Tuple[Function, List[str]]":
        cur = _Cursor(header)
        cur.expect("define")
        name, ftype, param_names = self._parse_signature(cur)
        cur.expect("{")
        function = Function(name, ftype, param_names=param_names)
        self.module.add_function(function)

        body: List[str] = []
        while self.pos < len(self.lines):
            line = self.lines[self.pos]
            self.pos += 1
            if line.strip() == "}":
                break
            body.append(line)
        else:
            raise ParseError(f"unterminated function @{name}", header)

        return function, body


class _FunctionBodyParser:
    """Parses the instruction lines of a single function body."""

    def __init__(self, owner: ModuleParser, function: Function, lines: List[str]):
        self.owner = owner
        self.module = owner.module
        self.function = function
        self.lines = lines
        self.values: Dict[str, Value] = {arg.name: arg for arg in function.args}
        self.forwards: Dict[str, List[_ForwardValue]] = {}
        self.blocks: Dict[str, BasicBlock] = {}

    _LABEL = re.compile(r"^([\w.$-]+):\s*(?:;.*)?$")

    def parse(self) -> None:
        # Pass 1: create blocks so branch targets resolve.
        for line in self.lines:
            match = self._LABEL.match(line.strip())
            if match:
                block = self.function.append_block(match.group(1))
                self.blocks[block.name] = block
        if not self.blocks:
            raise ParseError(f"function @{self.function.name} has no blocks")

        # Pass 2: parse instructions into their blocks.
        current: Optional[BasicBlock] = None
        for line in self.lines:
            stripped = line.strip()
            if not stripped or stripped.startswith(";"):
                continue
            match = self._LABEL.match(stripped)
            if match:
                current = self.blocks[match.group(1)]
                continue
            if current is None:
                raise ParseError("instruction before first label", line)
            inst = self._parse_instruction(_Cursor(line))
            current.append(inst)
            if not inst.type.is_void and inst.name:
                self._define(inst.name, inst)

        unresolved = [name for name, refs in self.forwards.items() if refs]
        if unresolved:
            raise ParseError(
                f"unresolved value references in @{self.function.name}: {unresolved}"
            )

    # -- value resolution --------------------------------------------------------

    def _define(self, name: str, value: Value) -> None:
        self.values[name] = value
        for placeholder in self.forwards.pop(name, []):
            placeholder.replace_all_uses_with(value)

    def _value(self, vtype: Type, token: str, line: str) -> Value:
        if token == "undef":
            return UndefValue(vtype)
        if token == "null":
            return Constant(vtype, 0)
        if token.startswith("@"):
            name = token[1:]
            if name in self.module.globals:
                return self.module.globals[name]
            if name in self.module.functions:
                return self.module.functions[name]
            raise ParseError(f"unknown global @{name}", line)
        if token.startswith("%"):
            name = token[1:]
            if name in self.values:
                return self.values[name]
            placeholder = _ForwardValue(vtype, name)
            self.forwards.setdefault(name, []).append(placeholder)
            return placeholder
        return Constant(vtype, int(token))

    def _typed_value(self, cur: _Cursor) -> Value:
        vtype = self.owner._parse_type(cur)
        return self._value(vtype, cur.next(), cur.line)

    def _block(self, cur: _Cursor) -> BasicBlock:
        cur.expect("label")
        token = cur.next()
        name = token[1:]
        if name not in self.blocks:
            raise ParseError(f"unknown block %{name}", cur.line)
        return self.blocks[name]

    # -- instruction dispatch ------------------------------------------------------

    def _parse_instruction(self, cur: _Cursor) -> Instruction:
        name = ""
        if cur.peek() is not None and cur.peek().startswith("%") and cur.peek(1) == "=":
            name = cur.next()[1:]
            cur.expect("=")
        opcode = cur.next()

        if opcode == "alloca":
            return Alloca(self.owner._parse_type(cur), name=name)
        if opcode == "load":
            self.owner._parse_type(cur)  # result type (redundant)
            cur.expect(",")
            return Load(self._typed_value(cur), name=name)
        if opcode == "store":
            value = self._typed_value(cur)
            cur.expect(",")
            return Store(value, self._typed_value(cur))
        if opcode == "getelementptr":
            ptr = self._typed_value(cur)
            indices: List[Value] = []
            while cur.accept(","):
                indices.append(self._typed_value(cur))
            return GetElementPtr(ptr, indices, name=name)
        if opcode in BINARY_OPS:
            vtype = self.owner._parse_type(cur)
            lhs = self._value(vtype, cur.next(), cur.line)
            cur.expect(",")
            rhs = self._value(vtype, cur.next(), cur.line)
            return BinOp(opcode, lhs, rhs, name=name)
        if opcode == "icmp":
            predicate = cur.next()
            vtype = self.owner._parse_type(cur)
            lhs = self._value(vtype, cur.next(), cur.line)
            cur.expect(",")
            rhs = self._value(vtype, cur.next(), cur.line)
            return ICmp(predicate, lhs, rhs, name=name)
        if opcode in CAST_OPS:
            value = self._typed_value(cur)
            cur.expect("to")
            return Cast(opcode, value, self.owner._parse_type(cur), name=name)
        if opcode == "select":
            cond = self._typed_value(cur)
            cur.expect(",")
            true_value = self._typed_value(cur)
            cur.expect(",")
            false_value = self._typed_value(cur)
            return Select(cond, true_value, false_value, name=name)
        if opcode == "br":
            if cur.peek() == "label":
                return Jump(self._block(cur))
            cond = self._typed_value(cur)
            cur.expect(",")
            true_block = self._block(cur)
            cur.expect(",")
            false_block = self._block(cur)
            return CondBranch(cond, true_block, false_block)
        if opcode == "ret":
            if cur.peek() == "void":
                return Ret()
            return Ret(self._typed_value(cur))
        if opcode == "call":
            self.owner._parse_type(cur)  # return type (redundant)
            callee_token = cur.next()
            callee = self.module.get_function(callee_token[1:])
            cur.expect("(")
            args: List[Value] = []
            while not cur.accept(")"):
                if args:
                    cur.expect(",")
                args.append(self._typed_value(cur))
            return Call(callee, args, name=name)
        if opcode == "phi":
            vtype = self.owner._parse_type(cur)
            phi = Phi(vtype, name=name)
            first = True
            while True:
                if first:
                    if not cur.accept("["):
                        break
                else:
                    if not cur.accept(","):
                        break
                    cur.expect("[")
                value = self._value(vtype, cur.next(), cur.line)
                cur.expect(",")
                block_name = cur.next()[1:]
                cur.expect("]")
                if block_name not in self.blocks:
                    raise ParseError(f"unknown block %{block_name}", cur.line)
                phi.add_incoming(value, self.blocks[block_name])
                first = False
            return phi
        if opcode.startswith("pac.sign.") or opcode.startswith("pac.auth."):
            key_id = opcode.rsplit(".", 1)[1]
            value = self._typed_value(cur)
            cur.expect(",")
            modifier = self._typed_value(cur)
            cls = PacSign if ".sign." in opcode else PacAuth
            return cls(value, modifier, key_id, name=name)
        if opcode == "dfi.setdef":
            ptr = self._typed_value(cur)
            cur.expect(",")
            def_id = int(cur.next())
            cur.expect(",")
            return DfiSetDef(ptr, def_id, int(cur.next()))
        if opcode == "dfi.chkdef":
            ptr = self._typed_value(cur)
            cur.expect(",")
            cur.expect("{")
            allowed = set()
            while not cur.accept("}"):
                if allowed:
                    cur.expect(",")
                allowed.add(int(cur.next()))
            cur.expect(",")
            return DfiChkDef(ptr, frozenset(allowed), int(cur.next()))
        if opcode == "sec.assert":
            cond = self._value(I1, cur.next(), cur.line)
            cur.expect(",")
            kind = cur.next().lstrip("!")
            return SecAssert(cond, kind)
        raise ParseError(f"unknown opcode {opcode!r}", cur.line)


def parse_module(text: str) -> Module:
    """Parse IR text into a :class:`~repro.ir.module.Module`."""
    return ModuleParser(text).parse()
