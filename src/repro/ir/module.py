"""IR modules: the top-level container for functions, globals, structs."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .function import Function
from .types import FunctionType, StructType, Type
from .values import GlobalVariable


class Module:
    """A translation unit: named functions, globals, and struct types."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.structs: Dict[str, StructType] = {}
        self._string_counter = 0

    # -- functions -----------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function: {function.name}")
        self.functions[function.name] = function
        function.module = self
        return function

    def declare_function(
        self,
        name: str,
        function_type: FunctionType,
        input_channel_kind: Optional[str] = None,
    ) -> Function:
        """Declare an external function, returning the existing declaration
        if one with the same name already exists."""
        if name in self.functions:
            return self.functions[name]
        function = Function(
            name,
            function_type,
            is_declaration=True,
            input_channel_kind=input_channel_kind,
        )
        return self.add_function(function)

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"module has no function {name!r}") from None

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def declarations(self) -> List[Function]:
        return [f for f in self.functions.values() if f.is_declaration]

    # -- globals -------------------------------------------------------------

    def add_global(
        self,
        name: str,
        value_type: Type,
        initializer: object = None,
        constant: bool = False,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global: {name}")
        gvar = GlobalVariable(name, value_type, initializer, constant)
        self.globals[name] = gvar
        return gvar

    def add_string_literal(self, text: str) -> GlobalVariable:
        """Intern a NUL-terminated string literal as a constant global."""
        data = text.encode("utf-8") + b"\x00"
        for gvar in self.globals.values():
            if gvar.constant and gvar.initializer == data:
                return gvar
        from .types import ArrayType, I8

        self._string_counter += 1
        name = f".str.{self._string_counter}"
        return self.add_global(name, ArrayType(I8, len(data)), data, constant=True)

    # -- structs -------------------------------------------------------------

    def add_struct(self, struct: StructType) -> StructType:
        if struct.name in self.structs:
            raise ValueError(f"duplicate struct: {struct.name}")
        self.structs[struct.name] = struct
        return struct

    # -- cloning -------------------------------------------------------------

    def clone(self, value_map: bool = False):
        """Deep-copy this module by walking the object graph.

        Orders of magnitude cheaper than the textual print/parse
        round-trip (see :mod:`repro.ir.clone`); the round-trip remains
        available as ``repro.core.framework.clone_module_textual`` and
        serves as the verification oracle in the test suite.

        With ``value_map=True`` returns ``(clone, ValueMap)`` where the
        map translates source values to their clones -- the hook that
        lets ``remap_report`` carry a vulnerability analysis across a
        clone instead of recomputing it.
        """
        from .clone import clone_module_with_map

        clone, vmap = clone_module_with_map(self)
        if value_map:
            return clone, vmap
        return clone

    # -- statistics ----------------------------------------------------------

    def instruction_count(self) -> int:
        """Static instruction count across all defined functions."""
        return sum(
            len(block.instructions)
            for function in self.defined_functions()
            for block in function.blocks
        )

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name}: {len(self.defined_functions())} functions, "
            f"{self.instruction_count()} instructions>"
        )
