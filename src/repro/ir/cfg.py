"""Control-flow graph utilities: orderings, dominators, frontiers.

Dominator computation uses the Cooper-Harvey-Kennedy iterative
algorithm, which is simple and fast enough for the module sizes the
workload generator produces.  Dominance frontiers feed SSA construction
in :mod:`repro.transforms.mem2reg`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .function import BasicBlock, Function


def reachable_blocks(function: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in depth-first discovery order."""
    seen: Set[BasicBlock] = set()
    order: List[BasicBlock] = []
    stack = [function.entry_block]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        order.append(block)
        stack.extend(reversed(block.successors))
    return order


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Reverse postorder over reachable blocks (entry first)."""
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        # Iterative DFS to avoid recursion limits on generated CFGs.
        stack = [(block, iter(block.successors))]
        visited.add(block)
        while stack:
            current, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors)))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    visit(function.entry_block)
    return list(reversed(postorder))


def predecessor_map(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Predecessors of every block, computed in one pass.

    Matches the per-block ``BasicBlock.predecessors`` property exactly
    (block order, each predecessor listed once) at O(blocks + edges)
    instead of O(blocks^2).
    """
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for successor in block.successors:
            lst = preds.get(successor)
            if lst is not None and block not in lst:
                lst.append(block)
    return preds


class DominatorTree:
    """Immediate dominators and dominance frontiers for a function."""

    def __init__(self, function: Function):
        self.function = function
        self.rpo = reverse_postorder(function)
        self._rpo_index: Dict[BasicBlock, int] = {b: i for i, b in enumerate(self.rpo)}
        # Predecessors precomputed once (same order and dedup semantics
        # as the ``predecessors`` property, which rescans every block
        # per call and would make the fixpoint loops quadratic).
        self._preds: Dict[BasicBlock, List[BasicBlock]] = predecessor_map(function)
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute_idoms()
        self.frontiers: Dict[BasicBlock, Set[BasicBlock]] = {}
        self._compute_frontiers()

    def _compute_idoms(self) -> None:
        entry = self.function.entry_block
        self.idom = {block: None for block in self.rpo}
        self.idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                preds = [p for p in self._preds[block] if self.idom.get(p) is not None]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(pred, new_idom)
                if self.idom[block] is not new_idom:
                    self.idom[block] = new_idom
                    changed = True

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._rpo_index[a] > self._rpo_index[b]:
                a = self.idom[a]  # type: ignore[assignment]
            while self._rpo_index[b] > self._rpo_index[a]:
                b = self.idom[b]  # type: ignore[assignment]
        return a

    def _compute_frontiers(self) -> None:
        self.frontiers = {block: set() for block in self.rpo}
        for block in self.rpo:
            preds = [p for p in self._preds[block] if p in self._rpo_index]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[block]:
                    self.frontiers[runner].add(block)
                    runner = self.idom[runner]  # type: ignore[assignment]

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when block ``a`` dominates block ``b``."""
        runner: Optional[BasicBlock] = b
        entry = self.function.entry_block
        while runner is not None:
            if runner is a:
                return True
            if runner is entry:
                return False
            runner = self.idom.get(runner)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)
