"""Structural module cloning: a direct object-graph deep copy.

``protect()`` clones the input module once per scheme so the schemes can
be compared on identical inputs.  The original implementation round-
tripped through the textual printer and parser, which costs a full
print, lex, and parse per clone; this module copies the object graph
directly instead.  The textual round-trip survives as
:func:`repro.core.framework.clone_module_textual`, and the test suite
uses it as the verification oracle (a structural clone must print
exactly like its source).

Sharing discipline:

- :class:`~repro.ir.types.Type` objects are shared between source and
  clone.  Types are immutable in practice -- every transform that needs
  a new struct layout builds a *new* ``StructType`` -- so sharing is
  safe and keeps clones cheap.
- Everything that participates in def-use chains (constants, undef
  values, globals, arguments, instructions) is freshly created, so a
  clone's use lists never leak into the source module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .function import BasicBlock, Function
from .instructions import Call, CondBranch, Instruction, Jump, Phi
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Use, Value


class ValueMap:
    """The old->new value mapping produced by a structural clone.

    Keys are *source-module* values (globals, functions, arguments,
    instructions, and any constants that appeared as operands); values
    are their clones.  Lookups are by object identity -- ``Constant``
    defines value-based equality, so identity keying is what keeps two
    equal-but-distinct source constants distinct in the map.

    Both modules are pinned so ``id()`` keys cannot be recycled while
    the map is alive; :mod:`repro.core.remap` uses this to translate a
    whole :class:`~repro.core.vulnerability.VulnerabilityReport` into
    clone coordinates without re-running the analysis.
    """

    __slots__ = ("source", "target", "_map")

    def __init__(self, source: Module, target: Module, mapping: Dict[int, Value]):
        self.source = source
        self.target = target
        self._map = mapping

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, value: object) -> bool:
        return id(value) in self._map

    def __getitem__(self, value: Value) -> Value:
        """The clone of ``value``; constants map to themselves when they
        never appeared as an operand (they are immutable and value-equal,
        so either object denotes the same IR entity)."""
        mapped = self._map.get(id(value))
        if mapped is not None:
            return mapped
        if isinstance(value, (Constant, UndefValue)):
            return value
        raise KeyError(f"{value!r} is not a value of the cloned module")

    def get(self, value: object, default: Optional[Value] = None) -> Optional[Value]:
        return self._map.get(id(value), default)


def clone_module(module: Module) -> Module:
    """Deep-copy ``module`` by walking the object graph."""
    clone, _ = clone_module_with_map(module)
    return clone


def clone_module_with_map(module: Module) -> Tuple[Module, ValueMap]:
    """Deep-copy ``module`` and return the old->new :class:`ValueMap`."""
    clone = Module(module.name)
    clone._string_counter = module._string_counter
    clone.structs = dict(module.structs)

    # ``vmap`` is keyed by object identity: Constant defines value-based
    # equality, and two equal-but-distinct constants in the source must
    # stay distinct in the clone.
    vmap: Dict[int, Value] = {}

    for name, gvar in module.globals.items():
        initializer = gvar.initializer
        if isinstance(initializer, list):
            initializer = list(initializer)
        fresh = GlobalVariable(name, gvar.value_type, initializer, gvar.constant)
        clone.globals[name] = fresh
        vmap[id(gvar)] = fresh

    fmap: Dict[Function, Function] = {}
    for function in module.functions.values():
        shell = Function(
            function.name,
            function.function_type,
            param_names=[argument.name for argument in function.args],
            is_declaration=function.is_declaration,
            input_channel_kind=function.input_channel_kind,
        )
        shell._name_counter = function._name_counter
        clone.add_function(shell)
        fmap[function] = shell
        vmap[id(function)] = shell
        for argument, fresh_argument in zip(function.args, shell.args):
            vmap[id(argument)] = fresh_argument

    def map_value(value: Value) -> Value:
        mapped = vmap.get(id(value))
        if mapped is not None:
            return mapped
        # Constants/undefs are already normalised (wrapped) in the
        # source, so a fresh empty-uses copy of their attributes is
        # equivalent to re-running ``__init__`` -- and much cheaper at
        # clone volume.
        if isinstance(value, (Constant, UndefValue)):
            cls = value.__class__
            fresh = cls.__new__(cls)
            fresh.__dict__.update(value.__dict__)
            fresh.uses = []
        else:
            raise KeyError(
                f"operand {value!r} is not part of the module being cloned"
            )
        vmap[id(value)] = fresh
        return fresh

    for function, shell in fmap.items():
        if function.is_declaration:
            continue
        bmap: Dict[BasicBlock, BasicBlock] = {}
        for block in function.blocks:
            fresh_block = BasicBlock(block.name, parent=shell)
            shell.blocks.append(fresh_block)
            bmap[block] = fresh_block

        # Pass 1: instruction shells.  ``__init__`` is bypassed (it
        # validates and registers operand uses, which pass 2 handles),
        # so every attribute is copied and the block/callee references
        # are remapped by hand.
        pairs: List[tuple] = []
        for block, fresh_block in bmap.items():
            for inst in block.instructions:
                fresh = inst.__class__.__new__(inst.__class__)
                fresh.__dict__.update(inst.__dict__)
                fresh.parent = fresh_block
                fresh._operands = []
                fresh.uses = []
                if isinstance(inst, (Jump, CondBranch, Call, Phi)):
                    if isinstance(inst, Call):
                        fresh.callee = fmap[inst.callee]
                    elif isinstance(inst, Jump):
                        fresh.target = bmap[inst.target]
                    elif isinstance(inst, CondBranch):
                        fresh.true_block = bmap[inst.true_block]
                        fresh.false_block = bmap[inst.false_block]
                    else:
                        fresh.incoming_blocks = [
                            bmap[incoming] for incoming in inst.incoming_blocks
                        ]
                fresh_block.instructions.append(fresh)
                vmap[id(inst)] = fresh
                pairs.append((inst, fresh))

        # Pass 2: operand lists, now that every definition has a clone.
        # Hand-rolled append_operand/add_use: this loop runs once per
        # operand of every instruction, and the method-call overhead
        # dominates at that volume.
        vmap_get = vmap.get
        for inst, fresh in pairs:
            # Values are always truthy, so ``or`` falls through to
            # map_value exactly when the operand is unseen (a constant).
            ops = [
                vmap_get(id(operand)) or map_value(operand)
                for operand in inst._operands
            ]
            fresh._operands = ops
            for index, mapped in enumerate(ops):
                mapped.uses.append(Use(fresh, index))

    return clone, ValueMap(module, clone, vmap)
