"""Structural module cloning: a direct object-graph deep copy.

``protect()`` clones the input module once per scheme so the schemes can
be compared on identical inputs.  The original implementation round-
tripped through the textual printer and parser, which costs a full
print, lex, and parse per clone; this module copies the object graph
directly instead.  The textual round-trip survives as
:func:`repro.core.framework.clone_module_textual`, and the test suite
uses it as the verification oracle (a structural clone must print
exactly like its source).

Sharing discipline:

- :class:`~repro.ir.types.Type` objects are shared between source and
  clone.  Types are immutable in practice -- every transform that needs
  a new struct layout builds a *new* ``StructType`` -- so sharing is
  safe and keeps clones cheap.
- Everything that participates in def-use chains (constants, undef
  values, globals, arguments, instructions) is freshly created, so a
  clone's use lists never leak into the source module.
"""

from __future__ import annotations

from typing import Dict, List

from .function import BasicBlock, Function
from .instructions import Call, CondBranch, Instruction, Jump, Phi
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


def clone_module(module: Module) -> Module:
    """Deep-copy ``module`` by walking the object graph."""
    clone = Module(module.name)
    clone._string_counter = module._string_counter
    clone.structs = dict(module.structs)

    # ``vmap`` is keyed by object identity: Constant defines value-based
    # equality, and two equal-but-distinct constants in the source must
    # stay distinct in the clone.
    vmap: Dict[int, Value] = {}

    for name, gvar in module.globals.items():
        initializer = gvar.initializer
        if isinstance(initializer, list):
            initializer = list(initializer)
        fresh = GlobalVariable(name, gvar.value_type, initializer, gvar.constant)
        clone.globals[name] = fresh
        vmap[id(gvar)] = fresh

    fmap: Dict[Function, Function] = {}
    for function in module.functions.values():
        shell = Function(
            function.name,
            function.function_type,
            param_names=[argument.name for argument in function.args],
            is_declaration=function.is_declaration,
            input_channel_kind=function.input_channel_kind,
        )
        shell._name_counter = function._name_counter
        clone.add_function(shell)
        fmap[function] = shell
        vmap[id(function)] = shell
        for argument, fresh_argument in zip(function.args, shell.args):
            vmap[id(argument)] = fresh_argument

    def map_value(value: Value) -> Value:
        mapped = vmap.get(id(value))
        if mapped is not None:
            return mapped
        if isinstance(value, Constant):
            fresh = Constant(value.type, value.value)
        elif isinstance(value, UndefValue):
            fresh = UndefValue(value.type)
        else:
            raise KeyError(
                f"operand {value!r} is not part of the module being cloned"
            )
        vmap[id(value)] = fresh
        return fresh

    for function, shell in fmap.items():
        if function.is_declaration:
            continue
        bmap: Dict[BasicBlock, BasicBlock] = {}
        for block in function.blocks:
            fresh_block = BasicBlock(block.name, parent=shell)
            shell.blocks.append(fresh_block)
            bmap[block] = fresh_block

        # Pass 1: instruction shells.  ``__init__`` is bypassed (it
        # validates and registers operand uses, which pass 2 handles),
        # so every attribute is copied and the block/callee references
        # are remapped by hand.
        pairs: List[tuple] = []
        for block, fresh_block in bmap.items():
            for inst in block.instructions:
                fresh = inst.__class__.__new__(inst.__class__)
                fresh.__dict__.update(inst.__dict__)
                fresh.parent = fresh_block
                fresh._operands = []
                fresh.uses = []
                if isinstance(inst, Jump):
                    fresh.target = bmap[inst.target]
                elif isinstance(inst, CondBranch):
                    fresh.true_block = bmap[inst.true_block]
                    fresh.false_block = bmap[inst.false_block]
                elif isinstance(inst, Call):
                    fresh.callee = fmap[inst.callee]
                elif isinstance(inst, Phi):
                    fresh.incoming_blocks = [
                        bmap[incoming] for incoming in inst.incoming_blocks
                    ]
                fresh_block.instructions.append(fresh)
                vmap[id(inst)] = fresh
                pairs.append((inst, fresh))

        # Pass 2: operand lists, now that every definition has a clone.
        for inst, fresh in pairs:
            for operand in inst._operands:
                fresh.append_operand(map_value(operand))

    return clone
