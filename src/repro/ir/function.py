"""Functions and basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .instructions import Alloca, CondBranch, Instruction, Jump, Phi
from .types import FunctionType, Type
from .values import Argument, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        from .types import VOID

        super().__init__(VOID, name=name)
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- instruction management ----------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor), inst)

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        return self.insert(self.instructions.index(anchor) + 1, inst)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def phis(self) -> List[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    # -- CFG edges -----------------------------------------------------------

    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors  # type: ignore[attr-defined]

    @property
    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors]

    def ref(self) -> str:
        return f"%{self.name}"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function(Value):
    """A function definition or declaration.

    Declarations (``is_declaration == True``) model external library
    functions.  Input-channel declarations carry ``input_channel_kind``
    (one of the six categories of Definition 2.1) so the analysis in
    :mod:`repro.analysis.input_channels` can classify call sites.
    """

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        param_names: Optional[Sequence[str]] = None,
        is_declaration: bool = False,
        input_channel_kind: Optional[str] = None,
    ):
        from .types import pointer

        super().__init__(pointer(function_type), name=name)
        self.function_type = function_type
        self.is_declaration = is_declaration
        self.input_channel_kind = input_channel_kind
        #: back-reference set by Module.add_function
        self.module = None
        self.blocks: List[BasicBlock] = []
        self.args: List[Argument] = []
        names = list(param_names or [])
        for index, ptype in enumerate(function_type.params):
            pname = names[index] if index < len(names) else f"arg{index}"
            self.args.append(Argument(self, index, ptype, pname))
        self._name_counter = 0
        self._used_names = None

    # -- block management ----------------------------------------------------

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def append_block(self, name: str = "") -> BasicBlock:
        block = BasicBlock(name or self.unique_name("bb"), parent=self)
        self.blocks.append(block)
        return block

    def block_by_name(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"function {self.name} has no block {name!r}")

    def claim_name(self, hint: str) -> str:
        """Return ``hint`` if still unused in this function, else a
        uniquified variant (``hint.N``)."""
        self._ensure_used_names()
        if hint not in self._used_names:
            self._used_names.add(hint)
            return hint
        return self.unique_name(hint)

    def _ensure_used_names(self) -> None:
        if self._used_names is None:
            self._used_names = {arg.name for arg in self.args}
            for block in self.blocks:
                self._used_names.add(block.name)
                for inst in block.instructions:
                    if inst.name:
                        self._used_names.add(inst.name)

    def unique_name(self, hint: str = "t") -> str:
        self._ensure_used_names()
        while True:
            self._name_counter += 1
            name = f"{hint}.{self._name_counter}"
            if name not in self._used_names:
                self._used_names.add(name)
                return name

    # -- traversal -----------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def allocas(self) -> List[Alloca]:
        """Every stack allocation in the function (frame layout order)."""
        return [i for i in self.instructions() if isinstance(i, Alloca)]

    def conditional_branches(self) -> List[CondBranch]:
        """Every conditional branch -- the paper's unit of protection."""
        return [i for i in self.instructions() if isinstance(i, CondBranch)]

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} {self.name}>"
