"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    Assignment,
    DoWhileStmt,
    TernaryExpr,
    BinaryOp,
    BlockStmt,
    BreakStmt,
    CallExpr,
    CharLiteral,
    ContinueStmt,
    DeclStmt,
    Expr,
    ExprStmt,
    FieldExpr,
    ForStmt,
    FunctionDef,
    GlobalDecl,
    Identifier,
    IfStmt,
    IndexExpr,
    IntLiteral,
    NullLiteral,
    Param,
    Program,
    ReturnStmt,
    SizeofExpr,
    Stmt,
    StringLiteral,
    StructDef,
    TypeRef,
    UnaryOp,
    WhileStmt,
)
from .lexer import Token, tokenize


class ParseError(Exception):
    """Raised on syntactically invalid MiniC."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} at {token.line}:{token.column} (near {token.text!r})")
        self.token = token


#: binary operator precedence, higher binds tighter
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_TYPE_KEYWORDS = ("int", "char", "void", "struct")


class Parser:
    """Parses a token stream into a :class:`Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise ParseError(f"expected {want!r}", self.peek())
        return token

    def at_type(self) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.text in _TYPE_KEYWORDS

    # -- top level ------------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self.peek().kind != "eof":
            if (
                self.peek().kind == "keyword"
                and self.peek().text == "struct"
                and self.peek(2).text == "{"
            ):
                program.structs.append(self._parse_struct())
                continue
            type_ref = self._parse_type()
            name = self.expect("ident").text
            if self.peek().text == "(":
                program.functions.append(self._parse_function(type_ref, name))
            else:
                program.globals.append(self._parse_global(type_ref, name))
        return program

    def _parse_struct(self) -> StructDef:
        line = self.expect("keyword", "struct").line
        name = self.expect("ident").text
        self.expect("op", "{")
        fields: List[Param] = []
        while not self.accept("op", "}"):
            ftype = self._parse_type()
            fname = self.expect("ident").text
            ftype = self._parse_array_suffix(ftype)
            fields.append(Param(type_ref=ftype, name=fname, line=self.peek().line))
            self.expect("op", ";")
        self.expect("op", ";")
        return StructDef(name=name, fields=fields, line=line)

    def _parse_type(self) -> TypeRef:
        token = self.peek()
        if not self.at_type():
            raise ParseError("expected a type", token)
        base = self.next().text
        if base == "struct":
            base = f"struct {self.expect('ident').text}"
        depth = 0
        while self.accept("op", "*"):
            depth += 1
        return TypeRef(base=base, pointer_depth=depth, line=token.line)

    def _parse_array_suffix(self, type_ref: TypeRef) -> TypeRef:
        dims: List[int] = []
        while self.accept("op", "["):
            dims.append(int(self.expect("number").text, 0))
            self.expect("op", "]")
        if dims:
            return TypeRef(
                base=type_ref.base,
                pointer_depth=type_ref.pointer_depth,
                array_dims=tuple(dims),
                line=type_ref.line,
            )
        return type_ref

    def _parse_global(self, type_ref: TypeRef, name: str) -> GlobalDecl:
        type_ref = self._parse_array_suffix(type_ref)
        initializer = None
        if self.accept("op", "="):
            initializer = self.parse_expression()
        self.expect("op", ";")
        return GlobalDecl(
            type_ref=type_ref, name=name, initializer=initializer, line=type_ref.line
        )

    def _parse_function(self, return_type: TypeRef, name: str) -> FunctionDef:
        self.expect("op", "(")
        params: List[Param] = []
        if not self.accept("op", ")"):
            while True:
                if self.peek().text == "void" and self.peek(1).text == ")":
                    self.next()
                    break
                ptype = self._parse_type()
                pname = self.expect("ident").text
                ptype = self._parse_array_suffix(ptype)
                if ptype.array_dims:
                    # C semantics: array parameters decay to pointers.
                    ptype = TypeRef(
                        base=ptype.base,
                        pointer_depth=ptype.pointer_depth + 1,
                        line=ptype.line,
                    )
                params.append(Param(type_ref=ptype, name=pname, line=ptype.line))
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        body = self._parse_block()
        return FunctionDef(
            return_type=return_type,
            name=name,
            params=params,
            body=body,
            line=return_type.line,
        )

    # -- statements ---------------------------------------------------------------------

    def _parse_block(self) -> List[Stmt]:
        self.expect("op", "{")
        body: List[Stmt] = []
        while not self.accept("op", "}"):
            body.append(self.parse_statement())
        return body

    def parse_statement(self) -> Stmt:
        token = self.peek()
        if token.text == "{":
            return BlockStmt(body=self._parse_block(), line=token.line)
        if self.at_type():
            return self._parse_declaration()
        if token.kind == "keyword":
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "do":
                return self._parse_do_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "return":
                self.next()
                value = None
                if self.peek().text != ";":
                    value = self.parse_expression()
                self.expect("op", ";")
                return ReturnStmt(value=value, line=token.line)
            if token.text == "break":
                self.next()
                self.expect("op", ";")
                return BreakStmt(line=token.line)
            if token.text == "continue":
                self.next()
                self.expect("op", ";")
                return ContinueStmt(line=token.line)
        expr = self.parse_expression()
        self.expect("op", ";")
        return ExprStmt(expr=expr, line=token.line)

    def _parse_declaration(self) -> DeclStmt:
        type_ref = self._parse_type()
        name = self.expect("ident").text
        type_ref = self._parse_array_suffix(type_ref)
        initializer = None
        if self.accept("op", "="):
            initializer = self.parse_expression()
        self.expect("op", ";")
        return DeclStmt(
            type_ref=type_ref, name=name, initializer=initializer, line=type_ref.line
        )

    def _parse_if(self) -> IfStmt:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        then_body = self._statement_body()
        else_body: List[Stmt] = []
        if self.accept("keyword", "else"):
            else_body = self._statement_body()
        return IfStmt(
            condition=condition, then_body=then_body, else_body=else_body, line=line
        )

    def _parse_while(self) -> WhileStmt:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        return WhileStmt(condition=condition, body=self._statement_body(), line=line)

    def _parse_do_while(self) -> DoWhileStmt:
        line = self.expect("keyword", "do").line
        body = self._statement_body()
        self.expect("keyword", "while")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return DoWhileStmt(condition=condition, body=body, line=line)

    def _parse_for(self) -> ForStmt:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init: Optional[Stmt] = None
        if self.peek().text != ";":
            if self.at_type():
                init = self._parse_declaration()  # consumes the ';'
            else:
                init = ExprStmt(expr=self.parse_expression(), line=line)
                self.expect("op", ";")
        else:
            self.expect("op", ";")
        condition = None
        if self.peek().text != ";":
            condition = self.parse_expression()
        self.expect("op", ";")
        step = None
        if self.peek().text != ")":
            step = self.parse_expression()
        self.expect("op", ")")
        return ForStmt(
            init=init, condition=condition, step=step, body=self._statement_body(), line=line
        )

    def _statement_body(self) -> List[Stmt]:
        if self.peek().text == "{":
            return self._parse_block()
        return [self.parse_statement()]

    # -- expressions ---------------------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self._parse_assignment()

    _COMPOUND = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}

    def _parse_assignment(self) -> Expr:
        left = self._parse_ternary()
        token = self.peek()
        if token.text == "=":
            self.next()
            value = self._parse_assignment()
            return Assignment(target=left, value=value, line=token.line)
        if token.text in self._COMPOUND:
            # desugar: `a += b` -> `a = a + b` (the target expression is
            # side-effect free in MiniC, so double evaluation is safe)
            self.next()
            value = self._parse_assignment()
            combined = BinaryOp(
                op=self._COMPOUND[token.text], left=left, right=value, line=token.line
            )
            return Assignment(target=left, value=combined, line=token.line)
        return left

    def _parse_ternary(self) -> Expr:
        condition = self._parse_binary(0)
        token = self.peek()
        if token.text != "?":
            return condition
        self.next()
        then_value = self._parse_assignment()
        self.expect("op", ":")
        else_value = self._parse_assignment()
        return TernaryExpr(
            condition=condition,
            then_value=then_value,
            else_value=else_value,
            line=token.line,
        )

    def _parse_binary(self, min_precedence: int) -> Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            precedence = _PRECEDENCE.get(token.text) if token.kind == "op" else None
            if precedence is None or precedence < min_precedence:
                return left
            self.next()
            right = self._parse_binary(precedence + 1)
            left = BinaryOp(op=token.text, left=left, right=right, line=token.line)

    def _parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self.next()
            operand = self._parse_unary()
            return UnaryOp(op=token.text, operand=operand, line=token.line)
        if token.kind == "keyword" and token.text == "sizeof":
            self.next()
            self.expect("op", "(")
            type_ref = self._parse_type()
            type_ref = self._parse_array_suffix(type_ref)
            self.expect("op", ")")
            return SizeofExpr(type_ref=type_ref, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            token = self.peek()
            if token.text == "[":
                self.next()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = IndexExpr(base=expr, index=index, line=token.line)
            elif token.text == ".":
                self.next()
                name = self.expect("ident").text
                expr = FieldExpr(base=expr, field_name=name, arrow=False, line=token.line)
            elif token.text == "->":
                self.next()
                name = self.expect("ident").text
                expr = FieldExpr(base=expr, field_name=name, arrow=True, line=token.line)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self.next()
        if token.kind == "number":
            return IntLiteral(value=int(token.text, 0), line=token.line)
        if token.kind == "string":
            return StringLiteral(value=token.text, line=token.line)
        if token.kind == "char":
            return CharLiteral(value=token.text, line=token.line)
        if token.kind == "keyword" and token.text == "NULL":
            return NullLiteral(line=token.line)
        if token.kind == "ident":
            if self.peek().text == "(":
                self.next()
                args: List[Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                return CallExpr(name=token.text, args=args, line=token.line)
            return Identifier(name=token.text, line=token.line)
        if token.text == "(":
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ParseError("expected an expression", token)


def parse_source(source: str) -> Program:
    """Tokenize and parse MiniC source into an AST."""
    return Parser(tokenize(source)).parse_program()
