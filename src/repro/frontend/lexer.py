"""Lexer for MiniC, the C subset the reproduction compiles.

MiniC covers what the paper's attack listings and workloads need:
``int``/``char`` scalars, pointers, fixed arrays, structs, the usual
expression operators, control flow, string/char literals, and calls
into the modelled C library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = {
    "int",
    "char",
    "void",
    "struct",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "sizeof",
    "NULL",
}

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "->",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "?",
    ":",
]


@dataclass
class Token:
    kind: str  # "ident" | "keyword" | "number" | "string" | "char" | "op" | "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


class LexError(Exception):
    """Raised on malformed source text."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at {line}:{column}")
        self.line = line
        self.column = column


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"', "'": "'"}


def tokenize(source: str) -> List[Token]:
    """Turn MiniC source text into a token list ending with EOF."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, column
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, column
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, column
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        # numbers (decimal and hex)
        if ch.isdigit():
            start = i
            start_line, start_col = line, column
            if source.startswith("0x", i) or source.startswith("0X", i):
                advance(2)
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    advance(1)
            else:
                while i < n and source[i].isdigit():
                    advance(1)
            tokens.append(Token("number", source[start:i], start_line, start_col))
            continue
        # string literals
        if ch == '"':
            start_line, start_col = line, column
            advance(1)
            out: List[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\\":
                    advance(1)
                    if i >= n:
                        break
                    out.append(_ESCAPES.get(source[i], source[i]))
                    advance(1)
                else:
                    out.append(source[i])
                    advance(1)
            if i >= n:
                raise LexError("unterminated string literal", start_line, start_col)
            advance(1)
            tokens.append(Token("string", "".join(out), start_line, start_col))
            continue
        # char literals
        if ch == "'":
            start_line, start_col = line, column
            advance(1)
            if i < n and source[i] == "\\":
                advance(1)
                value = _ESCAPES.get(source[i], source[i])
                advance(1)
            else:
                value = source[i]
                advance(1)
            if i >= n or source[i] != "'":
                raise LexError("unterminated char literal", start_line, start_col)
            advance(1)
            tokens.append(Token("char", value, start_line, start_col))
            continue
        # operators / punctuation
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, column))
                advance(len(op))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens
