"""Front-end driver: MiniC source text to a verified IR module."""

from __future__ import annotations

from ..ir.module import Module
from ..ir.verifier import verify_module
from .codegen import generate_module
from .parser import parse_source
from .sema import Sema


def compile_source(source: str, name: str = "minic") -> Module:
    """Compile MiniC source into a verified IR module.

    Raises :class:`~repro.frontend.lexer.LexError`,
    :class:`~repro.frontend.parser.ParseError`, or
    :class:`~repro.frontend.sema.SemaError` on invalid input.
    """
    program = parse_source(source)
    info = Sema(program).analyze()
    module = generate_module(program, info, name)
    verify_module(module)
    return module
