"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base AST node carrying its source position."""

    line: int = field(default=0, kw_only=True)


# ---------------------------------------------------------------------------
# Type syntax
# ---------------------------------------------------------------------------


@dataclass
class TypeRef(Node):
    """A type as written: base name + pointer depth + array dims.

    ``base`` is ``"int"``, ``"char"``, ``"void"``, or ``"struct NAME"``.
    """

    base: str = "int"
    pointer_depth: int = 0
    array_dims: Tuple[int, ...] = ()

    def with_pointer(self) -> "TypeRef":
        return TypeRef(
            base=self.base,
            pointer_depth=self.pointer_depth + 1,
            array_dims=self.array_dims,
            line=self.line,
        )


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class CharLiteral(Expr):
    value: str = "\0"


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class NullLiteral(Expr):
    pass


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class BinaryOp(Expr):
    op: str = "+"
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class UnaryOp(Expr):
    """``-x``, ``!x``, ``~x``, ``*p`` (deref), ``&x`` (address-of)."""

    op: str = "-"
    operand: Optional[Expr] = None


@dataclass
class Assignment(Expr):
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    """``base[index]`` on arrays or pointers."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class FieldExpr(Expr):
    """``base.field`` or ``base->field`` (``arrow=True``)."""

    base: Optional[Expr] = None
    field_name: str = ""
    arrow: bool = False


@dataclass
class TernaryExpr(Expr):
    """``cond ? then_value : else_value`` with short-circuit arms."""

    condition: Optional[Expr] = None
    then_value: Optional[Expr] = None
    else_value: Optional[Expr] = None


@dataclass
class SizeofExpr(Expr):
    type_ref: Optional[TypeRef] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    """A local declaration: ``int x = 3;`` / ``char buf[16];``"""

    type_ref: Optional[TypeRef] = None
    name: str = ""
    initializer: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    condition: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    condition: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class DoWhileStmt(Stmt):
    """``do { body } while (condition);`` -- body runs at least once."""

    condition: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class BlockStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    type_ref: Optional[TypeRef] = None
    name: str = ""


@dataclass
class FunctionDef(Node):
    return_type: Optional[TypeRef] = None
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class GlobalDecl(Node):
    type_ref: Optional[TypeRef] = None
    name: str = ""
    initializer: Optional[Expr] = None


@dataclass
class StructDef(Node):
    name: str = ""
    fields: List[Param] = field(default_factory=list)


@dataclass
class Program(Node):
    structs: List[StructDef] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
