"""Semantic analysis for MiniC.

Resolves names, computes the (IR-level) type of every expression, and
rejects ill-formed programs before code generation.  Types are the IR
types themselves: MiniC ``int`` is ``i64``, ``char`` is ``i8``, and
structs/arrays/pointers map one-to-one.

The analysis produces a :class:`SemaInfo` that the code generator
consumes: expression types, lvalue-ness, resolved struct types, and
function signatures (including the modelled C library's).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hardware.libc import LIBRARY
from ..ir.types import (
    ArrayType,
    FunctionType,
    I64,
    I8,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from . import ast_nodes as ast


class SemaError(Exception):
    """Raised on semantically invalid MiniC."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"{message} (line {line})" if line else message)
        self.line = line


@dataclass
class SemaInfo:
    """Everything codegen needs, keyed by AST node identity."""

    expr_types: Dict[int, Type] = field(default_factory=dict)
    structs: Dict[str, StructType] = field(default_factory=dict)
    function_types: Dict[str, FunctionType] = field(default_factory=dict)
    #: names of library functions the program references
    used_library: List[str] = field(default_factory=list)

    def type_of(self, expr: ast.Expr) -> Type:
        return self.expr_types[id(expr)]


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, Type] = {}

    def declare(self, name: str, vtype: Type, line: int) -> None:
        if name in self.symbols:
            raise SemaError(f"redeclaration of {name!r}", line)
        self.symbols[name] = vtype

    def lookup(self, name: str) -> Optional[Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class Sema:
    """Two-pass semantic analyser."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.info = SemaInfo()
        self.globals = _Scope()
        self._loop_depth = 0
        self._current_return: Type = VOID

    # -- entry point ----------------------------------------------------------------

    def analyze(self) -> SemaInfo:
        for struct in self.program.structs:
            self._declare_struct(struct)
        for gdecl in self.program.globals:
            gtype = self.resolve_type(gdecl.type_ref)
            self.globals.declare(gdecl.name, gtype, gdecl.line)
            if gdecl.initializer is not None:
                self._check_expr(gdecl.initializer, self.globals)
        for function in self.program.functions:
            self._declare_function(function)
        for function in self.program.functions:
            self._check_function(function)
        return self.info

    # -- types ----------------------------------------------------------------------

    def resolve_type(self, ref: ast.TypeRef) -> Type:
        base: Type
        if ref.base == "int":
            base = I64
        elif ref.base == "char":
            base = I8
        elif ref.base == "void":
            base = VOID
        elif ref.base.startswith("struct "):
            name = ref.base.split(" ", 1)[1]
            if name not in self.info.structs:
                raise SemaError(f"unknown struct {name!r}", ref.line)
            base = self.info.structs[name]
        else:
            raise SemaError(f"unknown type {ref.base!r}", ref.line)
        for _ in range(ref.pointer_depth):
            base = PointerType(base)
        for dim in reversed(ref.array_dims):
            base = ArrayType(base, dim)
        if base.is_void and not ref.pointer_depth:
            if ref.array_dims:
                raise SemaError("array of void", ref.line)
        return base

    def _declare_struct(self, struct: ast.StructDef) -> None:
        if struct.name in self.info.structs:
            raise SemaError(f"redefinition of struct {struct.name!r}", struct.line)
        stype = StructType(struct.name)
        self.info.structs[struct.name] = stype
        fields: List[Tuple[str, Type]] = []
        for fparam in struct.fields:
            fields.append((fparam.name, self.resolve_type(fparam.type_ref)))
        stype.set_body(fields)

    def _declare_function(self, function: ast.FunctionDef) -> None:
        if function.name in self.info.function_types:
            raise SemaError(f"redefinition of {function.name!r}", function.line)
        params = [self.resolve_type(p.type_ref) for p in function.params]
        for ptype, param in zip(params, function.params):
            if ptype.is_void:
                raise SemaError("void parameter", param.line)
        return_type = self.resolve_type(function.return_type)
        self.info.function_types[function.name] = FunctionType(return_type, params)

    # -- functions -------------------------------------------------------------------

    def _check_function(self, function: ast.FunctionDef) -> None:
        ftype = self.info.function_types[function.name]
        self._current_return = ftype.return_type
        scope = _Scope(self.globals)
        for param, ptype in zip(function.params, ftype.params):
            scope.declare(param.name, ptype, param.line)
        self._check_block(function.body, scope)

    def _check_block(self, body: List[ast.Stmt], scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in body:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.DeclStmt):
            vtype = self.resolve_type(stmt.type_ref)
            if vtype.is_void:
                raise SemaError(f"variable {stmt.name!r} has void type", stmt.line)
            scope.declare(stmt.name, vtype, stmt.line)
            if stmt.initializer is not None:
                init_type = self._check_expr(stmt.initializer, scope)
                self._check_convertible(init_type, vtype, stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._check_expr(stmt.condition, scope)
            self._check_block(stmt.then_body, scope)
            self._check_block(stmt.else_body, scope)
        elif isinstance(stmt, ast.WhileStmt):
            self._check_expr(stmt.condition, scope)
            self._loop_depth += 1
            self._check_block(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhileStmt):
            self._loop_depth += 1
            self._check_block(stmt.body, scope)
            self._loop_depth -= 1
            self._check_expr(stmt.condition, scope)
        elif isinstance(stmt, ast.ForStmt):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.condition is not None:
                self._check_expr(stmt.condition, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._loop_depth += 1
            self._check_block(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                if not self._current_return.is_void:
                    raise SemaError("return without value", stmt.line)
            else:
                if self._current_return.is_void:
                    raise SemaError("return with value in void function", stmt.line)
                vtype = self._check_expr(stmt.value, scope)
                self._check_convertible(vtype, self._current_return, stmt.line)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                raise SemaError("break/continue outside a loop", stmt.line)
        elif isinstance(stmt, ast.BlockStmt):
            self._check_block(stmt.body, scope)
        else:  # pragma: no cover - parser produces no other statements
            raise SemaError(f"unknown statement {type(stmt).__name__}", stmt.line)

    # -- expressions ---------------------------------------------------------------------

    def _set(self, expr: ast.Expr, vtype: Type) -> Type:
        self.info.expr_types[id(expr)] = vtype
        return vtype

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLiteral):
            return self._set(expr, I64)
        if isinstance(expr, ast.CharLiteral):
            return self._set(expr, I8)
        if isinstance(expr, ast.StringLiteral):
            return self._set(expr, PointerType(I8))
        if isinstance(expr, ast.NullLiteral):
            return self._set(expr, PointerType(I8))
        if isinstance(expr, ast.SizeofExpr):
            self.resolve_type(expr.type_ref)
            return self._set(expr, I64)
        if isinstance(expr, ast.Identifier):
            vtype = scope.lookup(expr.name)
            if vtype is None:
                raise SemaError(f"use of undeclared identifier {expr.name!r}", expr.line)
            return self._set(expr, vtype)
        if isinstance(expr, ast.UnaryOp):
            return self._check_unary(expr, scope)
        if isinstance(expr, ast.BinaryOp):
            return self._check_binary(expr, scope)
        if isinstance(expr, ast.Assignment):
            target_type = self._check_expr(expr.target, scope)
            if not self._is_lvalue(expr.target):
                raise SemaError("assignment to non-lvalue", expr.line)
            if isinstance(target_type, ArrayType):
                raise SemaError("assignment to array", expr.line)
            value_type = self._check_expr(expr.value, scope)
            self._check_convertible(value_type, target_type, expr.line)
            return self._set(expr, target_type)
        if isinstance(expr, ast.IndexExpr):
            base_type = self._check_expr(expr.base, scope)
            self._check_expr(expr.index, scope)
            if isinstance(base_type, ArrayType):
                return self._set(expr, base_type.element)
            if isinstance(base_type, PointerType):
                return self._set(expr, base_type.pointee)
            raise SemaError("indexing a non-array/pointer", expr.line)
        if isinstance(expr, ast.FieldExpr):
            base_type = self._check_expr(expr.base, scope)
            if expr.arrow:
                if not isinstance(base_type, PointerType):
                    raise SemaError("-> on non-pointer", expr.line)
                base_type = base_type.pointee
            if not isinstance(base_type, StructType):
                raise SemaError("field access on non-struct", expr.line)
            index = base_type.field_index(expr.field_name)
            return self._set(expr, base_type.field_type(index))
        if isinstance(expr, ast.TernaryExpr):
            self._check_expr(expr.condition, scope)
            then_type = self._decayed(self._check_expr(expr.then_value, scope))
            else_type = self._decayed(self._check_expr(expr.else_value, scope))
            if isinstance(then_type, PointerType) or isinstance(else_type, PointerType):
                self._check_convertible(else_type, then_type, expr.line)
                return self._set(expr, then_type)
            return self._set(expr, I64)
        if isinstance(expr, ast.CallExpr):
            return self._check_call(expr, scope)
        raise SemaError(f"unknown expression {type(expr).__name__}", expr.line)

    def _check_unary(self, expr: ast.UnaryOp, scope: _Scope) -> Type:
        operand_type = self._check_expr(expr.operand, scope)
        if expr.op == "*":
            decayed = self._decayed(operand_type)
            if not isinstance(decayed, PointerType):
                raise SemaError("dereference of non-pointer", expr.line)
            return self._set(expr, decayed.pointee)
        if expr.op == "&":
            if not self._is_lvalue(expr.operand):
                raise SemaError("address of non-lvalue", expr.line)
            return self._set(expr, PointerType(operand_type))
        if expr.op in ("-", "~"):
            if not isinstance(operand_type, IntType):
                raise SemaError(f"unary {expr.op} on non-integer", expr.line)
            return self._set(expr, I64)
        if expr.op == "!":
            return self._set(expr, I64)
        raise SemaError(f"unknown unary operator {expr.op!r}", expr.line)

    def _check_binary(self, expr: ast.BinaryOp, scope: _Scope) -> Type:
        left = self._decayed(self._check_expr(expr.left, scope))
        right = self._decayed(self._check_expr(expr.right, scope))
        op = expr.op
        if op in ("&&", "||"):
            return self._set(expr, I64)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._set(expr, I64)
        if op in ("+", "-"):
            if isinstance(left, PointerType) and isinstance(right, IntType):
                return self._set(expr, left)
            if (
                op == "+"
                and isinstance(right, PointerType)
                and isinstance(left, IntType)
            ):
                return self._set(expr, right)
            if (
                op == "-"
                and isinstance(left, PointerType)
                and isinstance(right, PointerType)
            ):
                return self._set(expr, I64)
        if isinstance(left, IntType) and isinstance(right, IntType):
            return self._set(expr, I64)
        raise SemaError(f"invalid operands to {op!r} ({left}, {right})", expr.line)

    def _check_call(self, expr: ast.CallExpr, scope: _Scope) -> Type:
        ftype = self.info.function_types.get(expr.name)
        if ftype is None:
            lib = LIBRARY.get(expr.name)
            if lib is None:
                raise SemaError(f"call to unknown function {expr.name!r}", expr.line)
            ftype = lib.function_type
            if expr.name not in self.info.used_library:
                self.info.used_library.append(expr.name)
        if len(expr.args) < len(ftype.params) or (
            len(expr.args) > len(ftype.params) and not ftype.varargs
        ):
            raise SemaError(
                f"{expr.name!r} expects {len(ftype.params)} argument(s), "
                f"got {len(expr.args)}",
                expr.line,
            )
        for arg, ptype in zip(expr.args, ftype.params):
            arg_type = self._check_expr(arg, scope)
            self._check_convertible(arg_type, ptype, expr.line)
        for arg in expr.args[len(ftype.params) :]:
            self._check_expr(arg, scope)
        return self._set(expr, ftype.return_type)

    # -- conversion rules ---------------------------------------------------------------

    @staticmethod
    def _decayed(vtype: Type) -> Type:
        if isinstance(vtype, ArrayType):
            return PointerType(vtype.element)
        return vtype

    def _check_convertible(self, source: Type, target: Type, line: int) -> None:
        source = self._decayed(source)
        if source == target:
            return
        if isinstance(source, IntType) and isinstance(target, IntType):
            return  # widening/narrowing handled in codegen
        if isinstance(source, PointerType) and isinstance(target, PointerType):
            return  # C-style implicit pointer conversion (bitcast)
        if isinstance(source, IntType) and isinstance(target, PointerType):
            return  # integer-to-pointer (used by the attack listings)
        if isinstance(source, PointerType) and isinstance(target, IntType):
            return
        raise SemaError(f"cannot convert {source} to {target}", line)

    @staticmethod
    def _is_lvalue(expr: ast.Expr) -> bool:
        if isinstance(expr, (ast.Identifier, ast.IndexExpr, ast.FieldExpr)):
            return True
        return isinstance(expr, ast.UnaryOp) and expr.op == "*"


def analyze_program(program: ast.Program) -> SemaInfo:
    """Run semantic analysis over a parsed program."""
    return Sema(program).analyze()
