"""IR code generation for MiniC.

Classic alloca-based codegen (clang ``-O0`` style): every local and
parameter gets a stack slot; scalars are later promoted to SSA by
mem2reg, leaving exactly the memory traffic the defense passes
instrument -- arrays, address-taken variables, pointer dereferences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hardware.libc import LIBRARY
from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function
from ..ir.instructions import Alloca
from ..ir.module import Module
from ..ir.types import (
    ArrayType,
    FunctionType,
    I64,
    I8,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
)
from ..ir.values import Constant, Value
from . import ast_nodes as ast
from .sema import Sema, SemaError, SemaInfo


class CodegenError(Exception):
    """Internal inconsistency between sema and codegen (should not occur
    for programs sema accepted)."""


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.slots: Dict[str, Value] = {}

    def declare(self, name: str, slot: Value) -> None:
        self.slots[name] = slot

    def lookup(self, name: str) -> Optional[Value]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.slots:
                return scope.slots[name]
            scope = scope.parent
        return None


class CodeGenerator:
    """Lowers a sema-checked program into an IR module."""

    def __init__(self, program: ast.Program, info: SemaInfo, name: str = "minic"):
        self.program = program
        self.info = info
        self.module = Module(name)
        self.builder = IRBuilder()
        self.function: Optional[Function] = None
        self._loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []  # (continue, break)
        self._terminated = False
        self._scope: Optional[_Scope] = None

    # -- entry point ----------------------------------------------------------------

    def generate(self) -> Module:
        for struct in self.info.structs.values():
            self.module.add_struct(struct)
        for name in self.info.used_library:
            lib = LIBRARY[name]
            self.module.declare_function(name, lib.function_type, lib.ic_kind)
        for gdecl in self.program.globals:
            self._emit_global(gdecl)
        # Declare all defined functions first so calls resolve in any order.
        for fdef in self.program.functions:
            ftype = self.info.function_types[fdef.name]
            function = Function(fdef.name, ftype, [p.name for p in fdef.params])
            self.module.add_function(function)
        for fdef in self.program.functions:
            self._emit_function(fdef)
        return self.module

    # -- globals ---------------------------------------------------------------------

    def _emit_global(self, gdecl: ast.GlobalDecl) -> None:
        gtype = self._resolve(gdecl.type_ref)
        initializer: object = None
        init = gdecl.initializer
        if isinstance(init, ast.IntLiteral):
            initializer = init.value
        elif isinstance(init, ast.CharLiteral):
            initializer = ord(init.value)
        elif isinstance(init, ast.StringLiteral):
            data = init.value.encode("utf-8") + b"\x00"
            if isinstance(gtype, ArrayType):
                initializer = data
            else:
                raise SemaError(
                    f"string initializer requires a char array ({gdecl.name})",
                    gdecl.line,
                )
        elif init is not None:
            raise SemaError(
                f"unsupported global initializer for {gdecl.name}", gdecl.line
            )
        self.module.add_global(gdecl.name, gtype, initializer)

    def _resolve(self, ref: ast.TypeRef) -> Type:
        base: Type
        if ref.base == "int":
            base = I64
        elif ref.base == "char":
            base = I8
        elif ref.base == "void":
            base = VOID
        else:
            base = self.info.structs[ref.base.split(" ", 1)[1]]
        for _ in range(ref.pointer_depth):
            base = PointerType(base)
        for dim in reversed(ref.array_dims):
            base = ArrayType(base, dim)
        return base

    # -- functions -------------------------------------------------------------------

    def _emit_function(self, fdef: ast.FunctionDef) -> None:
        function = self.module.get_function(fdef.name)
        self.function = function
        entry = function.append_block("entry")
        self.builder.position_at_end(entry)
        self._terminated = False

        scope = _Scope()
        for argument in function.args:
            slot = self.builder.alloca(argument.type, name=f"{argument.name}.addr")
            self.builder.store(argument, slot)
            scope.declare(argument.name, slot)

        self._emit_block(fdef.body, scope)

        if not self._terminated:
            return_type = function.function_type.return_type
            if return_type.is_void:
                self.builder.ret()
            else:
                self.builder.ret(Constant(return_type, 0))
        self.function = None

    # -- statements ---------------------------------------------------------------------

    def _emit_block(self, body: List[ast.Stmt], scope: _Scope) -> None:
        inner = _Scope(scope)
        previous = self._scope
        self._scope = inner
        try:
            for stmt in body:
                if self._terminated:
                    break  # unreachable code after return/break/continue
                self._emit_stmt(stmt, inner)
        finally:
            self._scope = previous

    def _emit_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.DeclStmt):
            vtype = self._resolve(stmt.type_ref)
            slot_name = self.function.claim_name(stmt.name)  # type: ignore[union-attr]
            slot = self.builder.alloca(vtype, name=slot_name)
            scope.declare(stmt.name, slot)
            if stmt.initializer is not None:
                value = self._rvalue(stmt.initializer)
                self.builder.store(self._convert(value, vtype), slot)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._rvalue(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._emit_if(stmt, scope)
        elif isinstance(stmt, ast.WhileStmt):
            self._emit_while(stmt, scope)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._emit_do_while(stmt, scope)
        elif isinstance(stmt, ast.ForStmt):
            self._emit_for(stmt, scope)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self.builder.ret()
            else:
                value = self._rvalue(stmt.value)
                return_type = self.function.function_type.return_type  # type: ignore[union-attr]
                self.builder.ret(self._convert(value, return_type))
            self._terminated = True
        elif isinstance(stmt, ast.BreakStmt):
            self.builder.jump(self._loop_stack[-1][1])
            self._terminated = True
        elif isinstance(stmt, ast.ContinueStmt):
            self.builder.jump(self._loop_stack[-1][0])
            self._terminated = True
        elif isinstance(stmt, ast.BlockStmt):
            self._emit_block(stmt.body, scope)
        else:  # pragma: no cover
            raise CodegenError(f"unknown statement {type(stmt).__name__}")

    def _emit_if(self, stmt: ast.IfStmt, scope: _Scope) -> None:
        function = self.function
        assert function is not None
        then_block = function.append_block(function.unique_name("if.then"))
        merge_block = function.append_block(function.unique_name("if.end"))
        else_block = (
            function.append_block(function.unique_name("if.else"))
            if stmt.else_body
            else merge_block
        )
        self.builder.cond_branch(self._condition(stmt.condition), then_block, else_block)

        self.builder.position_at_end(then_block)
        self._terminated = False
        self._emit_block(stmt.then_body, scope)
        then_terminated = self._terminated
        if not then_terminated:
            self.builder.jump(merge_block)

        else_terminated = False
        if stmt.else_body:
            self.builder.position_at_end(else_block)
            self._terminated = False
            self._emit_block(stmt.else_body, scope)
            else_terminated = self._terminated
            if not else_terminated:
                self.builder.jump(merge_block)

        if then_terminated and (not stmt.else_body or else_terminated) and stmt.else_body:
            # Both arms terminated: merge block is unreachable but must
            # stay well-formed for the verifier.
            self.builder.position_at_end(merge_block)
            self._emit_dead_terminator()
            self._terminated = True
            return
        self.builder.position_at_end(merge_block)
        self._terminated = False

    def _emit_dead_terminator(self) -> None:
        return_type = self.function.function_type.return_type  # type: ignore[union-attr]
        if return_type.is_void:
            self.builder.ret()
        else:
            self.builder.ret(Constant(return_type, 0))

    def _emit_while(self, stmt: ast.WhileStmt, scope: _Scope) -> None:
        function = self.function
        assert function is not None
        cond_block = function.append_block(function.unique_name("while.cond"))
        body_block = function.append_block(function.unique_name("while.body"))
        end_block = function.append_block(function.unique_name("while.end"))
        self.builder.jump(cond_block)
        self.builder.position_at_end(cond_block)
        self.builder.cond_branch(self._condition(stmt.condition), body_block, end_block)
        self.builder.position_at_end(body_block)
        self._loop_stack.append((cond_block, end_block))
        self._terminated = False
        self._emit_block(stmt.body, scope)
        if not self._terminated:
            self.builder.jump(cond_block)
        self._loop_stack.pop()
        self.builder.position_at_end(end_block)
        self._terminated = False

    def _emit_do_while(self, stmt: ast.DoWhileStmt, scope: _Scope) -> None:
        function = self.function
        assert function is not None
        body_block = function.append_block(function.unique_name("do.body"))
        cond_block = function.append_block(function.unique_name("do.cond"))
        end_block = function.append_block(function.unique_name("do.end"))
        self.builder.jump(body_block)
        self.builder.position_at_end(body_block)
        self._loop_stack.append((cond_block, end_block))
        self._terminated = False
        self._emit_block(stmt.body, scope)
        if not self._terminated:
            self.builder.jump(cond_block)
        self._loop_stack.pop()
        self.builder.position_at_end(cond_block)
        self.builder.cond_branch(self._condition(stmt.condition), body_block, end_block)
        self.builder.position_at_end(end_block)
        self._terminated = False

    def _emit_for(self, stmt: ast.ForStmt, scope: _Scope) -> None:
        function = self.function
        assert function is not None
        inner = _Scope(scope)
        # The init declaration's name must be visible to the condition,
        # step, and body expressions.
        previous_scope = self._scope
        self._scope = inner
        try:
            self._emit_for_body(stmt, inner)
        finally:
            self._scope = previous_scope

    def _emit_for_body(self, stmt: ast.ForStmt, inner: _Scope) -> None:
        function = self.function
        assert function is not None
        if stmt.init is not None:
            self._emit_stmt(stmt.init, inner)
        cond_block = function.append_block(function.unique_name("for.cond"))
        body_block = function.append_block(function.unique_name("for.body"))
        step_block = function.append_block(function.unique_name("for.step"))
        end_block = function.append_block(function.unique_name("for.end"))
        self.builder.jump(cond_block)
        self.builder.position_at_end(cond_block)
        if stmt.condition is not None:
            self.builder.cond_branch(
                self._condition(stmt.condition), body_block, end_block
            )
        else:
            self.builder.jump(body_block)
        self.builder.position_at_end(body_block)
        self._loop_stack.append((step_block, end_block))
        self._terminated = False
        self._emit_block(stmt.body, inner)
        if not self._terminated:
            self.builder.jump(step_block)
        self._loop_stack.pop()
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._rvalue(stmt.step)
        self.builder.jump(cond_block)
        self.builder.position_at_end(end_block)
        self._terminated = False

    # -- expression lowering ---------------------------------------------------------------

    def _condition(self, expr: ast.Expr) -> Value:
        """Lower an expression used as an ``i1`` condition."""
        value = self._rvalue(expr)
        if value.type == I64 or isinstance(value.type, IntType):
            return self.builder.icmp("ne", value, Constant(value.type, 0))
        if isinstance(value.type, PointerType):
            return self.builder.icmp("ne", value, Constant(value.type, 0))
        if value.type.is_void:
            raise CodegenError("void value in condition")
        return self.builder.icmp("ne", value, Constant(value.type, 0))

    def _lvalue(self, expr: ast.Expr, scope: _Scope) -> Value:
        """The address of an lvalue expression."""
        if isinstance(expr, ast.Identifier):
            slot = scope.lookup(expr.name)
            if slot is not None:
                return slot
            if expr.name in self.module.globals:
                return self.module.globals[expr.name]
            raise CodegenError(f"unresolved identifier {expr.name!r}")
        if isinstance(expr, ast.IndexExpr):
            base_type = self.info.type_of(expr.base)
            index = self._to_int(self._rvalue(expr.index))
            if isinstance(base_type, ArrayType):
                base_addr = self._lvalue(expr.base, scope)
                return self.builder.gep(base_addr, [0, index])
            # pointer base: load the pointer, then scale
            pointer = self._rvalue(expr.base)
            return self.builder.gep(pointer, [index])
        if isinstance(expr, ast.FieldExpr):
            base_type = self.info.type_of(expr.base)
            if expr.arrow:
                base_addr = self._rvalue(expr.base)
                struct = base_type.pointee  # type: ignore[union-attr]
            else:
                base_addr = self._lvalue(expr.base, scope)
                struct = base_type
            assert isinstance(struct, StructType)
            index = struct.field_index(expr.field_name)
            return self.builder.gep(base_addr, [0, index])
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            return self._rvalue(expr.operand)
        raise CodegenError(f"not an lvalue: {type(expr).__name__}")

    def _rvalue(self, expr: ast.Expr) -> Value:
        return self._emit_expr(expr)

    def _emit_expr(self, expr: ast.Expr) -> Value:
        scope = self._current_scope
        if isinstance(expr, ast.IntLiteral):
            return Constant(I64, expr.value)
        if isinstance(expr, ast.CharLiteral):
            return Constant(I8, ord(expr.value))
        if isinstance(expr, ast.NullLiteral):
            return Constant(PointerType(I8), 0)
        if isinstance(expr, ast.StringLiteral):
            gvar = self.module.add_string_literal(expr.value)
            return self.builder.gep(gvar, [0, 0])
        if isinstance(expr, ast.SizeofExpr):
            return Constant(I64, self._resolve(expr.type_ref).size)
        if isinstance(expr, ast.Identifier):
            vtype = self.info.type_of(expr)
            addr = self._lvalue(expr, scope)
            if isinstance(vtype, ArrayType):
                return self.builder.gep(addr, [0, 0])  # decay
            if isinstance(vtype, StructType):
                return addr  # struct rvalues are their address (for &-like use)
            return self.builder.load(addr)
        if isinstance(expr, ast.IndexExpr):
            vtype = self.info.type_of(expr)
            addr = self._lvalue(expr, scope)
            if isinstance(vtype, ArrayType):
                return self.builder.gep(addr, [0, 0])
            return self.builder.load(addr)
        if isinstance(expr, ast.FieldExpr):
            vtype = self.info.type_of(expr)
            addr = self._lvalue(expr, scope)
            if isinstance(vtype, ArrayType):
                return self.builder.gep(addr, [0, 0])
            return self.builder.load(addr)
        if isinstance(expr, ast.UnaryOp):
            return self._emit_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._emit_binary(expr)
        if isinstance(expr, ast.Assignment):
            addr = self._lvalue(expr.target, scope)
            value = self._convert(
                self._rvalue(expr.value), self.info.type_of(expr.target)
            )
            self.builder.store(value, addr)
            return value
        if isinstance(expr, ast.TernaryExpr):
            return self._emit_ternary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._emit_call(expr)
        raise CodegenError(f"unknown expression {type(expr).__name__}")

    def _emit_unary(self, expr: ast.UnaryOp) -> Value:
        scope = self._current_scope
        if expr.op == "*":
            pointer = self._rvalue(expr.operand)
            pointee = pointer.type.pointee  # type: ignore[union-attr]
            if isinstance(pointee, (ArrayType, StructType)):
                return pointer
            return self.builder.load(pointer)
        if expr.op == "&":
            return self._lvalue(expr.operand, scope)
        operand = self._to_int(self._rvalue(expr.operand))
        if expr.op == "-":
            return self.builder.sub(Constant(I64, 0), operand)
        if expr.op == "~":
            return self.builder.binop("xor", operand, Constant(I64, -1))
        if expr.op == "!":
            is_zero = self.builder.icmp("eq", operand, Constant(I64, 0))
            return self.builder.cast("zext", is_zero, I64)
        raise CodegenError(f"unknown unary {expr.op!r}")

    _BINOP_MAP = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "sdiv",
        "%": "srem",
        "&": "and",
        "|": "or",
        "^": "xor",
        "<<": "shl",
        ">>": "ashr",
    }
    _CMP_MAP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}

    def _emit_binary(self, expr: ast.BinaryOp) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._emit_short_circuit(expr)
        left = self._rvalue(expr.left)
        right = self._rvalue(expr.right)
        if op in self._CMP_MAP:
            left, right = self._unify(left, right)
            flag = self.builder.icmp(self._CMP_MAP[op], left, right)
            return self.builder.cast("zext", flag, I64)
        if op in ("+", "-"):
            lptr = isinstance(left.type, PointerType)
            rptr = isinstance(right.type, PointerType)
            if lptr and not rptr:
                index = self._to_int(right)
                if op == "-":
                    index = self.builder.sub(Constant(I64, 0), index)
                return self.builder.gep(left, [index])
            if rptr and not lptr and op == "+":
                return self.builder.gep(right, [self._to_int(left)])
            if lptr and rptr and op == "-":
                li = self.builder.cast("ptrtoint", left, I64)
                ri = self.builder.cast("ptrtoint", right, I64)
                diff = self.builder.sub(li, ri)
                size = max(1, left.type.pointee.size)  # type: ignore[union-attr]
                if size == 1:
                    return diff
                return self.builder.binop("sdiv", diff, Constant(I64, size))
        left = self._to_int(left)
        right = self._to_int(right)
        return self.builder.binop(self._BINOP_MAP[op], left, right)

    def _emit_short_circuit(self, expr: ast.BinaryOp) -> Value:
        function = self.function
        assert function is not None
        rhs_block = function.append_block(function.unique_name("sc.rhs"))
        end_block = function.append_block(function.unique_name("sc.end"))
        left_flag = self._condition(expr.left)
        left_block = self.builder.block
        assert left_block is not None
        if expr.op == "&&":
            self.builder.cond_branch(left_flag, rhs_block, end_block)
            short_value = 0
        else:
            self.builder.cond_branch(left_flag, end_block, rhs_block)
            short_value = 1
        self.builder.position_at_end(rhs_block)
        right_flag = self._condition(expr.right)
        right_value = self.builder.cast("zext", right_flag, I64)
        rhs_exit = self.builder.block
        assert rhs_exit is not None
        self.builder.jump(end_block)
        self.builder.position_at_end(end_block)
        phi = self.builder.phi(I64)
        phi.add_incoming(Constant(I64, short_value), left_block)
        phi.add_incoming(right_value, rhs_exit)
        return phi

    def _emit_ternary(self, expr: ast.TernaryExpr) -> Value:
        function = self.function
        assert function is not None
        result_type = self.info.type_of(expr)
        then_block = function.append_block(function.unique_name("tern.then"))
        else_block = function.append_block(function.unique_name("tern.else"))
        end_block = function.append_block(function.unique_name("tern.end"))
        self.builder.cond_branch(self._condition(expr.condition), then_block, else_block)
        self.builder.position_at_end(then_block)
        then_value = self._convert(self._rvalue(expr.then_value), result_type)
        then_exit = self.builder.block
        self.builder.jump(end_block)
        self.builder.position_at_end(else_block)
        else_value = self._convert(self._rvalue(expr.else_value), result_type)
        else_exit = self.builder.block
        self.builder.jump(end_block)
        self.builder.position_at_end(end_block)
        phi = self.builder.phi(result_type)
        phi.add_incoming(then_value, then_exit)
        phi.add_incoming(else_value, else_exit)
        return phi

    def _emit_call(self, expr: ast.CallExpr) -> Value:
        callee = self.module.get_function(expr.name)
        ftype = callee.function_type
        args: List[Value] = []
        for i, arg_expr in enumerate(expr.args):
            value = self._rvalue(arg_expr)
            if i < len(ftype.params):
                value = self._convert(value, ftype.params[i])
            else:  # varargs: promote chars, decay handled in _rvalue
                if isinstance(value.type, IntType) and value.type.bits < 64:
                    value = self.builder.cast("sext", value, I64)
            args.append(value)
        return self.builder.call(callee, args)

    # -- conversions ---------------------------------------------------------------------

    @property
    def _current_scope(self) -> _Scope:
        # Lvalue resolution needs the innermost scope; _emit_block keeps
        # it current while statements are lowered.
        assert self._scope is not None
        return self._scope

    def _to_int(self, value: Value) -> Value:
        if value.type == I64:
            return value
        if isinstance(value.type, IntType):
            return self.builder.cast("sext", value, I64)
        if isinstance(value.type, PointerType):
            return self.builder.cast("ptrtoint", value, I64)
        raise CodegenError(f"cannot use {value.type} as an integer")

    def _unify(self, left: Value, right: Value) -> Tuple[Value, Value]:
        if left.type == right.type:
            return left, right
        if isinstance(left.type, PointerType) and isinstance(right.type, PointerType):
            return left, self.builder.cast("bitcast", right, left.type)
        if isinstance(left.type, PointerType):
            return left, self.builder.cast("inttoptr", self._to_int(right), left.type)
        if isinstance(right.type, PointerType):
            return self.builder.cast("inttoptr", self._to_int(left), right.type), right
        return self._to_int(left), self._to_int(right)

    def _convert(self, value: Value, target: Type) -> Value:
        if value.type == target:
            return value
        if isinstance(target, IntType) and isinstance(value.type, IntType):
            if target.bits < value.type.bits:
                return self.builder.cast("trunc", value, target)
            return self.builder.cast("sext", value, target)
        if isinstance(target, PointerType) and isinstance(value.type, PointerType):
            return self.builder.cast("bitcast", value, target)
        if isinstance(target, PointerType) and isinstance(value.type, IntType):
            return self.builder.cast("inttoptr", self._to_int(value), target)
        if isinstance(target, IntType) and isinstance(value.type, PointerType):
            as_int = self.builder.cast("ptrtoint", value, I64)
            return self._convert(as_int, target)
        raise CodegenError(f"cannot convert {value.type} to {target}")


def generate_module(program: ast.Program, info: SemaInfo, name: str = "minic") -> Module:
    """Lower a checked program to IR."""
    return CodeGenerator(program, info, name).generate()
