"""repro.frontend -- the MiniC compiler front-end.

MiniC is the C subset the reproduction compiles: ``int``/``char``,
pointers, fixed arrays, structs, the usual operators and control flow,
and calls into the modelled C library.  It is rich enough to express
every attack listing in the paper.
"""

from .ast_nodes import Program
from .codegen import CodegenError, generate_module
from .driver import compile_source
from .lexer import LexError, Token, tokenize
from .parser import ParseError as CParseError, Parser, parse_source
from .sema import Sema, SemaError, SemaInfo, analyze_program

__all__ = [
    "analyze_program",
    "CodegenError",
    "compile_source",
    "CParseError",
    "generate_module",
    "LexError",
    "parse_source",
    "Parser",
    "Program",
    "Sema",
    "SemaError",
    "SemaInfo",
    "Token",
    "tokenize",
]
