"""Defense configuration."""

from __future__ import annotations

from dataclasses import dataclass

#: The defense schemes the framework can apply.
SCHEMES = ("vanilla", "cpa", "pythia", "dfi")


@dataclass
class DefenseConfig:
    """Options controlling how a module is protected.

    ``scheme``
        ``vanilla`` (no instrumentation), ``cpa`` (conservative full
        pointer authentication, §4.2), ``pythia`` (stack canaries +
        heap sectioning, §4.3), or ``dfi`` (the comparison baseline).
    ``run_mem2reg``
        Promote scalars to SSA first, as the paper does; only surviving
        memory traffic is instrumented.
    ``verify``
        Run the IR verifier before and after every pass.
    ``protect_stack`` / ``protect_heap``
        Ablation switches for the two halves of the Pythia scheme.
    ``protect_fields``
        Opt-in §6.4 extension: per-field struct canaries, catching
        intra-struct overflows the base scheme cannot see.
    """

    scheme: str = "pythia"
    run_mem2reg: bool = True
    verify: bool = True
    protect_stack: bool = True
    protect_heap: bool = True
    #: §6.4 future work: interleave canaries inside struct fields
    protect_fields: bool = False
    #: §4.4: re-randomise canaries before every input-channel use
    #: (defeats leak-and-replay); disable only for the ablation
    rerandomize_canaries: bool = True

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}"
            )
