"""The end-to-end Pythia compiler framework.

``protect(module, config)`` runs the analysis pipeline once and applies
the configured defense passes, returning the instrumented module plus
the static statistics the evaluation reports (PA instruction counts,
canary counts, binary size).

Modules are cloned before instrumentation, so one source module can be
protected under several schemes and compared -- exactly what the
benchmark harness does.  Cloning is a structural object-graph copy
(:meth:`repro.ir.module.Module.clone`); the older textual round-trip is
kept as :func:`clone_module_textual` and doubles as the verification
oracle in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Optional

from ..analysis.manager import invalidate_analyses
from ..hardware.decoder import invalidate_decode_cache
from ..hardware.errors import ReproError
from ..ir.instructions import is_pa_instruction
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import VerificationError, verify_module
from ..observability import phase_span
from ..transforms.cpa import CompletePointerAuthentication
from ..transforms.dfi import DataFlowIntegrityPass
from ..transforms.field_protect import FieldProtectionPass
from ..transforms.heap_section import HeapSectionPass
from ..transforms.mem2reg import Mem2Reg
from ..transforms.pass_manager import PassManager
from ..transforms.stack_protect import StackProtectionPass
from .config import DefenseConfig, SCHEMES
from .vulnerability import VulnerabilityAnalysis, VulnerabilityReport

#: Estimated bytes per IR instruction when reporting binary sizes
#: (AArch64 instructions are 4 bytes).
BYTES_PER_INSTRUCTION = 4


class ProtectionError(ReproError):
    """A defense pass produced an invalid module.

    Distinct from :class:`~repro.ir.verifier.VerificationError` on the
    *input*: if the module verified clean going in and breaks while a
    pass instruments it, the defect is in the framework, not the
    program.  The original verifier failure is chained as the cause.
    """

    exit_code = 5


def clone_module(module: Module) -> Module:
    """Deep-copy a module (structural object-graph clone)."""
    return module.clone()


def clone_module_textual(module: Module) -> Module:
    """Deep-copy a module via the textual print -> parse round-trip.

    Much slower than :func:`clone_module`; retained as the verification
    oracle (both paths must produce modules that print identically).
    """
    return parse_module(print_module(module))


@dataclass
class ProtectionResult:
    """An instrumented module plus its static statistics."""

    module: Module
    scheme: str
    report: Optional[VulnerabilityReport]
    pass_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: wall seconds per compile phase: ``verify``, ``mem2reg``,
    #: ``analysis`` (or ``remap`` under the shared-analysis path), and
    #: ``pass:<name>`` per defense pass
    timings: Dict[str, float] = field(default_factory=dict)

    @cached_property
    def pa_static(self) -> int:
        """Statically instrumented ARM-PA instructions.

        Memoized: the module is fixed once protection has run, and the
        reporting layer reads this repeatedly per measurement.
        """
        return sum(
            1
            for function in self.module.defined_functions()
            for inst in function.instructions()
            if is_pa_instruction(inst)
        )

    @cached_property
    def instruction_count(self) -> int:
        """Static instruction count of the instrumented module (memoized)."""
        return self.module.instruction_count()

    @property
    def binary_bytes(self) -> int:
        return self.instruction_count * BYTES_PER_INSTRUCTION

    @property
    def canary_count(self) -> int:
        stats = self.pass_stats.get("pythia-stack", {})
        return int(stats.get("canaries", 0))


def _build_passes(config: DefenseConfig, report: VulnerabilityReport) -> list:
    passes = []
    if config.scheme == "cpa":
        passes.append(CompletePointerAuthentication(report))
    elif config.scheme == "pythia":
        if config.protect_fields:
            passes.append(FieldProtectionPass(report))
        if config.protect_stack:
            passes.append(
                StackProtectionPass(report, rerandomize=config.rerandomize_canaries)
            )
        if config.protect_heap:
            passes.append(HeapSectionPass(report))
    elif config.scheme == "dfi":
        passes.append(DataFlowIntegrityPass(report))
    return passes


def protect(
    module: Module,
    config: Optional[DefenseConfig] = None,
    scheme: Optional[str] = None,
    clone: bool = True,
    report: Optional[VulnerabilityReport] = None,
    prepared: bool = False,
) -> ProtectionResult:
    """Apply a defense scheme to (a clone of) ``module``.

    ``prepared=True`` declares that the caller already verified and
    mem2reg-promoted the module (``protect_all`` clones from one
    prepared module), so both steps are skipped here.  Passing
    ``report`` skips the vulnerability analysis and instruments from
    the given report instead -- under the shared-analysis path this is
    a :func:`~repro.core.remap.remap_report` translation of an analysis
    computed once on the pristine module.
    """
    if config is None:
        config = DefenseConfig(scheme=scheme or "pythia")
    elif scheme is not None:
        raise ValueError("pass either config or scheme, not both")
    target = clone_module(module) if clone else module
    timings: Dict[str, float] = {}

    if not prepared:
        if config.verify:
            with phase_span("verify", timings):
                verify_module(target)
        if config.run_mem2reg:
            with phase_span("mem2reg", timings):
                Mem2Reg().run(target)
            if config.verify:
                with phase_span("verify", timings):
                    verify_module(target)
            # mem2reg runs outside the PassManager, so drop any stale
            # pre-decoded program and cached analyses explicitly
            invalidate_decode_cache(target)
            invalidate_analyses(target)

    if config.scheme == "vanilla":
        return ProtectionResult(
            module=target, scheme="vanilla", report=None, timings=timings
        )

    if report is None:
        with phase_span("analysis", timings):
            report = VulnerabilityAnalysis(target).analyze()
    passes = _build_passes(config, report)

    # The incoming module was verified above (or by the prepared
    # caller), so the pipeline only re-verifies after each mutation.
    manager = PassManager(passes, verify=config.verify, verify_input=False)
    try:
        stats = manager.run(target)
    except VerificationError as exc:
        first = exc.errors[0] if exc.errors else str(exc)
        raise ProtectionError(
            f"scheme {config.scheme!r} produced an invalid module: {first}"
        ) from exc
    for name, seconds in manager.timings.items():
        if name == "verify":
            timings["verify"] = timings.get("verify", 0.0) + seconds
        else:
            timings[f"pass:{name}"] = seconds
    return ProtectionResult(
        module=target,
        scheme=config.scheme,
        report=report,
        pass_stats=stats,
        timings=timings,
    )


def protect_all(
    module: Module,
    schemes: "tuple[str, ...]" = SCHEMES,
    shared_analysis: bool = True,
    consume: bool = False,
) -> Dict[str, ProtectionResult]:
    """Protect independent clones of ``module`` under several schemes.

    The default *shared-analysis* path verifies, promotes, and analyzes
    the module **once**, then clones the prepared module per scheme and
    carries the vulnerability report into each clone through the clone's
    value map (:func:`~repro.core.remap.remap_report`).  The prepared
    module itself becomes the vanilla result.

    ``shared_analysis=False`` is the original re-analyze-per-scheme
    path; the test suite uses it as the oracle (both paths must produce
    bit-identically printing modules for every scheme).

    ``consume=True`` transfers ownership of ``module`` to the pipeline:
    it may be mutated in place (it becomes the mem2reg-prepared vanilla
    module) instead of being cloned pristine first.  Callers that build
    a module per compilation -- the suite runner, the benchmarks -- have
    no further use for the input and skip one full clone this way.

    Phase timings land where the work happens: the vanilla result
    carries the shared ``verify``/``mem2reg``/``analysis`` phases, each
    protected scheme carries its own ``remap``/``verify``/``pass:*``.
    """
    if not shared_analysis:
        results = {}
        last = len(schemes) - 1
        for i, scheme in enumerate(schemes):
            # With ownership of the input, the final scheme can compile
            # the module in place instead of cloning it.
            results[scheme] = protect(
                module, scheme=scheme, clone=not (consume and i == last)
            )
        return results

    from ..analysis.manager import get_manager
    from .remap import remap_report

    prep_timings: Dict[str, float] = {}
    prepared = module if consume else clone_module(module)
    with phase_span("verify", prep_timings):
        verify_module(prepared)
    with phase_span("mem2reg", prep_timings):
        Mem2Reg().run(prepared)
    with phase_span("verify", prep_timings):
        verify_module(prepared)
    invalidate_decode_cache(prepared)
    invalidate_analyses(prepared)

    needs_analysis = any(scheme != "vanilla" for scheme in schemes)
    report = None
    if needs_analysis:
        with phase_span("analysis", prep_timings):
            report = get_manager().vulnerability_report(prepared)

    results: Dict[str, ProtectionResult] = {}
    for scheme in schemes:
        if scheme == "vanilla":
            results[scheme] = ProtectionResult(
                module=prepared,
                scheme="vanilla",
                report=None,
                timings=dict(prep_timings),
            )
            continue
        target, vmap = prepared.clone(value_map=True)
        remap_timings: Dict[str, float] = {}
        with phase_span("remap", remap_timings):
            remapped = remap_report(report, vmap)
        result = protect(
            target,
            config=DefenseConfig(scheme=scheme),
            clone=False,
            report=remapped,
            prepared=True,
        )
        result.timings["remap"] = remap_timings["remap"]
        results[scheme] = result
    return results
