"""The end-to-end Pythia compiler framework.

``protect(module, config)`` runs the analysis pipeline once and applies
the configured defense passes, returning the instrumented module plus
the static statistics the evaluation reports (PA instruction counts,
canary counts, binary size).

Modules are cloned before instrumentation, so one source module can be
protected under several schemes and compared -- exactly what the
benchmark harness does.  Cloning is a structural object-graph copy
(:meth:`repro.ir.module.Module.clone`); the older textual round-trip is
kept as :func:`clone_module_textual` and doubles as the verification
oracle in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Optional

from ..hardware.decoder import invalidate_decode_cache
from ..ir.instructions import is_pa_instruction
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..transforms.cpa import CompletePointerAuthentication
from ..transforms.dfi import DataFlowIntegrityPass
from ..transforms.field_protect import FieldProtectionPass
from ..transforms.heap_section import HeapSectionPass
from ..transforms.mem2reg import Mem2Reg
from ..transforms.pass_manager import PassManager
from ..transforms.stack_protect import StackProtectionPass
from .config import DefenseConfig, SCHEMES
from .vulnerability import VulnerabilityAnalysis, VulnerabilityReport

#: Estimated bytes per IR instruction when reporting binary sizes
#: (AArch64 instructions are 4 bytes).
BYTES_PER_INSTRUCTION = 4


def clone_module(module: Module) -> Module:
    """Deep-copy a module (structural object-graph clone)."""
    return module.clone()


def clone_module_textual(module: Module) -> Module:
    """Deep-copy a module via the textual print -> parse round-trip.

    Much slower than :func:`clone_module`; retained as the verification
    oracle (both paths must produce modules that print identically).
    """
    return parse_module(print_module(module))


@dataclass
class ProtectionResult:
    """An instrumented module plus its static statistics."""

    module: Module
    scheme: str
    report: Optional[VulnerabilityReport]
    pass_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @cached_property
    def pa_static(self) -> int:
        """Statically instrumented ARM-PA instructions.

        Memoized: the module is fixed once protection has run, and the
        reporting layer reads this repeatedly per measurement.
        """
        return sum(
            1
            for function in self.module.defined_functions()
            for inst in function.instructions()
            if is_pa_instruction(inst)
        )

    @cached_property
    def instruction_count(self) -> int:
        """Static instruction count of the instrumented module (memoized)."""
        return self.module.instruction_count()

    @property
    def binary_bytes(self) -> int:
        return self.instruction_count * BYTES_PER_INSTRUCTION

    @property
    def canary_count(self) -> int:
        stats = self.pass_stats.get("pythia-stack", {})
        return int(stats.get("canaries", 0))


def protect(
    module: Module,
    config: Optional[DefenseConfig] = None,
    scheme: Optional[str] = None,
    clone: bool = True,
) -> ProtectionResult:
    """Apply a defense scheme to (a clone of) ``module``."""
    if config is None:
        config = DefenseConfig(scheme=scheme or "pythia")
    elif scheme is not None:
        raise ValueError("pass either config or scheme, not both")
    target = clone_module(module) if clone else module

    if config.verify:
        verify_module(target)
    if config.run_mem2reg:
        Mem2Reg().run(target)
        if config.verify:
            verify_module(target)
        # mem2reg runs outside the PassManager, so drop any stale
        # pre-decoded program for this module explicitly
        invalidate_decode_cache(target)

    if config.scheme == "vanilla":
        return ProtectionResult(module=target, scheme="vanilla", report=None)

    report = VulnerabilityAnalysis(target).analyze()
    passes = []
    if config.scheme == "cpa":
        passes.append(CompletePointerAuthentication(report))
    elif config.scheme == "pythia":
        if config.protect_fields:
            passes.append(FieldProtectionPass(report))
        if config.protect_stack:
            passes.append(
                StackProtectionPass(report, rerandomize=config.rerandomize_canaries)
            )
        if config.protect_heap:
            passes.append(HeapSectionPass(report))
    elif config.scheme == "dfi":
        passes.append(DataFlowIntegrityPass(report))

    manager = PassManager(passes, verify=config.verify)
    stats = manager.run(target)
    return ProtectionResult(
        module=target, scheme=config.scheme, report=report, pass_stats=stats
    )


def protect_all(
    module: Module, schemes: "tuple[str, ...]" = SCHEMES
) -> Dict[str, ProtectionResult]:
    """Protect independent clones of ``module`` under several schemes."""
    return {scheme: protect(module, scheme=scheme) for scheme in schemes}
