"""repro.core -- the paper's primary contribution.

Vulnerable-variable identification (branch decomposition + input
channel construction, §4.1), the end-to-end protection framework
(vanilla / CPA / Pythia / DFI), and security reporting.
"""

from .config import DefenseConfig, SCHEMES
from .framework import (
    BYTES_PER_INSTRUCTION,
    ProtectionError,
    ProtectionResult,
    clone_module,
    clone_module_textual,
    protect,
    protect_all,
)
from .remap import remap_report
from .report import (
    BranchVerdict,
    SecurityReport,
    build_security_report,
    dfi_protects,
    pythia_protects,
)
from .vulnerability import (
    DIRECT_DEPTH,
    VulnerabilityAnalysis,
    VulnerabilityReport,
    analyze_module,
)

__all__ = [
    "analyze_module",
    "BranchVerdict",
    "build_security_report",
    "BYTES_PER_INSTRUCTION",
    "clone_module",
    "clone_module_textual",
    "DefenseConfig",
    "dfi_protects",
    "DIRECT_DEPTH",
    "protect",
    "protect_all",
    "ProtectionError",
    "ProtectionResult",
    "pythia_protects",
    "remap_report",
    "SCHEMES",
    "SecurityReport",
    "VulnerabilityAnalysis",
    "VulnerabilityReport",
]
