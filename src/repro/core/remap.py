"""Translate a vulnerability analysis across a module clone.

``protect_all`` computes the §4.1 analysis once on the prepared module
and instruments each scheme's *clone* of it.  The analysis results are
object graphs over the prepared module's values -- alias points-to sets
of its ``MemObject`` allocation sites, slices of its instructions --
so :func:`remap_report` rebuilds every analysis structure in the
clone's coordinates using the :class:`~repro.ir.clone.ValueMap` the
clone produced.  This is a pure dictionary translation: no constraint
solving, no slicing walks.

The recompute path (``protect_all(..., shared_analysis=False)``)
remains the oracle: a remapped report must classify identically to a
fresh analysis of the clone, and the instrumented modules must print
bit-identically.  ``tests/core/test_remap.py`` checks both.

Solver/walk scratch state (alias copy edges, load/store constraint
lists) is deliberately left empty in the rebuilt analyses: it exists
only during construction and no query reads it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.alias import AliasAnalysis, MemObject
from ..analysis.callgraph import CallGraph
from ..analysis.dataflow import MemoryDef, MemoryDefUse
from ..analysis.input_channels import InputChannelAnalysis, InputChannelSite
from ..analysis.manager import AnalysisManager, get_manager
from ..analysis.slicing import BackwardSlicer, BranchSlice, ForwardSlice, ForwardSlicer
from ..ir.clone import ValueMap
from .vulnerability import VulnerabilityAnalysis, VulnerabilityReport


class _LazyRemappedReport(VulnerabilityReport):
    """A remapped report whose slice collections materialize on demand.

    The defense passes read only the variable sets and ``analysis``;
    the per-branch slice translation -- the most voluminous part of the
    remap -- is deferred until something actually asks for it (security
    reporting, the remap oracle tests).  Materialization closes over
    the source report and value map, which pin the prepared module --
    no extra lifetime, since the prepared module is the vanilla result
    of the same ``protect_all`` call.
    """

    _slices = None

    def _ensure(self):
        slices = self._slices
        if slices is None:
            slices = self._slices = self._materialize()
        return slices

    @property
    def branch_slices(self):
        return self._ensure()[0]

    @property
    def dfi_slices(self):
        return self._ensure()[1]

    @property
    def forward_slice(self):
        return self._ensure()[2]


def remap_report(
    report: VulnerabilityReport,
    vmap: ValueMap,
    manager: Optional[AnalysisManager] = None,
) -> VulnerabilityReport:
    """Rebuild ``report`` in the coordinates of ``vmap.target``.

    The rebuilt analyses are seeded into ``manager`` (the process-wide
    default unless given), so subsequent manager queries against the
    clone are served without recomputation.
    """
    analysis = report.analysis
    if analysis is None:
        raise ValueError("report carries no analysis to remap")
    if analysis.module is not vmap.source:
        raise ValueError("value map does not originate from the report's module")
    if manager is None:
        manager = get_manager()
    target = vmap.target

    # -- memory objects -------------------------------------------------------
    # Fresh MemObject per allocation site, anchored at the cloned
    # anchor.  Labels are derived from function/value names, which the
    # clone preserves, so they carry over verbatim (object_modifier_id
    # hashes the label, keeping PA modifiers stable across the remap).
    omap: Dict[int, MemObject] = {}
    for obj in analysis.alias.objects:
        omap[id(obj)] = MemObject(obj.kind, vmap[obj.anchor], obj.label)

    vm_get = vmap._map.get

    def m(value):
        # Inlined fast path of ``vmap[value]``; the fallback handles
        # constants that never appeared as operands.
        mapped = vm_get(id(value))
        return mapped if mapped is not None else vmap[value]

    def mo(obj: MemObject) -> MemObject:
        return omap[id(obj)]

    def mset(objects) -> Set[MemObject]:
        return {omap[id(obj)] for obj in objects}

    # -- alias analysis -------------------------------------------------------
    old_alias = analysis.alias
    alias = AliasAnalysis.__new__(AliasAnalysis)
    alias.module = target
    alias.points_to_sets = {
        m(value): mset(pts) for value, pts in old_alias.points_to_sets.items()
    }
    alias.pointees = {mo(obj): mset(pts) for obj, pts in old_alias.pointees.items()}
    alias.objects = [mo(obj) for obj in old_alias.objects]
    alias._object_for_anchor = {id(obj.anchor): obj for obj in alias.objects}
    alias._copy_edges = {}
    alias._loads = []
    alias._stores = []
    alias._frozen = {}

    # -- input channels -------------------------------------------------------
    old_channels = analysis.channels
    channels = InputChannelAnalysis.__new__(InputChannelAnalysis)
    channels.module = target
    channels.dispatchers = {
        m(function): kind for function, kind in old_channels.dispatchers.items()
    }
    site_map: Dict[int, InputChannelSite] = {}
    channels.sites = []
    for site in old_channels.sites:
        fresh = InputChannelSite(
            call=m(site.call),
            function=m(site.function),
            kind=site.kind,
            written_pointers=tuple(m(ptr) for ptr in site.written_pointers),
            writes_return=site.writes_return,
        )
        site_map[id(site)] = fresh
        channels.sites.append(fresh)

    def msite(site: Optional[InputChannelSite]) -> Optional[InputChannelSite]:
        return None if site is None else site_map[id(site)]

    # -- call graph -----------------------------------------------------------
    old_cg = analysis.callgraph
    callgraph = CallGraph.__new__(CallGraph)
    callgraph.module = target
    callgraph.callees = {
        m(fn): {m(callee) for callee in callees}
        for fn, callees in old_cg.callees.items()
    }
    callgraph.callers = {
        m(fn): {m(caller) for caller in callers}
        for fn, callers in old_cg.callers.items()
    }
    callgraph.call_sites = {
        m(fn): [m(call) for call in calls] for fn, calls in old_cg.call_sites.items()
    }

    # -- memory def-use -------------------------------------------------------
    old_memdu = analysis.memdu
    memdu = MemoryDefUse.__new__(MemoryDefUse)
    memdu.module = target
    memdu.alias = alias
    memdu.channels = channels
    def_map: Dict[int, MemoryDef] = {}
    memdu.defs = []
    for mdef in old_memdu.defs:
        fresh_def = MemoryDef(
            def_id=mdef.def_id,
            inst=m(mdef.inst),
            function=m(mdef.function),
            objects=frozenset(mset(mdef.objects)),
            ic_site=msite(mdef.ic_site),
        )
        def_map[id(mdef)] = fresh_def
        memdu.defs.append(fresh_def)
    memdu.defs_by_object = {
        mo(obj): [def_map[id(mdef)] for mdef in defs]
        for obj, defs in old_memdu.defs_by_object.items()
    }
    memdu.loads_by_object = {
        mo(obj): [m(load) for load in loads]
        for obj, loads in old_memdu.loads_by_object.items()
    }
    memdu.def_for_inst = {
        id(fresh_def.inst): fresh_def for fresh_def in memdu.defs
    }

    # -- slicers (plain construction: they only build cheap indices) ----------
    slicer = BackwardSlicer(target, alias, channels, memdu, callgraph)
    dfi_slicer = BackwardSlicer(
        target, alias, channels, memdu, callgraph, stop_at_pointer_arithmetic=True
    )
    forward_slicer = ForwardSlicer(target, alias, channels, memdu)

    fresh_analysis = VulnerabilityAnalysis.__new__(VulnerabilityAnalysis)
    fresh_analysis.module = target
    fresh_analysis.manager = manager
    fresh_analysis.alias = alias
    fresh_analysis.channels = channels
    fresh_analysis.memdu = memdu
    fresh_analysis.callgraph = callgraph
    fresh_analysis.slicer = slicer
    fresh_analysis.dfi_slicer = dfi_slicer
    fresh_analysis.forward_slicer = forward_slicer

    # -- slices ---------------------------------------------------------------
    def mslice(bslice: BranchSlice) -> BranchSlice:
        return BranchSlice(
            branch=None if bslice.branch is None else m(bslice.branch),
            function=m(bslice.function),
            values={m(value) for value in bslice.values},
            variables=mset(bslice.variables),
            input_channels=[
                (site_map[id(site)], depth) for site, depth in bslice.input_channels
            ],
            has_pointer_arithmetic=bslice.has_pointer_arithmetic,
            has_field_access=bslice.has_field_access,
            complex_interprocedural=bslice.complex_interprocedural,
            terminated_at=[m(inst) for inst in bslice.terminated_at],
        )

    def materialize_slices():
        branch_slices = {
            m(branch): mslice(bslice)
            for branch, bslice in report.branch_slices.items()
        }
        dfi_slices = {
            m(branch): mslice(bslice) for branch, bslice in report.dfi_slices.items()
        }
        forward = ForwardSlice(
            sites=[site_map[id(site)] for site in report.forward_slice.sites],
            values={m(value) for value in report.forward_slice.values},
            variables=mset(report.forward_slice.variables),
        )
        return branch_slices, dfi_slices, forward

    remapped = _LazyRemappedReport.__new__(_LazyRemappedReport)
    remapped._materialize = materialize_slices
    remapped.module = target
    remapped.backward_variables = mset(report.backward_variables)
    remapped.tainted_variables = mset(report.tainted_variables)
    remapped.cpa_variables = mset(report.cpa_variables)
    remapped.ic_destinations = mset(report.ic_destinations)
    remapped.refined_variables = mset(report.refined_variables)
    remapped.all_variables = mset(report.all_variables)
    remapped.analysis = fresh_analysis

    manager.seed(
        target,
        alias=alias,
        channels=channels,
        memdu=memdu,
        callgraph=callgraph,
        slicer=slicer,
        dfi_slicer=dfi_slicer,
        forward_slicer=forward_slicer,
        vulnerability_report=remapped,
    )
    return remapped
