"""Security reporting: the per-module numbers the evaluation tables use.

Built from a :class:`~repro.core.vulnerability.VulnerabilityReport`,
this aggregates:

- **branch security** -- which conditional branches each technique
  (Pythia / DFI) can protect, per the paper's criterion: "a technique
  protects a branch if [it] can generate and protect the branch's
  backward slice to the input channel";
- **attack distance** (Definition 2.4) -- slice lengths in IR
  instructions for the input channel itself, DFI, and Pythia;
- the vulnerable-variable and input-channel censuses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.slicing import BranchSlice
from ..ir.instructions import CondBranch
from .vulnerability import VulnerabilityReport


def pythia_protects(branch_slice: BranchSlice) -> bool:
    """Pythia secures a branch unless its slice needed reasoning about
    caller-opaque memory (complex interprocedural aliasing, §6.2)."""
    return not branch_slice.complex_interprocedural


def dfi_protects(dfi_slice: BranchSlice) -> bool:
    """DFI secures a branch only when its slice construction never hit
    pointer arithmetic / field-insensitive access, and never needed
    interprocedural pointer reasoning."""
    return not dfi_slice.terminated_at and not dfi_slice.complex_interprocedural


@dataclass
class BranchVerdict:
    """Per-branch protection outcome for both techniques."""

    branch: CondBranch
    ic_affected: bool
    ic_distance: Optional[int]
    pythia_secured: bool
    dfi_secured: bool
    pythia_distance: int
    dfi_distance: int


@dataclass
class SecurityReport:
    """Module-level security summary."""

    verdicts: List[BranchVerdict]
    vulnerability: VulnerabilityReport

    @property
    def total_branches(self) -> int:
        return len(self.verdicts)

    @property
    def pythia_secured_fraction(self) -> float:
        if not self.verdicts:
            return 1.0
        return sum(v.pythia_secured for v in self.verdicts) / len(self.verdicts)

    @property
    def dfi_secured_fraction(self) -> float:
        if not self.verdicts:
            return 1.0
        return sum(v.dfi_secured for v in self.verdicts) / len(self.verdicts)

    @property
    def pythia_extra_branches(self) -> int:
        """Branches Pythia secures that DFI does not."""
        return sum(1 for v in self.verdicts if v.pythia_secured and not v.dfi_secured)

    def _mean(self, values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_ic_distance(self) -> float:
        """Average distance from input channel to branch (IC-affected only)."""
        return self._mean(
            [float(v.ic_distance) for v in self.verdicts if v.ic_distance is not None]
        )

    @property
    def mean_pythia_distance(self) -> float:
        return self._mean(
            [float(v.pythia_distance) for v in self.verdicts if v.ic_affected]
        )

    @property
    def mean_dfi_distance(self) -> float:
        return self._mean(
            [float(v.dfi_distance) for v in self.verdicts if v.ic_affected]
        )


def build_security_report(vulnerability: VulnerabilityReport) -> SecurityReport:
    """Derive per-branch verdicts from the analysis slices."""
    verdicts: List[BranchVerdict] = []
    for branch, pythia_slice in vulnerability.branch_slices.items():
        dfi_slice = vulnerability.dfi_slices[branch]
        verdicts.append(
            BranchVerdict(
                branch=branch,
                ic_affected=pythia_slice.reaches_input_channel,
                ic_distance=pythia_slice.ic_distance,
                pythia_secured=pythia_protects(pythia_slice),
                dfi_secured=dfi_protects(dfi_slice),
                pythia_distance=pythia_slice.length,
                dfi_distance=dfi_slice.length,
            )
        )
    return SecurityReport(verdicts=verdicts, vulnerability=vulnerability)
