"""Append-only performance trajectory files (``BENCH_*.json``).

Each benchmark run appends one entry so performance can be tracked
across commits -- ``BENCH_interp.json`` carries interpreter throughput,
``BENCH_serve.json`` carries the serve daemon's request latency.  A
file is a single JSON object::

    {"entries": [{"label": ..., "steps_per_second": ..., ...}, ...]}

Entries are free-form dicts; :func:`append_entry` only enforces the
envelope so unrelated tools (CI, plots) can parse the file blindly.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple


def load_entries(path: str) -> List[Dict[str, Any]]:
    """Read the trajectory entries, tolerating a missing file."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'entries' must be a list")
    return entries


def safe_load_entries(path: str) -> Optional[List[Dict[str, Any]]]:
    """Read the trajectory entries, tolerating a corrupt file too.

    Returns ``None`` when the file exists but cannot be parsed (broken
    JSON, wrong envelope shape, unreadable).  :func:`load_entries` stays
    strict on purpose: the *append* path must crash rather than quietly
    rewrite a corrupt trajectory with only the new entry.
    """
    try:
        return load_entries(path)
    except (OSError, ValueError):
        return None


def append_entry(path: str, entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Append ``entry`` to the trajectory file, returning all entries."""
    entries = load_entries(path)
    entries.append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"entries": entries}, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entries


def _tier_throughput(entry: Dict[str, Any], field: str) -> Optional[float]:
    """Geomean of a per-scheme steps/s field across an entry's schemes."""
    schemes = entry.get("schemes")
    if not isinstance(schemes, dict):
        return None
    rates = [
        scheme.get(field)
        for scheme in schemes.values()
        if isinstance(scheme, dict)
    ]
    rates = [rate for rate in rates if isinstance(rate, (int, float)) and rate > 0]
    if not rates:
        return None
    return math.exp(sum(math.log(rate) for rate in rates) / len(rates))


def block_throughput(entry: Dict[str, Any]) -> Optional[float]:
    """Geomean block-tier steps/s across an entry's schemes.

    Returns ``None`` for entries without block-tier data (written
    before the block interpreter existed, or by other benchmarks).
    """
    return _tier_throughput(entry, "block_steps_per_second")


def trace_throughput(entry: Dict[str, Any]) -> Optional[float]:
    """Geomean trace-tier steps/s across an entry's schemes.

    Returns ``None`` for entries without trace-tier data (written
    before the trace interpreter existed, or by other benchmarks).
    """
    return _tier_throughput(entry, "trace_steps_per_second")


#: (display name, per-entry geomean extractor) for every gated tier.
_GATED_TIERS = (
    ("block", block_throughput),
    ("trace", trace_throughput),
)


def check_block_regression(
    entries: Sequence[Dict[str, Any]],
    entry: Dict[str, Any],
    tolerance: float = 0.10,
) -> Optional[str]:
    """Compare ``entry``'s compiled-tier throughputs to the trajectory.

    Gates every tier in ``_GATED_TIERS`` (block and trace).  For each,
    returns a human-readable failure message when the new entry's
    geomean steps/s falls more than ``tolerance`` below the most recent
    prior entry carrying that tier's data; tiers missing on either side
    are skipped, so entries written before a tier existed never fail
    its gate.  Multiple regressions join into one message; ``None``
    means no regression (or nothing to compare against).
    """
    failures = []
    for name, throughput in _GATED_TIERS:
        current = throughput(entry)
        if current is None:
            continue
        baseline = None
        for previous in reversed(entries):
            baseline = throughput(previous)
            if baseline is not None:
                break
        if baseline is None:
            continue
        if current < baseline * (1.0 - tolerance):
            failures.append(
                f"{name} tier regressed: {current:,.0f} steps/s vs "
                f"{baseline:,.0f} baseline ({current / baseline - 1.0:+.1%}, "
                f"tolerance -{tolerance:.0%})"
            )
    if failures:
        return "; ".join(failures)
    return None


def check_block_regression_file(
    path: str,
    entry: Dict[str, Any],
    tolerance: float = 0.10,
) -> Tuple[Optional[str], Optional[str]]:
    """Gate ``entry`` against the trajectory at ``path``, never crashing.

    Returns ``(failure, skip_note)``.  ``failure`` is the regression
    message from :func:`check_block_regression` (``None`` when the
    check passed).  When no comparison is possible -- the file is
    missing, empty, corrupt, or no entry on either side carries
    block-tier fields -- the check is *skipped* and ``skip_note`` says
    why; a fresh checkout must not fail its first benchmark run over an
    absent baseline.
    """
    skip = "no baseline, skipping block-regression check"
    entries = safe_load_entries(path)
    if entries is None:
        return None, f"{skip} ({path}: unreadable or corrupt)"
    if not entries:
        return None, f"{skip} ({path}: missing or empty)"
    # Comparable when *some* tier has data on both sides; a tier absent
    # from either side (e.g. pre-trace entries) silently skips its gate
    # inside check_block_regression instead of blocking the others.
    comparable = any(
        throughput(entry) is not None
        and any(throughput(previous) is not None for previous in entries)
        for _, throughput in _GATED_TIERS
    )
    if not comparable:
        if all(throughput(entry) is None for _, throughput in _GATED_TIERS):
            return None, f"{skip} (new entry lacks block-tier fields)"
        return None, f"{skip} ({path}: no prior entry has block-tier fields)"
    return check_block_regression(entries, entry, tolerance), None


# -- serve-daemon latency gate (BENCH_serve.json) ------------------------------


def serve_p99(entry: Dict[str, Any]) -> Optional[float]:
    """The warm p99 request latency (ms) of one serve-trajectory entry.

    Returns ``None`` for entries without serve data (other benchmarks
    sharing the envelope, or pre-daemon history).
    """
    serve = entry.get("serve")
    if not isinstance(serve, dict):
        return None
    p99 = serve.get("p99_ms")
    if isinstance(p99, (int, float)) and p99 > 0:
        return float(p99)
    return None


def check_serve_regression(
    entries: Sequence[Dict[str, Any]],
    entry: Dict[str, Any],
    tolerance: float = 0.10,
) -> Optional[str]:
    """Compare ``entry``'s serve p99 latency to the trajectory.

    Latency gates in the opposite direction from throughput: a failure
    message is returned when the new entry's p99 rises more than
    ``tolerance`` *above* the most recent prior entry carrying serve
    data.  ``None`` means no regression (or nothing to compare).
    """
    current = serve_p99(entry)
    if current is None:
        return None
    baseline = None
    for previous in reversed(entries):
        baseline = serve_p99(previous)
        if baseline is not None:
            break
    if baseline is None:
        return None
    if current > baseline * (1.0 + tolerance):
        return (
            f"serve p99 latency regressed: {current:.2f}ms vs "
            f"{baseline:.2f}ms baseline ({current / baseline - 1.0:+.1%}, "
            f"tolerance +{tolerance:.0%})"
        )
    return None


def check_serve_regression_file(
    path: str,
    entry: Dict[str, Any],
    tolerance: float = 0.10,
) -> Tuple[Optional[str], Optional[str]]:
    """Gate ``entry`` against the serve trajectory, never crashing.

    Same contract as :func:`check_block_regression_file`: returns
    ``(failure, skip_note)``, skipping (with a reason) when the file is
    missing, corrupt, or no entry on either side carries serve fields.
    """
    skip = "no baseline, skipping serve-regression check"
    entries = safe_load_entries(path)
    if entries is None:
        return None, f"{skip} ({path}: unreadable or corrupt)"
    if not entries:
        return None, f"{skip} ({path}: missing or empty)"
    if serve_p99(entry) is None:
        return None, f"{skip} (new entry lacks serve fields)"
    if all(serve_p99(previous) is None for previous in entries):
        return None, f"{skip} ({path}: no prior entry has serve fields)"
    return check_serve_regression(entries, entry, tolerance), None
