"""Append-only performance trajectory file (``BENCH_interp.json``).

Each benchmark run appends one entry so interpreter throughput can be
tracked across commits.  The file is a single JSON object::

    {"entries": [{"label": ..., "steps_per_second": ..., ...}, ...]}

Entries are free-form dicts; :func:`append_entry` only enforces the
envelope so unrelated tools (CI, plots) can parse the file blindly.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List


def load_entries(path: str) -> List[Dict[str, Any]]:
    """Read the trajectory entries, tolerating a missing file."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'entries' must be a list")
    return entries


def append_entry(path: str, entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Append ``entry`` to the trajectory file, returning all entries."""
    entries = load_entries(path)
    entries.append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"entries": entries}, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entries
