"""Parallel measurement harness and throughput trajectory tracking."""

from .runner import (
    ProgramSummary,
    SchemeSummary,
    SuiteError,
    SuiteResult,
    TaskFailure,
    run_suite,
    run_tasks,
    summarize_measurement,
)
from .trajectory import append_entry, load_entries

__all__ = [
    "ProgramSummary",
    "SchemeSummary",
    "SuiteError",
    "SuiteResult",
    "TaskFailure",
    "run_suite",
    "run_tasks",
    "summarize_measurement",
    "append_entry",
    "load_entries",
]
