"""Parallel measurement harness and throughput trajectory tracking."""

from .runner import (
    ProgramSummary,
    SchemeSummary,
    SuiteError,
    SuiteResult,
    TaskFailure,
    plan_jobs,
    run_suite,
    run_tasks,
    summarize_measurement,
)
from .trajectory import (
    append_entry,
    block_throughput,
    check_block_regression,
    check_block_regression_file,
    load_entries,
    safe_load_entries,
)

__all__ = [
    "ProgramSummary",
    "SchemeSummary",
    "SuiteError",
    "SuiteResult",
    "TaskFailure",
    "block_throughput",
    "check_block_regression",
    "check_block_regression_file",
    "plan_jobs",
    "safe_load_entries",
    "run_suite",
    "run_tasks",
    "summarize_measurement",
    "append_entry",
    "load_entries",
]
