"""Parallel measurement harness and throughput trajectory tracking."""

from .runner import (
    ProgramSummary,
    SchemeSummary,
    SuiteError,
    SuiteResult,
    TaskFailure,
    plan_jobs,
    run_suite,
    run_tasks,
    summarize_measurement,
)
from .regions import profile_digest
from .trajectory import (
    append_entry,
    block_throughput,
    check_block_regression,
    check_block_regression_file,
    check_serve_regression,
    check_serve_regression_file,
    load_entries,
    safe_load_entries,
    serve_p99,
    trace_throughput,
)

__all__ = [
    "ProgramSummary",
    "SchemeSummary",
    "SuiteError",
    "SuiteResult",
    "TaskFailure",
    "block_throughput",
    "check_block_regression",
    "check_block_regression_file",
    "check_serve_regression",
    "check_serve_regression_file",
    "serve_p99",
    "plan_jobs",
    "profile_digest",
    "safe_load_entries",
    "run_suite",
    "run_tasks",
    "summarize_measurement",
    "trace_throughput",
    "append_entry",
    "load_entries",
]
