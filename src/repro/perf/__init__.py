"""Parallel measurement harness and throughput trajectory tracking."""

from .runner import (
    ProgramSummary,
    SchemeSummary,
    SuiteResult,
    run_suite,
    summarize_measurement,
)
from .trajectory import append_entry, load_entries

__all__ = [
    "ProgramSummary",
    "SchemeSummary",
    "SuiteResult",
    "run_suite",
    "summarize_measurement",
    "append_entry",
    "load_entries",
]
