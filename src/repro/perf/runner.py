"""Parallel benchmark-suite runner.

The evaluation measures 16 workload profiles x 4 schemes; serially that
is by far the longest part of a full reproduction run.  Profiles are
independent, so this runner fans :func:`repro.metrics.overhead.measure_program`
out across a :class:`~concurrent.futures.ProcessPoolExecutor`.

Workers exchange only plain-data summaries (:class:`SchemeSummary` /
:class:`ProgramSummary`), never IR object graphs: a module's def-use
web is cyclic and large, so each worker regenerates its program from
the (deterministic, seeded) workload profile and sends back numbers.
``jobs=1`` runs everything in-process, which the tests use to check
that fan-out changes wall-clock but not results.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..core.config import SCHEMES
from ..metrics.overhead import BenchmarkMeasurement, measure_program, mean
from ..workloads.generator import generate_program
from ..workloads.profiles import get_profile, profile_names


@dataclass(frozen=True)
class SchemeSummary:
    """Picklable digest of one scheme's protection + execution."""

    scheme: str
    status: str
    cycles: float
    instructions: int
    ipc: float
    steps: int
    wall_seconds: float
    decode_seconds: float
    interpreter: str
    pa_static: int
    pa_dynamic: int
    binary_bytes: int
    canary_count: int
    isolated_allocations: int
    cache_hit: bool = False


@dataclass(frozen=True)
class ProgramSummary:
    """Picklable digest of one benchmark across all measured schemes."""

    name: str
    schemes: Tuple[SchemeSummary, ...]
    wall_seconds: float

    def scheme(self, name: str) -> SchemeSummary:
        for summary in self.schemes:
            if summary.scheme == name:
                return summary
        raise KeyError(f"scheme {name!r} was not measured for {self.name}")

    def runtime_overhead(self, scheme: str) -> float:
        base = self.scheme("vanilla").cycles
        if base <= 0:
            return 0.0
        return self.scheme(scheme).cycles / base - 1.0

    def binary_increase(self, scheme: str) -> float:
        base = self.scheme("vanilla").binary_bytes
        if base <= 0:
            return 0.0
        return self.scheme(scheme).binary_bytes / base - 1.0


@dataclass
class SuiteResult:
    """All programs' summaries plus suite-level throughput numbers."""

    programs: Dict[str, ProgramSummary] = field(default_factory=dict)
    schemes: Tuple[str, ...] = ()
    jobs: int = 1
    interpreter: Optional[str] = None
    wall_seconds: float = 0.0
    cache_dir: Optional[str] = None

    @property
    def cache_hits(self) -> int:
        """Scheme compilations served from the compilation cache."""
        return sum(
            1
            for program in self.programs.values()
            for scheme in program.schemes
            if scheme.cache_hit
        )

    @property
    def cache_misses(self) -> int:
        """Scheme compilations that had to run (and were cached)."""
        return sum(
            1
            for program in self.programs.values()
            for scheme in program.schemes
            if not scheme.cache_hit
        )

    @property
    def total_steps(self) -> int:
        return sum(
            scheme.steps
            for program in self.programs.values()
            for scheme in program.schemes
        )

    @property
    def steps_per_second(self) -> float:
        """Aggregate interpreter throughput over the suite wall-clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_steps / self.wall_seconds

    @property
    def decode_seconds(self) -> float:
        return sum(
            scheme.decode_seconds
            for program in self.programs.values()
            for scheme in program.schemes
        )

    def mean_runtime_overhead(self, scheme: str) -> float:
        return mean(
            program.runtime_overhead(scheme) for program in self.programs.values()
        )


def summarize_measurement(
    measurement: BenchmarkMeasurement, wall_seconds: float = 0.0
) -> ProgramSummary:
    """Digest a full measurement into its picklable summary."""
    schemes = []
    for scheme, run in measurement.runs.items():
        execution = run.execution
        schemes.append(
            SchemeSummary(
                scheme=scheme,
                status=execution.status,
                cycles=execution.cycles,
                instructions=execution.instructions,
                ipc=execution.ipc,
                steps=execution.steps,
                wall_seconds=execution.wall_seconds,
                decode_seconds=execution.decode_seconds,
                interpreter=execution.interpreter,
                pa_static=run.protection.pa_static,
                pa_dynamic=execution.pa_dynamic,
                binary_bytes=run.protection.binary_bytes,
                canary_count=run.protection.canary_count,
                isolated_allocations=execution.isolated_allocations,
                cache_hit=run.cache_hit,
            )
        )
    return ProgramSummary(
        name=measurement.name, schemes=tuple(schemes), wall_seconds=wall_seconds
    )


def _measure_one(
    task: Tuple[str, Tuple[str, ...], int, Optional[str], Optional[str]]
) -> ProgramSummary:
    """Worker entry point: regenerate one benchmark and measure it.

    Module-level (and tuple-argumented) so it pickles under the default
    process-pool start methods.
    """
    name, schemes, seed, interpreter, cache_dir = task
    start = time.perf_counter()
    program = generate_program(get_profile(name))
    measurement = measure_program(
        program,
        schemes=schemes,
        seed=seed,
        interpreter=interpreter,
        cache_dir=cache_dir,
    )
    return summarize_measurement(measurement, time.perf_counter() - start)


def run_suite(
    names: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 2024,
    jobs: int = 1,
    interpreter: Optional[str] = None,
    cache_dir: Optional[str] = None,
) -> SuiteResult:
    """Measure ``names`` (default: every profile) under ``schemes``.

    ``jobs > 1`` distributes whole benchmarks across worker processes;
    results are identical to a serial run because every worker
    regenerates its program deterministically from the profile seed.

    ``cache_dir`` enables the on-disk compilation cache (workers share
    it safely: entry writes are atomic renames, and a racing write of
    the same key lands the same content either way).
    """
    if names is None:
        names = profile_names()
    names = list(names)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    tasks = [(name, tuple(schemes), seed, interpreter, cache_dir) for name in names]
    start = time.perf_counter()
    if jobs == 1 or len(tasks) <= 1:
        summaries = [_measure_one(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            summaries = list(pool.map(_measure_one, tasks))
    wall = time.perf_counter() - start
    return SuiteResult(
        programs={summary.name: summary for summary in summaries},
        schemes=tuple(schemes),
        jobs=jobs,
        interpreter=interpreter,
        wall_seconds=wall,
        cache_dir=cache_dir,
    )
