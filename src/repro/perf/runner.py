"""Parallel, crash-resilient benchmark-suite runner.

The evaluation measures 16 workload profiles x 4 schemes; serially that
is by far the longest part of a full reproduction run.  Profiles are
independent, so this runner fans :func:`repro.metrics.overhead.measure_program`
out across worker processes -- one process *per attempt*, not a shared
pool, so a worker that crashes, wedges, or leaks poisons only its own
task:

- **per-task timeout**: a hung worker is terminated and the task
  counts as a ``timeout`` attempt;
- **bounded retries** with exponential backoff and deterministic
  jitter (seeded per task+attempt, so reruns pace identically);
- **quarantine**: a task that fails every attempt is recorded in the
  failure manifest instead of taking the suite down;
- **``keep_going``**: with it, the suite reports every successful
  task's results plus a manifest of the quarantined ones; without it,
  the first quarantined task raises :class:`SuiteError` (after
  terminating in-flight work).

Workers exchange only plain-data summaries (:class:`SchemeSummary` /
:class:`ProgramSummary`), never IR object graphs: a module's def-use
web is cyclic and large, so each worker regenerates its program from
the (deterministic, seeded) workload profile and sends back numbers.
``jobs=1`` without a timeout runs everything in-process, which the
tests use to check that fan-out changes wall-clock but not results.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import SCHEMES
from ..hardware.errors import ReproError
from ..metrics.overhead import BenchmarkMeasurement, measure_program, mean
from ..observability import (
    MetricsRegistry,
    Tracer,
    current_tracer,
    get_metrics,
    install_metrics,
    install_tracer,
)
from ..robustness.triage import crash_fingerprint, fingerprint_from_frames
from ..workloads.generator import generate_program
from ..workloads.profiles import get_profile, profile_names


class SuiteError(ReproError):
    """A task exhausted its attempts and ``keep_going`` was off."""

    exit_code = 2


@dataclass(frozen=True)
class SchemeSummary:
    """Picklable digest of one scheme's protection + execution."""

    scheme: str
    status: str
    cycles: float
    instructions: int
    ipc: float
    steps: int
    wall_seconds: float
    decode_seconds: float
    interpreter: str
    pa_static: int
    pa_dynamic: int
    binary_bytes: int
    canary_count: int
    isolated_allocations: int
    cache_hit: bool = False


@dataclass(frozen=True)
class ProgramSummary:
    """Picklable digest of one benchmark across all measured schemes."""

    name: str
    schemes: Tuple[SchemeSummary, ...]
    wall_seconds: float

    def scheme(self, name: str) -> SchemeSummary:
        for summary in self.schemes:
            if summary.scheme == name:
                return summary
        raise KeyError(f"scheme {name!r} was not measured for {self.name}")

    def runtime_overhead(self, scheme: str) -> float:
        base = self.scheme("vanilla").cycles
        if base <= 0:
            return 0.0
        return self.scheme(scheme).cycles / base - 1.0

    def binary_increase(self, scheme: str) -> float:
        base = self.scheme("vanilla").binary_bytes
        if base <= 0:
            return 0.0
        return self.scheme(scheme).binary_bytes / base - 1.0


@dataclass(frozen=True)
class TaskFailure:
    """One task's terminal failure record (for the failure manifest).

    ``status`` is the *last* attempt's failure mode: ``error`` (the
    worker raised), ``crash`` (the worker process died without
    reporting), or ``timeout`` (the worker was terminated at the
    per-task deadline).
    """

    name: str
    status: str
    attempts: int
    message: str
    exc_type: str = ""
    fingerprint: str = ""
    quarantined: bool = True
    #: total seconds spent sleeping between this task's attempts --
    #: lets the manifest distinguish "failed fast" from "burned the
    #: whole retry budget pacing out backoff"
    backoff_total_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "attempts": self.attempts,
            "message": self.message,
            "exc_type": self.exc_type,
            "fingerprint": self.fingerprint,
            "quarantined": self.quarantined,
            "backoff_total_s": round(self.backoff_total_s, 6),
        }


@dataclass
class SuiteResult:
    """All programs' summaries plus suite-level throughput numbers."""

    programs: Dict[str, ProgramSummary] = field(default_factory=dict)
    schemes: Tuple[str, ...] = ()
    #: the *requested* fan-out (what the caller asked for)
    jobs: int = 1
    #: the fan-out actually used after :func:`plan_jobs` (see
    #: ``degraded`` for why it differs from ``jobs`` when it does)
    jobs_effective: int = 1
    #: human-readable reason the fan-out was reduced, or None
    degraded: Optional[str] = None
    interpreter: Optional[str] = None
    wall_seconds: float = 0.0
    cache_dir: Optional[str] = None
    #: quarantined tasks by name (empty unless ``keep_going`` saved a
    #: partially failing run)
    failures: Dict[str, TaskFailure] = field(default_factory=dict)
    #: merged metrics snapshot (schema ``repro-metrics-v1``): every
    #: completed worker's counters/gauges/histograms folded together
    #: plus the suite-level ``suite.*`` entries.  Survives cache
    #: degradation -- the final cache.* counters land here even when
    #: the cache turned itself off mid-run.
    metrics: Optional[Dict[str, Any]] = None
    #: trace events merged from every worker (empty unless the suite
    #: ran with tracing enabled); Chrome-trace-shaped dicts with ns
    #: timestamps, exported via ``repro.observability.write_trace``
    trace_events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def quarantined(self) -> List[str]:
        """Names of the tasks that failed every attempt."""
        return sorted(self.failures)

    def failure_manifest(self) -> Dict[str, object]:
        """JSON-able digest of what completed and what was quarantined."""
        return {
            "schemes": list(self.schemes),
            "jobs": self.jobs,
            "jobs_effective": self.jobs_effective,
            "degraded": self.degraded,
            "completed": sorted(self.programs),
            "quarantined": self.quarantined,
            "failures": [
                self.failures[name].to_dict() for name in self.quarantined
            ],
            "metrics": self.metrics,
        }

    @property
    def cache_hits(self) -> int:
        """Scheme compilations served from the compilation cache."""
        return sum(
            1
            for program in self.programs.values()
            for scheme in program.schemes
            if scheme.cache_hit
        )

    @property
    def cache_misses(self) -> int:
        """Scheme compilations that had to run (and were cached)."""
        return sum(
            1
            for program in self.programs.values()
            for scheme in program.schemes
            if not scheme.cache_hit
        )

    @property
    def total_steps(self) -> int:
        return sum(
            scheme.steps
            for program in self.programs.values()
            for scheme in program.schemes
        )

    @property
    def steps_per_second(self) -> float:
        """Aggregate interpreter throughput over the suite wall-clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_steps / self.wall_seconds

    @property
    def decode_seconds(self) -> float:
        return sum(
            scheme.decode_seconds
            for program in self.programs.values()
            for scheme in program.schemes
        )

    def mean_runtime_overhead(self, scheme: str) -> float:
        return mean(
            program.runtime_overhead(scheme) for program in self.programs.values()
        )


def summarize_measurement(
    measurement: BenchmarkMeasurement, wall_seconds: float = 0.0
) -> ProgramSummary:
    """Digest a full measurement into its picklable summary."""
    schemes = []
    for scheme, run in measurement.runs.items():
        execution = run.execution
        schemes.append(
            SchemeSummary(
                scheme=scheme,
                status=execution.status,
                cycles=execution.cycles,
                instructions=execution.instructions,
                ipc=execution.ipc,
                steps=execution.steps,
                wall_seconds=execution.wall_seconds,
                decode_seconds=execution.decode_seconds,
                interpreter=execution.interpreter,
                pa_static=run.protection.pa_static,
                pa_dynamic=execution.pa_dynamic,
                binary_bytes=run.protection.binary_bytes,
                canary_count=run.protection.canary_count,
                isolated_allocations=execution.isolated_allocations,
                cache_hit=run.cache_hit,
            )
        )
    return ProgramSummary(
        name=measurement.name, schemes=tuple(schemes), wall_seconds=wall_seconds
    )


def _measure_one(task: Tuple) -> Tuple[ProgramSummary, Dict[str, Any]]:
    """Worker entry point: regenerate one benchmark and measure it.

    Module-level (and tuple-argumented) so it pickles under the default
    process-pool start methods.

    Returns ``(summary, telemetry)``: the telemetry dict carries the
    attempt's metrics snapshot and (when the suite traces) its span
    events.  A **fresh** local tracer and metrics registry are
    installed for the attempt and restored afterwards -- forked workers
    inherit the parent's globals and inline (``jobs=1``) workers *are*
    the parent process, so recording into the inherited objects would
    double-count once the parent merges the returned telemetry.
    """
    name, schemes, seed, interpreter, cache_dir = task[:5]
    trace = bool(task[5]) if len(task) > 5 else False
    registry = MetricsRegistry()
    previous_metrics = install_metrics(registry)
    previous_tracer = install_tracer(Tracer(f"task:{name}")) if trace else None
    try:
        tracer = current_tracer()
        start = time.perf_counter()
        with tracer.span(f"task:{name}", "suite"):
            program = generate_program(get_profile(name))
            measurement = measure_program(
                program,
                schemes=schemes,
                seed=seed,
                interpreter=interpreter,
                cache_dir=cache_dir,
            )
        summary = summarize_measurement(measurement, time.perf_counter() - start)
        telemetry = {
            "metrics": registry.snapshot(),
            "events": list(tracer.events) if trace else [],
        }
        return summary, telemetry
    finally:
        install_metrics(previous_metrics)
        if previous_tracer is not None:
            install_tracer(previous_tracer)


def plan_jobs(
    jobs: int, n_tasks: int, timeout: Optional[float] = None
) -> Tuple[int, Optional[str]]:
    """Clamp a requested fan-out to what can actually run in parallel.

    Forked workers only pay off when they overlap on real CPUs: on a
    single-CPU host (or with more jobs than CPUs) the fork/pipe overhead
    is pure loss -- measured at ~40% extra wall-clock for ``jobs=2`` on
    one CPU.  Returns ``(effective_jobs, reason)`` where ``reason`` is
    ``None`` when nothing was reduced, else a human-readable sentence
    recorded in the suite's failure manifest.

    ``effective_jobs == 1`` with no ``timeout`` makes :func:`run_tasks`
    take the in-process serial path; with a ``timeout`` it still forks
    (one worker at a time) because per-task deadlines need a process to
    terminate.
    """
    effective = min(jobs, n_tasks) if n_tasks else jobs
    if effective <= 1:
        if jobs > 1:
            return effective, (
                f"requested {jobs} job(s) for {n_tasks} task(s); "
                "nothing to overlap"
            )
        return effective, None
    cpus = os.cpu_count() or 1
    if effective > cpus:
        clamped = max(1, cpus)
        return clamped, (
            f"requested {jobs} job(s) for {n_tasks} task(s) on {cpus} "
            f"CPU(s); degraded to {clamped} to avoid fork overhead "
            "without parallelism"
        )
    return effective, None


# -- the crash-resilient task engine --------------------------------------------


def backoff_delay(
    seed: int, name: str, attempt: int, base: float, cap: float
) -> float:
    """Exponential backoff with deterministic jitter.

    The jitter factor (0.5x-1.0x of the exponential step) comes from a
    string-seeded RNG over ``(seed, task, attempt)``, so two runs of
    the same suite pace their retries identically -- chaos runs stay
    reproducible down to the scheduling.

    The exponent is clamped before exponentiation: by attempt 64 the
    step has saturated any realistic ``cap`` anyway, and an unclamped
    ``2.0 ** attempt`` raises ``OverflowError`` past attempt ~1024.
    """
    import random

    step = min(cap, base * (2.0 ** min(attempt - 1, 63)))
    return step * (0.5 + 0.5 * random.Random(f"{seed}:{name}:{attempt}").random())


def _child_main(conn, worker: Callable[[Any], Any], payload: Any) -> None:
    """Worker-process entry: run one attempt, report over the pipe.

    Exceptions are flattened to ``(type name, message, repro frames)``
    -- picklable, and exactly what the parent needs to build a triage
    fingerprint.  A worker that dies before sending anything (hard
    crash, ``os._exit``) is detected by the parent via its exit code.
    """
    try:
        result = worker(payload)
    except BaseException as exc:  # noqa: BLE001 - the whole point is containment
        from ..robustness.triage import repro_frames

        # Drop this harness frame so cross-process fingerprints match
        # what an in-process run of the same worker would produce.
        frames = [f for f in repro_frames(exc) if f != "_child_main"]
        try:
            conn.send(("error", type(exc).__name__, str(exc), frames))
        except (BrokenPipeError, OSError):
            pass
    else:
        try:
            conn.send(("ok", result))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


@dataclass
class _Attempt:
    """One in-flight subprocess attempt."""

    process: multiprocessing.Process
    conn: Any
    payload: Any
    attempt: int
    deadline: Optional[float]


def _failure(
    name: str,
    status: str,
    attempt: int,
    message: str,
    exc_type: str = "",
    fingerprint: str = "",
    backoff_total_s: float = 0.0,
) -> TaskFailure:
    return TaskFailure(
        name=name,
        status=status,
        attempts=attempt,
        message=message,
        exc_type=exc_type,
        fingerprint=fingerprint,
        backoff_total_s=backoff_total_s,
    )


def _run_tasks_inline(
    tasks: Sequence[Tuple[str, Any]],
    worker: Callable[[Any], Any],
    retries: int,
    keep_going: bool,
    seed: int,
    backoff_base: float,
    backoff_cap: float,
) -> Tuple[Dict[str, Any], Dict[str, TaskFailure]]:
    """Serial in-process execution (no timeout enforcement possible)."""
    results: Dict[str, Any] = {}
    failures: Dict[str, TaskFailure] = {}
    for name, payload in tasks:
        last: Optional[BaseException] = None
        waited = 0.0
        for attempt in range(1, retries + 2):
            try:
                results[name] = worker(payload)
                last = None
                break
            except Exception as exc:  # noqa: BLE001 - quarantine, don't die
                last = exc
                if attempt <= retries:
                    delay = backoff_delay(
                        seed, name, attempt, backoff_base, backoff_cap
                    )
                    waited += delay
                    time.sleep(delay)
        if last is not None:
            failures[name] = _failure(
                name,
                "error",
                retries + 1,
                f"{type(last).__name__}: {last}",
                exc_type=type(last).__name__,
                fingerprint=crash_fingerprint(last),
                backoff_total_s=waited,
            )
            if not keep_going:
                raise SuiteError(
                    f"task {name!r} failed after {retries + 1} attempt(s): "
                    f"{type(last).__name__}: {last}"
                ) from last
    return results, failures


def run_tasks(
    tasks: Sequence[Tuple[str, Any]],
    worker: Callable[[Any], Any],
    jobs: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    keep_going: bool = False,
    seed: int = 0,
    backoff_base: float = 0.25,
    backoff_cap: float = 8.0,
) -> Tuple[Dict[str, Any], Dict[str, TaskFailure]]:
    """Run named tasks through ``worker`` with containment guarantees.

    Returns ``(results, failures)``: results by task name for every
    attempt that succeeded, and a :class:`TaskFailure` per quarantined
    task.  With ``keep_going=False`` (the default) the first
    quarantined task raises :class:`SuiteError` instead -- but other
    tasks' completed results are still lost only for the caller that
    didn't ask to keep going; in-flight workers are terminated cleanly
    either way.

    Execution modes:

    - ``jobs == 1`` and no ``timeout``: in-process (fast path; a crash
      of the Python process itself is obviously not survivable);
    - otherwise: **one forked process per attempt**.  Fork (not spawn)
      so arbitrary worker callables -- including test closures -- need
      no pickling; only results cross the pipe.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    tasks = list(tasks)
    if jobs == 1 and timeout is None:
        return _run_tasks_inline(
            tasks, worker, retries, keep_going, seed, backoff_base, backoff_cap
        )

    ctx = multiprocessing.get_context("fork")
    results: Dict[str, Any] = {}
    failures: Dict[str, TaskFailure] = {}
    #: (name, payload, attempt, not-before monotonic time)
    pending: deque = deque((name, payload, 1, 0.0) for name, payload in tasks)
    running: Dict[str, _Attempt] = {}
    #: cumulative backoff slept per task, for the failure manifest
    backoff_spent: Dict[str, float] = {}

    def launch(name: str, payload: Any, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main, args=(child_conn, worker, payload), daemon=True
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + timeout if timeout is not None else None
        running[name] = _Attempt(process, parent_conn, payload, attempt, deadline)

    def reap(name: str) -> None:
        attempt = running.pop(name)
        attempt.conn.close()
        if attempt.process.is_alive():
            attempt.process.terminate()
        attempt.process.join()

    def settle(name: str, failure: TaskFailure, payload: Any, attempt: int) -> None:
        """Requeue a failed attempt or quarantine the task."""
        if attempt <= retries:
            delay = backoff_delay(seed, name, attempt, backoff_base, backoff_cap)
            backoff_spent[name] = backoff_spent.get(name, 0.0) + delay
            pending.append((name, payload, attempt + 1, time.monotonic() + delay))
            return
        failures[name] = replace(
            failure, backoff_total_s=backoff_spent.get(name, 0.0)
        )
        if not keep_going:
            for other in list(running):
                reap(other)
            pending.clear()
            raise SuiteError(
                f"task {name!r} quarantined after {attempt} attempt(s) "
                f"({failure.status}): {failure.message}"
            )

    try:
        while pending or running:
            now = time.monotonic()
            # Launch every ready task while worker slots are free.
            if pending and len(running) < jobs:
                for _ in range(len(pending)):
                    name, payload, attempt, ready = pending.popleft()
                    if ready <= now and len(running) < jobs:
                        launch(name, payload, attempt)
                    else:
                        pending.append((name, payload, attempt, ready))
                    if len(running) >= jobs:
                        break
            # Sweep the in-flight attempts.
            for name in list(running):
                attempt = running[name]
                message = None
                if attempt.conn.poll():
                    try:
                        message = attempt.conn.recv()
                    except (EOFError, OSError):
                        message = None
                if message is not None:
                    payload, number = attempt.payload, attempt.attempt
                    reap(name)
                    if message[0] == "ok":
                        results[name] = message[1]
                    else:
                        _tag, exc_type, text, frames = message
                        settle(
                            name,
                            _failure(
                                name,
                                "error",
                                number,
                                f"{exc_type}: {text}",
                                exc_type=exc_type,
                                fingerprint=fingerprint_from_frames(exc_type, frames),
                            ),
                            payload,
                            number,
                        )
                elif not attempt.process.is_alive():
                    payload, number = attempt.payload, attempt.attempt
                    code = attempt.process.exitcode
                    reap(name)
                    settle(
                        name,
                        _failure(
                            name,
                            "crash",
                            number,
                            f"worker exited with code {code} before reporting",
                        ),
                        payload,
                        number,
                    )
                elif attempt.deadline is not None and now >= attempt.deadline:
                    payload, number = attempt.payload, attempt.attempt
                    reap(name)
                    settle(
                        name,
                        _failure(
                            name,
                            "timeout",
                            number,
                            f"attempt exceeded the {timeout}s task timeout",
                        ),
                        payload,
                        number,
                    )
            if pending or running:
                time.sleep(0.005)
    finally:
        for name in list(running):
            reap(name)
    return results, failures


def run_suite(
    names: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = SCHEMES,
    seed: int = 2024,
    jobs: int = 1,
    interpreter: Optional[str] = None,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    keep_going: bool = False,
) -> SuiteResult:
    """Measure ``names`` (default: every profile) under ``schemes``.

    ``jobs > 1`` distributes whole benchmarks across worker processes;
    results are identical to a serial run because every worker
    regenerates its program deterministically from the profile seed.

    ``cache_dir`` enables the on-disk compilation cache (workers share
    it safely: entry writes are atomic renames, and a racing write of
    the same key lands the same content either way).

    ``timeout``/``retries``/``keep_going`` configure the resilience
    engine (:func:`run_tasks`): a benchmark whose attempts all fail is
    quarantined into ``result.failures`` when ``keep_going`` is set,
    and raises :class:`SuiteError` otherwise.

    The requested ``jobs`` is a ceiling, not a promise: it is clamped
    by :func:`plan_jobs` to the host's real parallelism (and to the
    task count), and the decision is recorded on the result
    (``jobs_effective``, ``degraded``) and in the failure manifest.
    """
    if names is None:
        names = profile_names()
    names = list(names)
    trace = current_tracer().enabled
    tasks = [
        (name, (name, tuple(schemes), seed, interpreter, cache_dir, trace))
        for name in names
    ]
    effective, degraded = plan_jobs(jobs, len(tasks), timeout)
    start = time.perf_counter()
    results, failures = run_tasks(
        tasks,
        _measure_one,
        jobs=effective,
        timeout=timeout,
        retries=retries,
        keep_going=keep_going,
        seed=seed,
    )
    wall = time.perf_counter() - start

    # Merge worker telemetry: span events into the parent tracer (one
    # coherent timeline -- fork shares the monotonic epoch) and metrics
    # snapshots into one suite-level aggregate, which is also folded
    # into the process-global registry for ``--metrics-out``.
    tracer = current_tracer()
    aggregate = MetricsRegistry()
    programs: Dict[str, ProgramSummary] = {}
    trace_events: List[Dict[str, Any]] = []
    for name in names:
        if name not in results:
            continue
        summary, telemetry = results[name]
        programs[name] = summary
        aggregate.merge_snapshot(telemetry["metrics"])
        if telemetry["events"]:
            tracer.adopt(telemetry["events"])
            trace_events.extend(telemetry["events"])
    aggregate.inc("suite.tasks_completed", len(programs))
    aggregate.inc("suite.tasks_quarantined", len(failures))
    aggregate.set_gauge("suite.jobs_effective", effective)
    snapshot = aggregate.snapshot()
    get_metrics().merge_snapshot(snapshot)

    return SuiteResult(
        programs=programs,
        schemes=tuple(schemes),
        jobs=jobs,
        jobs_effective=effective,
        degraded=degraded,
        interpreter=interpreter,
        wall_seconds=wall,
        cache_dir=cache_dir,
        failures=failures,
        metrics=snapshot,
        trace_events=trace_events,
    )
