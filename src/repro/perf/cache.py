"""Content-addressed on-disk compilation cache.

Protecting a module is deterministic: the same input module, scheme,
and :class:`~repro.core.config.DefenseConfig` always produce the same
instrumented module (the remap/recompute bit-identity tests pin this
down).  That makes compilation outputs content-addressable -- the cache
key is a SHA-256 over the *printed* input module plus the scheme and a
canonical encoding of the config, so any change to either the program
or the protection options misses naturally.

Entries live under ``<root>/<key[:2]>/<key>.json`` and carry the
printed protected module, the pass statistics, and the recorded phase
timings, plus an internal payload digest.  A stored entry whose digest
no longer matches its payload (truncated write, manual edit, bit rot)
is treated as a miss and recompiled over; corruption never produces a
wrong module.  Writes go through a temp file and ``os.replace`` so
concurrent suite workers sharing one cache directory cannot observe a
half-written entry.

The cache is an accelerator, never a correctness dependency, so I/O
failure must not kill a run: any :class:`OSError` beyond a plain miss
(permissions, disk full, the root turning out to be a file) logs one
warning and **degrades the instance to cache-off** -- every later
lookup misses and every later store is a no-op.  An optional
``fault_hook`` (see :mod:`repro.robustness.faults`) lets chaos runs
inject exactly those failures plus corrupted/truncated entries.

This module is deliberately light on dependencies (stdlib plus the
stdlib-only :mod:`repro.observability`): callers in
:mod:`repro.metrics.overhead` import it lazily to keep the metrics
layer importable without dragging in the perf package.  Every lookup
outcome is published twice -- into the per-instance :class:`CacheStats`
(the legacy per-run view) and into the global metrics registry /
tracer as ``cache.*`` counters and instant events, which is how suite
manifests keep the final statistics even after an instance degrades to
cache-off.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import tempfile
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

from ..observability import current_tracer, get_event_log, get_metrics

#: Bump to invalidate every existing cache entry (key prefix).
#: v2: keys hash a memoized digest of the module text instead of
#: re-hashing the full text once per scheme.
CACHE_FORMAT = "repro-compile-cache-v2"

logger = logging.getLogger(__name__)


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    io_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


def config_token(config: Any) -> str:
    """Canonical string encoding of a defense config for the cache key.

    Any dataclass works; fields are serialized sorted so the token is
    stable across field-declaration reordering.
    """
    return json.dumps(dataclasses.asdict(config), sort_keys=True)


@lru_cache(maxsize=64)
def _text_digest(module_text: str) -> str:
    """Digest of one printed module, memoized.

    A measurement computes one key per scheme over the *same* module
    text; memoizing the text's digest makes those repeat keyings hash a
    64-char digest instead of the whole printed module each time.
    """
    return hashlib.sha256(module_text.encode("utf-8")).hexdigest()


def compute_key(module_text: str, scheme: str, token: str) -> str:
    """The content address of one (module, scheme, config) compilation."""
    digest = hashlib.sha256()
    for part in (CACHE_FORMAT, scheme, token, _text_digest(module_text)):
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


def _payload_digest(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: (root, key) -> (digest of the raw entry text, verified payload).
#: Re-loading an unchanged entry skips the JSON deserialize and the
#: canonical-payload re-hash; the raw-text digest still covers every
#: byte on disk, so tampering since the first load is still a miss.
_LOAD_MEMO: Dict[Tuple[str, str], Tuple[str, Dict[str, Any]]] = {}
_LOAD_MEMO_CAP = 256


class CompilationCache:
    """Directory-backed cache of protected modules and their stats."""

    def __init__(self, root: str, fault_hook=None):
        self.root = root
        self.stats = CacheStats()
        #: True once an I/O error demoted this instance to cache-off.
        self.disabled = False
        #: optional fault injector: loads pass through
        #: ``on_cache_load(key, entry)``, stores through
        #: ``on_cache_store(key, text)`` (which may raise ``OSError``)
        self.fault_hook = fault_hook

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _miss(self) -> None:
        self.stats.misses += 1
        get_metrics().inc("cache.misses")

    def _degrade(self, operation: str, exc: OSError) -> None:
        """Demote to cache-off after an I/O failure, warning once."""
        self.stats.io_errors += 1
        metrics = get_metrics()
        metrics.inc("cache.io_errors")
        metrics.set_gauge("cache.degraded", 1)
        current_tracer().instant(
            "cache.io_error", "cache", operation=operation, error=str(exc)
        )
        if not self.disabled:
            self.disabled = True
            logger.warning(
                "compilation cache %s failed (%s: %s); "
                "disabling the cache for the rest of the run",
                operation,
                type(exc).__name__,
                exc,
            )

    def key_for(self, module_text: str, config: Any) -> str:
        return compute_key(module_text, config.scheme, config_token(config))

    @staticmethod
    def _valid_entry_on_disk(path: str, digest: str) -> bool:
        """True when ``path`` already holds a verified entry for ``digest``.

        Any read/parse problem just returns ``False`` -- the caller
        then writes a fresh entry over whatever is there.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            return False
        return (
            isinstance(existing, dict)
            and existing.get("format") == CACHE_FORMAT
            and existing.get("digest") == digest
        )

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored entry for ``key``, or ``None`` on miss/corruption.

        The returned dict has ``scheme``, ``module`` (printed protected
        module), ``pass_stats``, and ``timings`` keys.
        """
        if self.disabled:
            self._miss()
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            self._miss()
            current_tracer().instant("cache.miss", "cache", key=key[:12])
            return None
        except OSError as exc:
            self._degrade("read", exc)
            self._miss()
            return None
        memo_key = (self.root, key)
        if self.fault_hook is None:
            text_digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
            memo = _LOAD_MEMO.get(memo_key)
            if memo is not None and memo[0] == text_digest:
                self.stats.hits += 1
                get_metrics().inc("cache.hits")
                current_tracer().instant("cache.hit", "cache", key=key[:12])
                return memo[1]
        try:
            entry = json.loads(text)
        except ValueError:
            self._miss()
            current_tracer().instant("cache.miss", "cache", key=key[:12], reason="unparsable")
            return None
        if self.fault_hook is not None:
            entry = self.fault_hook.on_cache_load(key, entry)
        payload = entry.get("payload")
        if (
            not isinstance(payload, dict)
            or entry.get("format") != CACHE_FORMAT
            or entry.get("key") != key
            or entry.get("digest") != _payload_digest(payload)
        ):
            self.stats.corrupt += 1
            get_metrics().inc("cache.corrupt")
            self._miss()
            current_tracer().instant("cache.corrupt", "cache", key=key[:12])
            get_event_log().emit("cache-corrupt-recompile", key=key)
            return None
        if self.fault_hook is None:
            if len(_LOAD_MEMO) >= _LOAD_MEMO_CAP:
                _LOAD_MEMO.pop(next(iter(_LOAD_MEMO)))
            _LOAD_MEMO[memo_key] = (text_digest, payload)
        self.stats.hits += 1
        get_metrics().inc("cache.hits")
        current_tracer().instant("cache.hit", "cache", key=key[:12])
        return payload

    def store(
        self,
        key: str,
        scheme: str,
        module_text: str,
        pass_stats: Dict[str, Dict[str, Any]],
        timings: Optional[Dict[str, float]] = None,
    ) -> None:
        """Persist one compilation result atomically.

        Safe under concurrent same-key writers: the key is a content
        address, so every writer carries an identical entry -- each
        writes a private ``mkstemp`` file (``O_EXCL``) and publishes it
        with an atomic ``os.replace``, and readers can never observe a
        torn entry regardless of interleaving.  When a verified entry
        is already on disk the store is skipped entirely, so N racing
        writers collapse to (at most) N renames of identical bytes and
        usually just one.

        I/O failure is absorbed: the entry is simply not cached and the
        instance degrades to cache-off (see :meth:`_degrade`).
        """
        if self.disabled:
            return
        payload = {
            "scheme": scheme,
            "module": module_text,
            "pass_stats": pass_stats,
            "timings": timings or {},
        }
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "digest": _payload_digest(payload),
            "payload": payload,
        }
        path = self._path(key)
        if self.fault_hook is None and self._valid_entry_on_disk(path, entry["digest"]):
            get_metrics().inc("cache.store_skips")
            current_tracer().instant("cache.store_skip", "cache", key=key[:12])
            return
        directory = os.path.dirname(path)
        temp_path = None
        try:
            text = json.dumps(entry, sort_keys=True)
            if self.fault_hook is not None:
                text = self.fault_hook.on_cache_store(key, text)
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_path, path)
        except OSError as exc:
            if temp_path is not None:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
            self._degrade("write", exc)
            return
        self.stats.stores += 1
        get_metrics().inc("cache.stores")
        current_tracer().instant("cache.store", "cache", key=key[:12])
