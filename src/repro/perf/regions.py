"""Profile digests for the trace tier's compiled-region cache.

The trace compiler (:mod:`repro.hardware.tracec`) caches its compiled
program on the module, keyed on the module's structural fingerprint
*plus* the profile that guided region selection: feeding a different
warmup profile into ``trace_compile`` must recompile even when the IR
did not change, and re-running with the same profile must hit.  The
digest lives here (not in ``hardware/``) because the perf layer owns
what counts as "the same profile" -- today that is the per-block
execution counts and nothing else: step and cycle attributions do not
influence region selection or chain layout, so they stay out of the
key.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional


def profile_digest(block_counts: Optional[Dict[str, float]]) -> Optional[str]:
    """Stable short digest of a ``"function:block" -> executions`` map.

    ``None`` (no profile: static region selection) digests to ``None``.
    Counts are digested with ``:.0f`` so the float/int representation an
    entry took through JSON round-trips does not split the cache, and
    zero-count blocks are dropped for the same reason -- region
    selection ignores them, so their presence must not force a
    recompile.
    """
    if block_counts is None:
        return None
    digest = hashlib.sha256()
    for label in sorted(block_counts):
        count = block_counts[label]
        if not isinstance(count, (int, float)) or count <= 0:
            continue
        digest.update(f"{label}={count:.0f};".encode("utf-8"))
    return digest.hexdigest()[:16]
