"""Command-line interface: ``python -m repro <command>``.

Subcommands:

``compile``   MiniC source -> textual IR (optionally post-mem2reg)
``run``       compile, protect, and execute a program
``analyze``   print the vulnerability analysis of a program
``attack``    replay a built-in attack scenario under every scheme
``bench``     run one generated benchmark under every scheme
``suite``     measure many benchmarks, optionally across worker processes
``chaos``     inject a fault plan and assert the defense contract
``campaign``  fuzz attack families, emit the defense-coverage matrix
``profile``   execute a program under the profiler, print hot spots
``scenarios`` list the built-in attack scenarios / campaign families
``serve``     persistent compile-and-execute daemon over a local socket
``loadgen``   fire a seeded request mix at a running serve daemon
``top``       live terminal dashboard over a running serve daemon
``audit``     offline security summary of a repro-events-v1 file

``run``, ``bench``, ``suite``, ``chaos``, and ``campaign`` accept ``--trace-out FILE``
(a Chrome-trace / Perfetto JSON of the command's spans),
``--metrics-out FILE`` (the ``repro-metrics-v1`` counters snapshot),
and ``--events-out FILE`` (the ``repro-events-v1`` security-event
JSON-lines log); ``serve`` accepts all three plus ``--slo FILE``, and
``loadgen --events-out`` pulls the daemon's ring over the ``events``
op.  See :mod:`repro.observability`.

``run --profile-out`` / ``profile --profile-out`` save an execution
profile whose per-block counts ``run``/``bench`` ``--profile-in`` feed
back into trace-tier region selection (``--interpreter trace``).

Failures exit with a one-line ``repro: error:`` diagnostic and a
distinct code per failure layer (see :data:`EXIT_CODES`) -- never a
traceback: 2 for an undetected attack / broken contract / suite
failure, 3 for I/O (missing file, unreadable plan), 4 for invalid
MiniC, 5 for IR verification and protection-pipeline bugs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .attacks import build_scenarios
from .core import (
    DefenseConfig,
    SCHEMES,
    analyze_module,
    build_security_report,
    protect,
)
from .frontend import CodegenError, CParseError, LexError, SemaError, compile_source
from .hardware import CPU, INTERPRETERS
from .hardware.errors import ReproError
from .ir import print_module
from .ir.verifier import VerificationError
from .observability import (
    PROFILE_SCHEMA,
    ExecutionProfiler,
    audit_events,
    current_tracer,
    disable_tracing,
    enable_tracing,
    format_report,
    get_event_log,
    get_metrics,
    hot_block_counts,
    publish_execution,
    read_events,
    render_audit,
    render_dashboard,
    reset_event_log,
    reset_metrics,
    write_events,
    write_metrics,
    write_trace,
)
from .transforms import Mem2Reg
from .workloads import generate_program, get_profile, profile_names

#: Exit code per failure layer.  :class:`~repro.hardware.errors.ReproError`
#: subclasses carry their own ``exit_code`` and take precedence.
EXIT_CODES = {
    "io": 3,
    "frontend": 4,
    "verify": 5,
}

#: MiniC front-end failures: invalid *input*, not framework bugs.
_FRONTEND_ERRORS = (LexError, CParseError, SemaError, CodegenError)


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _parse_inputs(items: Optional[List[str]]) -> List[bytes]:
    return [item.encode("utf-8") for item in (items or [])]


def _load_trace_profile(path: str) -> dict:
    """Read a ``--profile-out`` report back as trace-tier block counts."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ReproError(f"invalid profile JSON in {path}: {exc}") from exc
    counts = hot_block_counts(report)
    if counts is None:
        raise ReproError(
            f"{path} carries no per-block execution counts (expected a "
            f"{PROFILE_SCHEMA} report from --profile-out under the block "
            f"or trace tier)"
        )
    return counts


def _write_profile_report(path: str, report: dict) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"profile written to {path}", file=sys.stderr)


# -- subcommands ---------------------------------------------------------------


def cmd_compile(args: argparse.Namespace) -> int:
    module = compile_source(_read_source(args.source), name=args.name)
    if args.mem2reg:
        Mem2Reg().run(module)
    print(print_module(module), end="")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    source = _read_source(args.source)
    module = compile_source(source, name=args.name)
    config = DefenseConfig(scheme=args.scheme, protect_fields=args.fields)
    protected = protect(module, config=config)
    if args.timings:
        # Read the phases back from the metrics snapshot rather than
        # ``protected.timings``: both views are fed by the same
        # ``phase_span`` clock readings, so stderr and ``--metrics-out``
        # can never disagree.
        prefix = "compile.phase."
        phases = {
            name[len(prefix):]: stats["sum"]
            for name, stats in get_metrics().snapshot()["histograms"].items()
            if name.startswith(prefix)
        }
        total = sum(phases.values())
        for phase, seconds in sorted(phases.items(), key=lambda item: -item[1]):
            print(f"[timing] {phase:24s} {seconds * 1e3:8.2f}ms", file=sys.stderr)
        print(f"[timing] {'total':24s} {total * 1e3:8.2f}ms", file=sys.stderr)
    trace_profile = (
        _load_trace_profile(args.profile_in) if args.profile_in else None
    )
    profiler = ExecutionProfiler() if args.profile_out else None
    cpu = CPU(
        protected.module,
        seed=args.seed,
        interpreter=args.interpreter,
        profiler=profiler,
        trace_profile=trace_profile,
    )
    with current_tracer().span(f"execute:{args.scheme}", "exec"):
        result = cpu.run(inputs=_parse_inputs(args.input))
    publish_execution(get_metrics(), result, scheme=args.scheme)
    if result.detected:
        from .serve.registry import source_digest

        get_event_log().emit(
            "trap",
            module_digest=source_digest(source),
            scheme=args.scheme,
            tier=result.interpreter,
            status=result.status,
            op="run",
        )
    if profiler is not None:
        _write_profile_report(args.profile_out, profiler.report(result))
    sys.stdout.write(result.output.decode("utf-8", "replace"))
    print(
        f"[{args.scheme}] status={result.status} return={result.return_value} "
        f"cycles={result.cycles:.0f} instructions={result.instructions} "
        f"ipc={result.ipc:.2f} pa={result.pa_dynamic}",
        file=sys.stderr,
    )
    return 0 if result.ok else 2


def cmd_analyze(args: argparse.Namespace) -> int:
    module = compile_source(_read_source(args.source), name=args.name)
    Mem2Reg().run(module)
    report = analyze_module(module)
    security = build_security_report(report)
    categories = report.branch_categories()
    print(f"program variables:      {len(report.all_variables)}")
    print(f"conservative (CPA) set: {len(report.cpa_variables)}")
    print(f"refined (Pythia) set:   {len(report.refined_variables)}")
    print(f"  stack vulnerable:     {len(report.stack_vulnerable)}")
    print(f"  heap vulnerable:      {len(report.heap_vulnerable)}")
    print(f"refinement factor:      {report.refinement_factor():.2f}x")
    print(
        f"branches: {security.total_branches} total | "
        f"{categories['direct']} direct, {categories['indirect']} indirect, "
        f"{categories['unaffected']} unaffected"
    )
    print(
        f"secured:  Pythia {100 * security.pythia_secured_fraction:.1f}% | "
        f"DFI {100 * security.dfi_secured_fraction:.1f}%"
    )
    if args.verbose:
        for obj in sorted(report.refined_variables, key=lambda o: o.label):
            print(f"  vulnerable: {obj.label} ({obj.kind})")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    scenarios = build_scenarios()
    if args.scenario not in scenarios:
        print(f"unknown scenario {args.scenario!r}; try: {', '.join(scenarios)}")
        return 1
    scenario = scenarios[args.scenario]
    module = scenario.compile()
    print(f"{scenario.name}: {scenario.description}")
    failures = 0
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        outcome = scenario.attack_outcome(scenario.run_attack(protected.module))
        print(f"  {scheme:8s} -> {outcome}")
        if scheme == "vanilla" and outcome != "success":
            failures += 1
    return 0 if not failures else 2


def cmd_bench(args: argparse.Namespace) -> int:
    program = generate_program(get_profile(args.benchmark))
    module = program.compile()
    trace_profile = (
        _load_trace_profile(args.profile_in) if args.profile_in else None
    )
    base = None
    print(f"{args.benchmark}: {module.instruction_count()} IR instructions")
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        with current_tracer().span(f"execute:{scheme}", "exec", benchmark=args.benchmark):
            result = CPU(
                protected.module,
                seed=args.seed,
                interpreter=args.interpreter,
                trace_profile=trace_profile,
            ).run(inputs=list(program.inputs))
        publish_execution(get_metrics(), result, scheme=scheme)
        if not result.ok:
            print(f"  {scheme:8s} FAILED: {result.status}")
            return 2
        if scheme == "vanilla":
            base = result.cycles
            print(f"  {scheme:8s} cycles={result.cycles:10.0f}")
        else:
            overhead = 100 * (result.cycles / base - 1)
            print(
                f"  {scheme:8s} cycles={result.cycles:10.0f} "
                f"overhead={overhead:6.1f}% pa={result.pa_dynamic}"
            )
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from .perf import run_suite

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}")
        return 1
    known = profile_names()
    for name in args.benchmark:
        if name not in known:
            print(f"unknown benchmark {name!r}; try: {', '.join(known)}")
            return 1
    names = args.benchmark or None
    cache_dir = None if args.no_cache else args.cache_dir
    result = run_suite(
        names=names,
        seed=args.seed,
        jobs=args.jobs,
        interpreter=args.interpreter,
        cache_dir=cache_dir,
        timeout=args.timeout,
        retries=args.retries,
        keep_going=args.keep_going,
    )
    for name in sorted(result.programs):
        program = result.programs[name]
        overheads = " ".join(
            f"{scheme}={100 * program.runtime_overhead(scheme):+.1f}%"
            for scheme in result.schemes
            if scheme != "vanilla"
        )
        print(f"  {name:18s} {overheads}")
    print(
        f"{len(result.programs)} benchmarks x {len(result.schemes)} schemes "
        f"in {result.wall_seconds:.2f}s "
        f"({result.jobs} job{'s' if result.jobs != 1 else ''}): "
        f"{result.steps_per_second:,.0f} steps/s, "
        f"decode {result.decode_seconds * 1e3:.1f}ms"
    )
    if cache_dir is not None:
        print(
            f"compilation cache [{cache_dir}]: "
            f"{result.cache_hits} hits, {result.cache_misses} misses"
        )
    if args.manifest:
        import json

        with open(args.manifest, "w", encoding="utf-8") as handle:
            json.dump(result.failure_manifest(), handle, indent=2, sort_keys=True)
        print(f"failure manifest written to {args.manifest}")
    if result.failures:
        for name in result.quarantined:
            failure = result.failures[name]
            print(
                f"  QUARANTINED {name}: {failure.status} after "
                f"{failure.attempts} attempt(s): {failure.message}",
                file=sys.stderr,
            )
        return 2
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .robustness import FaultPlan, smoke_plan
    from .robustness.chaos import run_chaos

    if args.plan:
        with open(args.plan, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            plan = FaultPlan.from_json(text)
        except (ValueError, KeyError, TypeError) as exc:
            # Bad JSON (JSONDecodeError is a ValueError), an unknown
            # fault kind (FaultSpec validation), or a wrong schema
            # (missing keys / mis-typed fields): all user input errors.
            detail = str(exc) or type(exc).__name__
            return _fail(
                ValueError(f"invalid fault plan {args.plan}: {detail}"),
                EXIT_CODES["io"],
            )
    else:
        plan = smoke_plan(args.seed)
    report = run_chaos(
        plan, workload=args.workload, seed=args.seed, interpreter=args.interpreter
    )
    print(
        f"chaos: {len(plan.specs)} fault spec(s) against {args.workload!r} "
        f"(plan seed {plan.seed}, run seed {args.seed})"
    )
    for line in report.summary_lines():
        print(line)
    triage = report.triage
    if triage.total_crashes:
        print("triage buckets (uncaught exceptions -- framework bugs):")
        for line in triage.summary_lines():
            print(f"  {line}")
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as handle:
            json.dump(report.to_manifest(), handle, indent=2, sort_keys=True)
        print(f"chaos manifest written to {args.manifest}")
    violations = report.contract_violations()
    if violations:
        print(f"FAIL: {len(violations)} defense-contract violation(s)")
        for case in violations:
            print(f"  [{case.index}] {case.kind}: {case.classification} -- {case.detail}")
        return 2
    print("OK: every injected fault stayed within its defense contract")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from .robustness.campaign import (
        run_campaign,
        write_manifest,
        write_matrix,
    )

    families = None
    if args.families:
        families = [name.strip() for name in args.families.split(",") if name.strip()]
        known = build_scenarios()
        for name in families:
            if name not in known:
                return _fail(
                    ValueError(
                        f"unknown attack family {name!r}; "
                        f"try: {', '.join(sorted(known))}"
                    ),
                    2,
                )
    with current_tracer().span("campaign", "campaign", seed=args.seed):
        report = run_campaign(
            seed=args.seed,
            budget=args.budget,
            families=families,
            reduce_bypasses=not args.no_reduce,
        )
    print(
        f"campaign: {report.budget} mutants over {len(report.families)} "
        f"families x {len(SCHEMES)} schemes (seed {report.seed})"
    )
    for line in report.render_matrix():
        print(line)
    buckets = report.bypass_buckets()
    if buckets:
        print(f"bypass buckets ({len(buckets)}):")
        for bucket in sorted(buckets):
            records = buckets[bucket]
            exemplar = next(
                (r for r in records if r.reduced_source), records[0]
            )
            shrink = (
                f" (exemplar reduced {exemplar.original_lines}->"
                f"{exemplar.reduced_lines} lines)"
                if exemplar.reduced_lines
                else ""
            )
            print(f"  {bucket}: {len(records)} mutant(s){shrink}")
    triage = report.triage
    if triage.total_crashes:
        print("triage buckets (uncaught exceptions -- framework bugs):")
        for line in triage.summary_lines():
            print(f"  {line}")
    if args.matrix_out:
        write_matrix(report, args.matrix_out)
        print(f"coverage matrix written to {args.matrix_out}")
    if args.manifest:
        write_manifest(report, args.manifest)
        print(f"campaign manifest written to {args.manifest}")
    violations = report.contract_violations()
    if violations or report.crashes:
        print(
            f"FAIL: {len(violations)} contract violation(s), "
            f"{triage.total_crashes} crash(es)"
        )
        for violation in violations:
            print(
                f"  {violation['mutant']}/{violation['scheme']}: "
                f"{violation['reason']}"
            )
        return 2
    print("OK: every vanilla bypass of the new families was trapped or detected")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    module = compile_source(_read_source(args.source), name=args.name)
    protected = protect(module, scheme=args.scheme)
    profiler = ExecutionProfiler()
    cpu = CPU(
        protected.module,
        seed=args.seed,
        interpreter=args.interpreter or "block",
        profiler=profiler,
    )
    result = cpu.run(inputs=_parse_inputs(args.input))
    sys.stdout.write(result.output.decode("utf-8", "replace"))
    report = profiler.report(result, top=args.top)
    for line in format_report(report):
        print(line)
    if args.profile_out:
        _write_profile_report(args.profile_out, report)
    return 0 if result.ok else 2


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.pool import WorkerPool
    from .serve.server import ReproServer

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}")
        return 1
    if args.socket and args.port is not None:
        print("pass --socket or --port, not both")
        return 1
    cache_dir = None if args.no_cache else args.cache_dir
    timeout = args.timeout if args.timeout and args.timeout > 0 else None
    slo_policy = None
    if args.slo:
        from .observability import SloPolicy

        try:
            slo_policy = SloPolicy.from_json_file(args.slo)
        except ValueError as exc:
            return _fail(exc, EXIT_CODES["io"])
    pool = WorkerPool(
        workers=args.workers,
        capacity=args.max_modules,
        cache_dir=cache_dir,
        timeout=timeout,
        trace=current_tracer().enabled,
        debug_ops=args.debug_ops,
    )
    server = ReproServer(
        pool,
        socket_path=None if args.port is not None else (args.socket or ".repro-serve.sock"),
        port=args.port,
        drain_timeout=args.drain_timeout,
        slo_policy=slo_policy,
    )

    async def _serve() -> None:
        await server.serve_until_stopped()

    # Fork the workers before any event loop exists, so no loop or
    # executor-thread state is duplicated into them.
    pool.start()
    try:
        print(
            f"repro serve: {pool.size} worker(s) on {server.endpoint} "
            + (f"(timeout {timeout}s" if timeout else "(no timeout")
            + (f", cache {cache_dir})" if cache_dir else ", cache off)"),
            file=sys.stderr,
            flush=True,
        )
        asyncio.run(_serve())
    finally:
        pool.stop()
    print(
        f"repro serve: drained after {server.requests} request(s), "
        f"{server.coalesced} coalesced, {pool.restarts} worker restart(s)",
        file=sys.stderr,
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from .serve.loadgen import run_load
    from .workloads.nginx import DEFAULT_MIX, build_request_mix, parse_mix

    try:
        mix = parse_mix(args.mix) if args.mix else dict(DEFAULT_MIX)
    except ValueError as exc:
        return _fail(exc, 2)
    requests = build_request_mix(
        count=args.requests,
        seed=args.seed,
        mix=mix,
        duration=args.size,
        variants=args.variants,
        interpreter=args.interpreter,
    )
    report = run_load(
        requests,
        concurrency=args.concurrency,
        socket_path=None if args.port is not None else (args.socket or ".repro-serve.sock"),
        port=args.port,
        duration_s=args.duration,
        connect_deadline_s=args.connect_wait,
    )
    for line in report.summary_lines():
        print(line)
    if args.report_out:
        import json

        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"load report written to {args.report_out}", file=sys.stderr)
    if args.events_out:
        # The daemon owns the ring; pull it over the events op and
        # adopt it locally, so the shared --events-out exporter writes
        # a file carrying every worker-side trap this load drew.
        from .serve.client import ServeClient

        client = ServeClient(
            socket_path=None
            if args.port is not None
            else (args.socket or ".repro-serve.sock"),
            port=args.port,
        )
        try:
            response = client.request("events")
        finally:
            client.close()
        if response.get("status") != "ok":
            return _fail(
                ValueError(f"events op failed: {response.get('error')}"),
                EXIT_CODES["io"],
            )
        get_event_log().adopt(response["result"]["events"])
    failed = False
    if report.failures:
        print(f"FAIL: {report.failures} request(s) failed", file=sys.stderr)
        failed = True
    if args.max_p99_ms is not None and report.p99_ms() > args.max_p99_ms:
        print(
            f"FAIL: p99 {report.p99_ms():.1f}ms exceeds the "
            f"--max-p99-ms bound of {args.max_p99_ms:.1f}ms",
            file=sys.stderr,
        )
        failed = True
    return 2 if failed else 0


def cmd_top(args: argparse.Namespace) -> int:
    import time as time_module

    from .serve.client import ServeClient

    frames = 0
    try:
        while True:
            client = ServeClient(
                socket_path=None
                if args.port is not None
                else (args.socket or ".repro-serve.sock"),
                port=args.port,
            )
            try:
                response = client.request("stats")
            finally:
                client.close()
            if response.get("status") != "ok":
                return _fail(
                    ValueError(f"stats op failed: {response.get('error')}"),
                    EXIT_CODES["io"],
                )
            frames += 1
            lines = render_dashboard(response["result"])
            if not args.once and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            print("\n".join(lines), flush=True)
            if args.once or (args.frames is not None and frames >= args.frames):
                return 0
            time_module.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_audit(args: argparse.Namespace) -> int:
    try:
        events = read_events(args.events)
    except ValueError as exc:
        return _fail(exc, EXIT_CODES["io"])
    report = audit_events(events)
    for line in render_audit(report, path=args.events):
        print(line)
    if args.json_out:
        import json

        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"audit report written to {args.json_out}", file=sys.stderr)
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    from .robustness.campaign import FAMILY_FAULTS, NEW_FAMILIES

    for name, scenario in build_scenarios().items():
        detected = ",".join(scenario.detected_by) or "-"
        prevented = ",".join(scenario.prevented_by) or "-"
        line = f"{name:22s} detected_by={detected:16s} prevented_by={prevented}"
        if name in NEW_FAMILIES:
            fault = FAMILY_FAULTS.get(name)
            extra = f" + {fault} fault" if fault else ""
            line += f"  [campaign family{extra}]"
        print(line)
    print(
        "every scenario doubles as a campaign attack family "
        "(python -m repro campaign); the [campaign family] rows are the "
        "related-work adversaries beyond the paper's listings"
    )
    return 0


# -- parser ---------------------------------------------------------------


def _add_observability_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a Chrome-trace / Perfetto JSON of this command's spans",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the repro-metrics-v1 counters snapshot as JSON",
    )
    p.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="write the repro-events-v1 security-event log as JSON lines",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pythia (ASPLOS 2024) reproduction: compile, protect, attack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="MiniC source to textual IR")
    p.add_argument("source", help="path to MiniC source, or - for stdin")
    p.add_argument("--name", default="module")
    p.add_argument("--mem2reg", action="store_true", help="promote to SSA first")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile, protect, and execute")
    p.add_argument("source")
    p.add_argument("--name", default="module")
    p.add_argument("--scheme", choices=SCHEMES, default="pythia")
    p.add_argument("--fields", action="store_true", help="§6.4 field canaries")
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--input", action="append", help="queue a benign input line (repeatable)"
    )
    p.add_argument(
        "--interpreter",
        choices=INTERPRETERS,
        default=None,
        help="CPU backend (default: pre-decoded dispatch)",
    )
    p.add_argument(
        "--timings",
        action="store_true",
        help="print per-phase compile timings to stderr",
    )
    p.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="run under the execution profiler and write its report "
        "(per-block counts need --interpreter block or trace)",
    )
    p.add_argument(
        "--profile-in",
        default=None,
        metavar="FILE",
        help="feed a saved --profile-out report to trace-tier region "
        "selection (only the trace interpreter consumes it)",
    )
    _add_observability_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("analyze", help="print the vulnerability analysis")
    p.add_argument("source")
    p.add_argument("--name", default="module")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("attack", help="replay a scenario under every scheme")
    p.add_argument("scenario")
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("bench", help="run one generated benchmark")
    p.add_argument("benchmark", choices=profile_names(), metavar="BENCHMARK")
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--interpreter",
        choices=INTERPRETERS,
        default=None,
        help="CPU backend (default: pre-decoded dispatch)",
    )
    p.add_argument(
        "--profile-in",
        default=None,
        metavar="FILE",
        help="feed a saved --profile-out report to trace-tier region "
        "selection (only the trace interpreter consumes it)",
    )
    _add_observability_args(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "suite", help="measure benchmarks under every scheme, optionally in parallel"
    )
    p.add_argument(
        "benchmark",
        nargs="*",
        metavar="BENCHMARK",
        help="benchmarks to measure (default: all profiles)",
    )
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the fan-out (default: 1, serial)",
    )
    p.add_argument(
        "--interpreter",
        choices=INTERPRETERS,
        default=None,
        help="CPU backend (default: pre-decoded dispatch)",
    )
    p.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="compilation cache directory (default: .repro-cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the compilation cache",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-benchmark attempt timeout in seconds (default: none)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a failing benchmark this many times before quarantine",
    )
    p.add_argument(
        "--keep-going",
        action="store_true",
        help="quarantine failing benchmarks and report the rest "
        "instead of aborting the suite",
    )
    p.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="write the completion/quarantine manifest as JSON",
    )
    _add_observability_args(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser(
        "chaos", help="inject a fault plan and assert the defense contract"
    )
    p.add_argument(
        "--plan",
        default=None,
        metavar="FILE",
        help="fault plan JSON (default: the built-in one-of-every-kind "
        "smoke plan at --seed)",
    )
    p.add_argument(
        "--workload",
        default="nginx",
        choices=profile_names(),
        metavar="BENCHMARK",
        help="workload to run under faults (default: nginx, the "
        "profile with live heap traffic)",
    )
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--interpreter",
        choices=INTERPRETERS,
        default=None,
        help="CPU backend (default: pre-decoded dispatch)",
    )
    p.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="write the full chaos manifest (cases, violations, triage) as JSON",
    )
    _add_observability_args(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "campaign",
        help="fuzz attack families over every scheme and emit the "
        "defense-coverage matrix",
    )
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--budget",
        type=int,
        default=200,
        help="total mutants, spread over the families (default: 200)",
    )
    p.add_argument(
        "--families",
        default=None,
        metavar="NAME[,NAME...]",
        help="comma-separated attack families (default: all scenarios, "
        "incl. the related-work families pac_reuse, call_bend, heap_cross)",
    )
    p.add_argument(
        "--matrix-out",
        default=None,
        metavar="FILE",
        help="write the scheme x family coverage matrix as JSON",
    )
    p.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="write the full campaign manifest (runs, minimized "
        "bypasses, triage) as JSON",
    )
    p.add_argument(
        "--no-reduce",
        action="store_true",
        help="skip ddmin minimization of bypass exemplars",
    )
    _add_observability_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "profile", help="execute under the profiler and print hot spots"
    )
    p.add_argument("source")
    p.add_argument("--name", default="module")
    p.add_argument("--scheme", choices=SCHEMES, default="pythia")
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--input", action="append", help="queue a benign input line (repeatable)"
    )
    p.add_argument(
        "--interpreter",
        choices=INTERPRETERS,
        default=None,
        help="CPU backend (default: block, the fastest tier)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows per hot-spot table (default: 10)",
    )
    p.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="also write the report as JSON (feeds run/bench --profile-in)",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("scenarios", help="list the built-in attack scenarios")
    p.set_defaults(func=cmd_scenarios)

    p = sub.add_parser(
        "serve",
        help="persistent compile-and-execute daemon over a local socket",
    )
    p.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="Unix-domain socket path (default: .repro-serve.sock)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=None,
        help="listen on loopback TCP instead of a Unix socket",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=max(2, min(4, os.cpu_count() or 2)),
        help="persistent worker processes; requests shard across them "
        "by content digest (default: min(4, CPUs), at least 2)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-request worker timeout in seconds; 0 disables "
        "(default: 60)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to let in-flight requests finish on shutdown "
        "(default: 30)",
    )
    p.add_argument(
        "--max-modules",
        type=int,
        default=32,
        help="warm-registry capacity per worker, in distinct modules "
        "(default: 32)",
    )
    p.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="shared on-disk compilation cache (default: .repro-cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk compilation cache",
    )
    p.add_argument(
        "--debug-ops",
        action="store_true",
        help="enable the test-only _debug_crash op (crash containment "
        "drills)",
    )
    p.add_argument(
        "--slo",
        default=None,
        metavar="FILE",
        help="SLO policy JSON; enables the background burn-rate "
        "evaluator (emits slo-breach events)",
    )
    _add_observability_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="fire a seeded nginx-style request mix at a serve daemon",
    )
    p.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="daemon socket path (default: .repro-serve.sock)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=None,
        help="connect over loopback TCP instead of a Unix socket",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=200,
        help="requests in the mix (default: 200)",
    )
    p.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="concurrent client connections (default: 8)",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="keep cycling the mix for this many seconds instead of "
        "sending it once",
    )
    p.add_argument(
        "--mix",
        default=None,
        metavar="OP=W[,OP=W...]",
        help="op weights (default: run=6,compile=3,attack=2,profile=1)",
    )
    p.add_argument(
        "--variants",
        type=int,
        default=3,
        help="distinct generated programs in the working set (default: 3)",
    )
    p.add_argument(
        "--size",
        default="3s",
        choices=("3s", "30s", "300s"),
        help="nginx workload size per request (default: 3s)",
    )
    p.add_argument(
        "--interpreter",
        choices=INTERPRETERS,
        default="block",
        help="interpreter requested for run/profile ops (default: block)",
    )
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--connect-wait",
        type=float,
        default=10.0,
        help="seconds to wait for the daemon to answer ping (default: 10)",
    )
    p.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        help="fail (exit 2) when overall p99 latency exceeds this bound",
    )
    p.add_argument(
        "--report-out",
        default=None,
        metavar="FILE",
        help="write the latency/throughput report as JSON",
    )
    p.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="pull the daemon's security-event ring (events op) and "
        "write it as repro-events-v1 JSON lines",
    )
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a running serve daemon",
    )
    p.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="daemon socket path (default: .repro-serve.sock)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=None,
        help="connect over loopback TCP instead of a Unix socket",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (default: 2)",
    )
    p.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after this many refreshes (default: until Ctrl-C)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (no screen clearing)",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "audit",
        help="offline security summary of a repro-events-v1 file",
    )
    p.add_argument("events", help="path to an --events-out JSON-lines file")
    p.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the full audit digest as JSON",
    )
    p.set_defaults(func=cmd_audit)

    return parser


def _fail(exc: BaseException, code: int) -> int:
    """One-line diagnostic to stderr, never a traceback."""
    message = str(exc) or type(exc).__name__
    first = message.splitlines()[0]
    rest = len(message.splitlines()) - 1
    if rest > 0:
        first += f" (+{rest} more)"
    print(f"repro: error: {first}", file=sys.stderr)
    return code


def _dispatch(args: argparse.Namespace) -> int:
    try:
        return args.func(args)
    except _FRONTEND_ERRORS as exc:
        return _fail(exc, EXIT_CODES["frontend"])
    except VerificationError as exc:
        return _fail(exc, EXIT_CODES["verify"])
    except ReproError as exc:
        return _fail(exc, exc.exit_code)
    except FileNotFoundError as exc:
        return _fail(exc, EXIT_CODES["io"])
    except OSError as exc:
        return _fail(exc, EXIT_CODES["io"])


def _export_observability(
    trace_out: Optional[str],
    metrics_out: Optional[str],
    events_out: Optional[str] = None,
) -> int:
    """Write ``--trace-out``/``--metrics-out``/``--events-out``; 0 on success.

    Runs even when the command itself failed, so a crashing suite still
    leaves its partial trace, counters, and events behind for triage.
    """
    try:
        if trace_out:
            write_trace(trace_out, current_tracer().events)
            print(f"trace written to {trace_out}", file=sys.stderr)
        if metrics_out:
            write_metrics(metrics_out, get_metrics().snapshot())
            print(f"metrics written to {metrics_out}", file=sys.stderr)
        if events_out:
            count = write_events(events_out, get_event_log().snapshot())
            print(
                f"{count} event(s) written to {events_out}", file=sys.stderr
            )
    except OSError as exc:
        return _fail(exc, EXIT_CODES["io"])
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    events_out = getattr(args, "events_out", None)
    reset_metrics()
    reset_event_log()
    if trace_out:
        enable_tracing()
    try:
        code = _dispatch(args)
        export_code = _export_observability(trace_out, metrics_out, events_out)
        return code if code != 0 else export_code
    finally:
        disable_tracing()
