"""Command-line interface: ``python -m repro <command>``.

Subcommands:

``compile``   MiniC source -> textual IR (optionally post-mem2reg)
``run``       compile, protect, and execute a program
``analyze``   print the vulnerability analysis of a program
``attack``    replay a built-in attack scenario under every scheme
``bench``     run one generated benchmark under every scheme
``suite``     measure many benchmarks, optionally across worker processes
``scenarios`` list the built-in attack scenarios
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .attacks import build_scenarios
from .core import (
    DefenseConfig,
    SCHEMES,
    analyze_module,
    build_security_report,
    protect,
)
from .frontend import compile_source
from .hardware import CPU, INTERPRETERS
from .ir import print_module
from .transforms import Mem2Reg
from .workloads import generate_program, get_profile, profile_names


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _parse_inputs(items: Optional[List[str]]) -> List[bytes]:
    return [item.encode("utf-8") for item in (items or [])]


# -- subcommands ---------------------------------------------------------------


def cmd_compile(args: argparse.Namespace) -> int:
    module = compile_source(_read_source(args.source), name=args.name)
    if args.mem2reg:
        Mem2Reg().run(module)
    print(print_module(module), end="")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    module = compile_source(_read_source(args.source), name=args.name)
    config = DefenseConfig(scheme=args.scheme, protect_fields=args.fields)
    protected = protect(module, config=config)
    if args.timings:
        total = sum(protected.timings.values())
        for phase, seconds in sorted(
            protected.timings.items(), key=lambda item: -item[1]
        ):
            print(f"[timing] {phase:24s} {seconds * 1e3:8.2f}ms", file=sys.stderr)
        print(f"[timing] {'total':24s} {total * 1e3:8.2f}ms", file=sys.stderr)
    cpu = CPU(protected.module, seed=args.seed, interpreter=args.interpreter)
    result = cpu.run(inputs=_parse_inputs(args.input))
    sys.stdout.write(result.output.decode("utf-8", "replace"))
    print(
        f"[{args.scheme}] status={result.status} return={result.return_value} "
        f"cycles={result.cycles:.0f} instructions={result.instructions} "
        f"ipc={result.ipc:.2f} pa={result.pa_dynamic}",
        file=sys.stderr,
    )
    return 0 if result.ok else 2


def cmd_analyze(args: argparse.Namespace) -> int:
    module = compile_source(_read_source(args.source), name=args.name)
    Mem2Reg().run(module)
    report = analyze_module(module)
    security = build_security_report(report)
    categories = report.branch_categories()
    print(f"program variables:      {len(report.all_variables)}")
    print(f"conservative (CPA) set: {len(report.cpa_variables)}")
    print(f"refined (Pythia) set:   {len(report.refined_variables)}")
    print(f"  stack vulnerable:     {len(report.stack_vulnerable)}")
    print(f"  heap vulnerable:      {len(report.heap_vulnerable)}")
    print(f"refinement factor:      {report.refinement_factor():.2f}x")
    print(
        f"branches: {security.total_branches} total | "
        f"{categories['direct']} direct, {categories['indirect']} indirect, "
        f"{categories['unaffected']} unaffected"
    )
    print(
        f"secured:  Pythia {100 * security.pythia_secured_fraction:.1f}% | "
        f"DFI {100 * security.dfi_secured_fraction:.1f}%"
    )
    if args.verbose:
        for obj in sorted(report.refined_variables, key=lambda o: o.label):
            print(f"  vulnerable: {obj.label} ({obj.kind})")
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    scenarios = build_scenarios()
    if args.scenario not in scenarios:
        print(f"unknown scenario {args.scenario!r}; try: {', '.join(scenarios)}")
        return 1
    scenario = scenarios[args.scenario]
    module = scenario.compile()
    print(f"{scenario.name}: {scenario.description}")
    failures = 0
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        outcome = scenario.attack_outcome(scenario.run_attack(protected.module))
        print(f"  {scheme:8s} -> {outcome}")
        if scheme == "vanilla" and outcome != "success":
            failures += 1
    return 0 if not failures else 2


def cmd_bench(args: argparse.Namespace) -> int:
    program = generate_program(get_profile(args.benchmark))
    module = program.compile()
    base = None
    print(f"{args.benchmark}: {module.instruction_count()} IR instructions")
    for scheme in SCHEMES:
        protected = protect(module, scheme=scheme)
        result = CPU(
            protected.module, seed=args.seed, interpreter=args.interpreter
        ).run(inputs=list(program.inputs))
        if not result.ok:
            print(f"  {scheme:8s} FAILED: {result.status}")
            return 2
        if scheme == "vanilla":
            base = result.cycles
            print(f"  {scheme:8s} cycles={result.cycles:10.0f}")
        else:
            overhead = 100 * (result.cycles / base - 1)
            print(
                f"  {scheme:8s} cycles={result.cycles:10.0f} "
                f"overhead={overhead:6.1f}% pa={result.pa_dynamic}"
            )
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from .perf import run_suite

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}")
        return 1
    known = profile_names()
    for name in args.benchmark:
        if name not in known:
            print(f"unknown benchmark {name!r}; try: {', '.join(known)}")
            return 1
    names = args.benchmark or None
    cache_dir = None if args.no_cache else args.cache_dir
    result = run_suite(
        names=names,
        seed=args.seed,
        jobs=args.jobs,
        interpreter=args.interpreter,
        cache_dir=cache_dir,
    )
    for name in sorted(result.programs):
        program = result.programs[name]
        overheads = " ".join(
            f"{scheme}={100 * program.runtime_overhead(scheme):+.1f}%"
            for scheme in result.schemes
            if scheme != "vanilla"
        )
        print(f"  {name:18s} {overheads}")
    print(
        f"{len(result.programs)} benchmarks x {len(result.schemes)} schemes "
        f"in {result.wall_seconds:.2f}s "
        f"({result.jobs} job{'s' if result.jobs != 1 else ''}): "
        f"{result.steps_per_second:,.0f} steps/s, "
        f"decode {result.decode_seconds * 1e3:.1f}ms"
    )
    if cache_dir is not None:
        print(
            f"compilation cache [{cache_dir}]: "
            f"{result.cache_hits} hits, {result.cache_misses} misses"
        )
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    for name, scenario in build_scenarios().items():
        detected = ",".join(scenario.detected_by) or "-"
        prevented = ",".join(scenario.prevented_by) or "-"
        print(f"{name:22s} detected_by={detected:16s} prevented_by={prevented}")
    return 0


# -- parser ---------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pythia (ASPLOS 2024) reproduction: compile, protect, attack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="MiniC source to textual IR")
    p.add_argument("source", help="path to MiniC source, or - for stdin")
    p.add_argument("--name", default="module")
    p.add_argument("--mem2reg", action="store_true", help="promote to SSA first")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile, protect, and execute")
    p.add_argument("source")
    p.add_argument("--name", default="module")
    p.add_argument("--scheme", choices=SCHEMES, default="pythia")
    p.add_argument("--fields", action="store_true", help="§6.4 field canaries")
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--input", action="append", help="queue a benign input line (repeatable)"
    )
    p.add_argument(
        "--interpreter",
        choices=INTERPRETERS,
        default=None,
        help="CPU backend (default: pre-decoded dispatch)",
    )
    p.add_argument(
        "--timings",
        action="store_true",
        help="print per-phase compile timings to stderr",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("analyze", help="print the vulnerability analysis")
    p.add_argument("source")
    p.add_argument("--name", default="module")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("attack", help="replay a scenario under every scheme")
    p.add_argument("scenario")
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("bench", help="run one generated benchmark")
    p.add_argument("benchmark", choices=profile_names(), metavar="BENCHMARK")
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--interpreter",
        choices=INTERPRETERS,
        default=None,
        help="CPU backend (default: pre-decoded dispatch)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "suite", help="measure benchmarks under every scheme, optionally in parallel"
    )
    p.add_argument(
        "benchmark",
        nargs="*",
        metavar="BENCHMARK",
        help="benchmarks to measure (default: all profiles)",
    )
    p.add_argument("--seed", type=int, default=2024)
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the fan-out (default: 1, serial)",
    )
    p.add_argument(
        "--interpreter",
        choices=INTERPRETERS,
        default=None,
        help="CPU backend (default: pre-decoded dispatch)",
    )
    p.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="compilation cache directory (default: .repro-cache)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the compilation cache",
    )
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("scenarios", help="list the built-in attack scenarios")
    p.set_defaults(func=cmd_scenarios)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
