"""JSON-lines request/response protocol for ``python -m repro serve``.

One request per line, one response per line, UTF-8 JSON objects over a
local stream socket (Unix-domain by default, loopback TCP with
``--port``).  Requests carry an ``id`` the caller chooses plus an
``op``; responses echo the ``id`` so clients may pipeline::

    -> {"id": 1, "op": "run", "source": "int main(){...}", "scheme": "pythia"}
    <- {"id": 1, "status": "ok", "result": {"status": "exited", ...}}

Every response is either ``{"id", "status": "ok", "result": {...}}``
or ``{"id", "status": "error", "code": <int>, "error": {"type",
"message"}}``.  Error ``code`` reuses the CLI's layered exit-code
taxonomy (:data:`repro.cli.EXIT_CODES`) as per-request status codes, so
a client can triage a failure without parsing the message:

====  ==========================================================
code  meaning
====  ==========================================================
1     internal failure (worker crash, per-request timeout)
2     security/contract layer (e.g. unknown interpreter)
3     bad request / I/O (malformed JSON, unknown op, missing field)
4     MiniC front-end rejected the source
5     IR verification / protection-pipeline failure
====  ==========================================================

A *trapped* execution is not an error: ``run`` responses report the
trap through ``result.status``/``result.ok`` exactly like the CLI's
``run`` prints it, because a defense doing its job is a valid outcome.

**Correlation.**  Besides the caller-chosen ``id``, the front-end
stamps a daemon-assigned correlation id (``rid``, unique per received
request) into every request before dispatch.  The ``rid`` names the
request in worker spans, security events, and the Chrome-trace flow
arrows, so one id follows a request across the process boundary; it is
excluded from the single-flight identity (:func:`request_key`) exactly
like ``id``.

The module is import-light on purpose (stdlib only): the client, the
load generator, and the server all share these helpers.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Tuple

#: Protocol identifier, echoed by ``ping`` and carried in ``stats``.
PROTOCOL = "repro-serve-v1"

#: Ops dispatched to the worker pool (deterministic, dedupable).
WORKER_OPS = ("compile", "run", "attack", "profile")
#: Ops answered by the front-end itself.
FRONTEND_OPS = ("ping", "stats", "events", "shutdown")
OPS = WORKER_OPS + FRONTEND_OPS

#: Required request fields beyond ``id``/``op``, per op.
_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "compile": ("source",),
    "run": ("source",),
    "profile": ("source",),
    "attack": ("scenario",),
    "ping": (),
    "stats": (),
    "events": (),
    "shutdown": (),
}

#: Error codes, mirroring the CLI exit-code taxonomy.
CODE_INTERNAL = 1
CODE_SECURITY = 2
CODE_BAD_REQUEST = 3
CODE_FRONTEND = 4
CODE_VERIFY = 5


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON plus the newline terminator."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raises ``ValueError`` on malformed input."""
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("request is not a JSON object")
    return message


def validate_request(request: Dict[str, Any]) -> Optional[str]:
    """One-line problem description, or ``None`` for a valid request."""
    op = request.get("op")
    if not isinstance(op, str):
        return "request lacks a string 'op'"
    if op not in OPS:
        return f"unknown op {op!r}; try: {', '.join(OPS)}"
    for field in _REQUIRED[op]:
        if not isinstance(request.get(field), str):
            return f"op {op!r} requires a string {field!r} field"
    inputs = request.get("inputs")
    if inputs is not None and (
        not isinstance(inputs, list)
        or any(not isinstance(item, str) for item in inputs)
    ):
        return "'inputs' must be a list of strings"
    limit = request.get("limit")
    if limit is not None and (not isinstance(limit, int) or isinstance(limit, bool)):
        return "'limit' must be an integer"
    return None


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "status": "ok", "result": result}


def error_response(
    request_id: Any, code: int, error_type: str, message: str
) -> Dict[str, Any]:
    return {
        "id": request_id,
        "status": "error",
        "code": code,
        "error": {"type": error_type, "message": message},
    }


def with_id(response: Dict[str, Any], request_id: Any) -> Dict[str, Any]:
    """A shallow copy of ``response`` re-addressed to ``request_id``.

    Single-flight followers share the leader's computed response; only
    the envelope ``id`` differs per caller.
    """
    if response.get("id") == request_id:
        return response
    readdressed = dict(response)
    readdressed["id"] = request_id
    return readdressed


def shard_digest(request: Dict[str, Any]) -> str:
    """Content digest that routes a request to its warm shard.

    Requests about the same program (or the same attack scenario)
    always land on the same worker, so its warm registry -- parsed IR,
    analysis results, block/trace code objects -- is reused instead of
    being rebuilt N times across the pool.
    """
    op = request.get("op", "")
    if op == "attack":
        basis = "scenario:" + str(request.get("scenario", ""))
    else:
        basis = "source:" + str(request.get("source", ""))
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()


def request_key(request: Dict[str, Any]) -> str:
    """Single-flight identity of a request: everything but the caller's
    ``id`` and the daemon-assigned correlation ``rid``.

    Two requests with the same key are guaranteed the same response
    body (every worker op is deterministic given its fields -- seeds are
    explicit), so in-flight duplicates can share one computation.  Both
    per-caller fields must be excluded or no two requests would ever
    coalesce: the front-end stamps a unique ``rid`` into every request
    before dispatch (see ``server.py``).
    """
    identity = {k: v for k, v in request.items() if k not in ("id", "rid")}
    return json.dumps(identity, sort_keys=True)


def classify_exception(exc: BaseException) -> Tuple[int, str]:
    """Map a worker-side exception to ``(code, type name)``.

    Import-free taxonomy walk over the exception's MRO so this module
    stays stdlib-only: the CLI maps the same families to process exit
    codes (front-end 4, verification 5, ReproError's own code, I/O 3).
    """
    names = {cls.__name__ for cls in type(exc).__mro__}
    if names & {"LexError", "ParseError", "SemaError", "CodegenError"}:
        return CODE_FRONTEND, type(exc).__name__
    if "VerificationError" in names or "ProtectionError" in names:
        return CODE_VERIFY, type(exc).__name__
    if "ReproError" in names:
        return int(getattr(exc, "exit_code", CODE_INTERNAL)), type(exc).__name__
    if isinstance(exc, (KeyError, ValueError)):
        return CODE_BAD_REQUEST, type(exc).__name__
    if isinstance(exc, OSError):
        return CODE_BAD_REQUEST, type(exc).__name__
    return CODE_INTERNAL, type(exc).__name__
