"""Load generator for the serve daemon.

Drives a daemon with a deterministic request mix (built by
:func:`repro.workloads.nginx.build_request_mix` -- the nginx workload
scaled up to many concurrent clients) and reports latency percentiles,
throughput, and failures.  Concurrency is thread-per-connection: each
worker thread owns one socket, pulls the next request from a shared
queue, and records ``(op, ok, seconds, code)`` -- mirroring how the
paper's wrk-style generator hammers nginx with N connections.

The mix itself is fully materialized and seeded before any socket
opens, so two runs of the same spec issue byte-identical request
bodies (only their interleaving differs); with the daemon's
single-flight dedup this is the worst honest case for a server --
bursts of identical hot requests -- and the realistic best case for
its warm registry.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .client import ServeClient, ServeClientError, wait_for_server


@dataclass(frozen=True)
class RequestRecord:
    """One request's outcome as the client saw it."""

    op: str
    ok: bool
    seconds: float
    #: protocol status code on error (0 on success, -1 on transport loss)
    code: int = 0


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an unsorted sample (q in 0..100)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    records: List[RequestRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    concurrency: int = 1

    @property
    def requests(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> int:
        return sum(1 for record in self.records if not record.ok)

    @property
    def throughput_rps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    def latencies_ms(self, op: Optional[str] = None) -> List[float]:
        return [
            record.seconds * 1e3
            for record in self.records
            if op is None or record.op == op
        ]

    def p50_ms(self, op: Optional[str] = None) -> float:
        return percentile(self.latencies_ms(op), 50.0)

    def p99_ms(self, op: Optional[str] = None) -> float:
        return percentile(self.latencies_ms(op), 99.0)

    def ops(self) -> List[str]:
        return sorted({record.op for record in self.records})

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "failures": self.failures,
            "concurrency": self.concurrency,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "p50_ms": round(self.p50_ms(), 3),
            "p99_ms": round(self.p99_ms(), 3),
            "per_op": {
                op: {
                    "requests": len(self.latencies_ms(op)),
                    "p50_ms": round(self.p50_ms(op), 3),
                    "p99_ms": round(self.p99_ms(op), 3),
                }
                for op in self.ops()
            },
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"{self.requests} requests, {self.failures} failed, "
            f"{self.concurrency} connection(s), "
            f"{self.wall_seconds:.2f}s wall: "
            f"{self.throughput_rps:,.1f} req/s, "
            f"p50 {self.p50_ms():.1f}ms, p99 {self.p99_ms():.1f}ms"
        ]
        for op in self.ops():
            lines.append(
                f"  {op:10s} n={len(self.latencies_ms(op)):5d} "
                f"p50={self.p50_ms(op):8.1f}ms p99={self.p99_ms(op):8.1f}ms"
            )
        return lines


def run_load(
    requests: List[Dict[str, Any]],
    concurrency: int = 4,
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    duration_s: Optional[float] = None,
    connect_deadline_s: float = 10.0,
) -> LoadReport:
    """Fire ``requests`` at the daemon from ``concurrency`` connections.

    Without ``duration_s`` the mix is sent exactly once; with it, the
    mix is cycled until the duration expires (every started request is
    allowed to finish, so the wall clock can overshoot by one request).
    Waits up to ``connect_deadline_s`` for the daemon to answer
    ``ping`` before any load is sent.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    wait_for_server(
        socket_path=socket_path, host=host, port=port, deadline_s=connect_deadline_s
    )
    work: "queue.Queue[Dict[str, Any]]" = queue.Queue()
    for request in requests:
        work.put(request)
    records: List[RequestRecord] = []
    records_lock = threading.Lock()
    stop_at = time.monotonic() + duration_s if duration_s is not None else None

    def refill() -> Optional[Dict[str, Any]]:
        """Next request, cycling the mix while in duration mode."""
        try:
            return work.get_nowait()
        except queue.Empty:
            if stop_at is None:
                return None
            for request in requests:
                work.put(request)
            try:
                return work.get_nowait()
            except queue.Empty:
                return None

    def client_thread(thread_index: int) -> None:
        client = ServeClient(
            socket_path=socket_path, host=host, port=port
        )
        sequence = 0
        local: List[RequestRecord] = []
        try:
            client.connect()
            while True:
                if stop_at is not None and time.monotonic() >= stop_at:
                    break
                request = refill()
                if request is None:
                    break
                sequence += 1
                message = dict(request)
                message["id"] = f"c{thread_index}-{sequence}"
                start = time.perf_counter()
                try:
                    response = client.send_raw(message)
                except ServeClientError:
                    local.append(
                        RequestRecord(
                            op=str(request.get("op", "?")),
                            ok=False,
                            seconds=time.perf_counter() - start,
                            code=-1,
                        )
                    )
                    # The connection is gone; reconnect for the rest of
                    # the queue rather than abandoning this thread's share.
                    client.close()
                    try:
                        client.connect()
                    except ServeClientError:
                        break
                    continue
                elapsed = time.perf_counter() - start
                ok = response.get("status") == "ok"
                local.append(
                    RequestRecord(
                        op=str(request.get("op", "?")),
                        ok=ok,
                        seconds=elapsed,
                        code=0 if ok else int(response.get("code", -1)),
                    )
                )
        finally:
            client.close()
            with records_lock:
                records.extend(local)

    threads = [
        threading.Thread(target=client_thread, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return LoadReport(records=records, wall_seconds=wall, concurrency=concurrency)
