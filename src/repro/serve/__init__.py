"""Persistent compile-and-execute daemon (``python -m repro serve``).

The ROADMAP's "millions of users" scenario made concrete: a long-lived
asyncio front-end (:mod:`repro.serve.server`) accepting JSON-lines
compile/run/attack/profile requests (:mod:`repro.serve.protocol`) over
a local socket, dispatching to persistent forked workers
(:mod:`repro.serve.pool`, :mod:`repro.serve.worker`) that keep a warm
module registry (:mod:`repro.serve.registry`) -- parsed IR, shared
analysis results, per-scheme protected modules, and the interpreter
tiers' code caches -- so thousands of requests amortize one
compilation.  :mod:`repro.serve.client` and :mod:`repro.serve.loadgen`
drive it; ``benchmarks/bench_serve_latency.py`` measures it.
"""

from .client import ServeClient, ServeClientError, wait_for_server
from .loadgen import LoadReport, RequestRecord, percentile, run_load
from .pool import WorkerPool
from .protocol import (
    PROTOCOL,
    classify_exception,
    error_response,
    ok_response,
    request_key,
    shard_digest,
    validate_request,
)
from .registry import RegistryStats, WarmRegistry, source_digest
from .server import ReproServer, ServeSocketError

__all__ = [
    "LoadReport",
    "PROTOCOL",
    "RegistryStats",
    "ReproServer",
    "RequestRecord",
    "ServeClient",
    "ServeClientError",
    "ServeSocketError",
    "WarmRegistry",
    "WorkerPool",
    "classify_exception",
    "error_response",
    "ok_response",
    "percentile",
    "request_key",
    "run_load",
    "shard_digest",
    "source_digest",
    "validate_request",
    "wait_for_server",
]
