"""Asyncio front-end of the serve daemon.

Accepts JSON-lines requests over a Unix-domain socket (or loopback
TCP), validates them, answers ``ping``/``stats``/``shutdown`` itself,
and dispatches the deterministic ops to the sharded
:class:`~repro.serve.pool.WorkerPool` behind **single-flight dedup**:
requests whose :func:`~repro.serve.protocol.request_key` matches an
in-flight computation await that computation's future instead of
re-submitting it, so N identical concurrent compiles cost exactly one
compilation (and produce exactly one ``compile.phase.*`` span set in
the merged trace).  Each follower still gets its own response envelope
(its own ``id``), byte-identical in the body.

**Correlation.**  The front-end stamps a unique ``rid`` into every
request before dispatch and opens a ``serve:op`` span around the whole
request; for worker ops it also starts a Chrome-trace *flow* under
that span which the worker finishes inside its own span, so the merged
trace draws one arrow following the request across the fork boundary.
Worker telemetry comes back with the response -- metrics snapshots,
trace events, and security events all stamped with the same ``rid`` --
and is merged into the daemon's process-global registries.

**Aggregation.**  Every request also lands in a rolling
:class:`~repro.observability.aggregate.WindowAggregator` (requests,
errors, per-scheme traps, latency sketch) powering the enriched
``stats`` op, the ``repro top`` dashboard, and -- when a policy is
installed -- the background SLO burn-rate loop, which emits one
``slo-breach`` event per target transition into breach.

Shutdown is graceful on SIGTERM/SIGINT and on the ``shutdown`` op:
stop accepting, let in-flight requests drain (bounded by
``drain_timeout``), then stop the workers.  A socket path or TCP port
already in use raises :class:`ServeSocketError` -- exit code 3 with a
one-line diagnostic, matching the CLI's I/O taxonomy.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import signal
import socket as socket_module
import time
from typing import Any, Dict, Optional, Set, Tuple

from ..hardware.errors import ReproError
from ..observability import (
    EVENTS_SCHEMA,
    SloPolicy,
    WindowAggregator,
    current_tracer,
    evaluate_window,
    get_event_log,
    get_metrics,
    histogram_percentiles,
)
from .pool import WorkerPool
from .protocol import (
    CODE_BAD_REQUEST,
    PROTOCOL,
    WORKER_OPS,
    decode_line,
    encode,
    error_response,
    ok_response,
    request_key,
    validate_request,
    with_id,
)

#: Maximum request-line length (sources are a few tens of KB; 8 MiB
#: leaves room without letting one client balloon the reader buffer).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ServeSocketError(ReproError):
    """The listen endpoint is unavailable (in use, unbindable)."""

    exit_code = 3


class ReproServer:
    """One daemon instance: listener, dedup map, pool, lifecycle."""

    def __init__(
        self,
        pool: WorkerPool,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        drain_timeout: float = 30.0,
        slo_policy: Optional[SloPolicy] = None,
        window_s: float = 60.0,
    ):
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        self.pool = pool
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.slo_policy = slo_policy
        self.started_at = time.monotonic()
        self.window = WindowAggregator(window_s=window_s)
        self._server: Optional[asyncio.AbstractServer] = None
        #: single-flight map: request key -> (leader future, leader rid)
        self._inflight: Dict[str, Tuple[asyncio.Future, str]] = {}
        self._active: Set[asyncio.Task] = set()
        self._connections: Set[asyncio.Task] = set()
        self._draining = False
        self._stopped = asyncio.Event()
        self._slo_task: Optional[asyncio.Task] = None
        self._burning: Set[str] = set()
        self._rid_counter = itertools.count(1)
        self.requests = 0
        self.errors = 0
        self.coalesced = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def endpoint(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    def _check_unix_path(self) -> None:
        """Refuse a live socket; silently reclaim a stale one."""
        path = self.socket_path
        if path is None or not os.path.exists(path):
            return
        probe = socket_module.socket(socket_module.AF_UNIX)
        probe.settimeout(0.25)
        try:
            probe.connect(path)
        except (ConnectionRefusedError, FileNotFoundError, socket_module.timeout, OSError):
            # Nobody answers: a previous daemon died without cleanup.
            try:
                os.unlink(path)
            except OSError as exc:
                raise ServeSocketError(
                    f"cannot reclaim stale socket {path}: {exc}"
                ) from exc
            return
        finally:
            probe.close()
        raise ServeSocketError(f"socket {path} is already in use")

    async def start(self) -> None:
        if self.socket_path is not None:
            self._check_unix_path()
            try:
                self._server = await asyncio.start_unix_server(
                    self._handle_connection,
                    path=self.socket_path,
                    limit=MAX_LINE_BYTES,
                )
            except OSError as exc:
                raise ServeSocketError(
                    f"cannot bind socket {self.socket_path}: {exc}"
                ) from exc
        else:
            try:
                self._server = await asyncio.start_server(
                    self._handle_connection,
                    host=self.host,
                    port=self.port,
                    limit=MAX_LINE_BYTES,
                )
            except OSError as exc:
                raise ServeSocketError(
                    f"cannot bind {self.host}:{self.port}: {exc}"
                ) from exc

    async def serve_until_stopped(self, install_signals: bool = True) -> None:
        """Run until :meth:`initiate_shutdown` (signal or op) completes."""
        await self.start()
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.initiate_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass
        if self.slo_policy is not None:
            self._slo_task = loop.create_task(self._slo_loop())
        await self._stopped.wait()

    def initiate_shutdown(self) -> None:
        """Begin a graceful drain; idempotent, callable from handlers."""
        if self._draining:
            return
        self._draining = True
        asyncio.get_running_loop().create_task(self._shutdown())

    async def _shutdown(self) -> None:
        if self._slo_task is not None:
            self._slo_task.cancel()
            try:
                await self._slo_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._active if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=self.drain_timeout)
        # Responses are out; unblock handlers parked in readline() so the
        # event loop shuts down without stray CancelledError logs.
        connections = {task for task in self._connections if not task.done()}
        for task in connections:
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        self.pool.stop()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._stopped.set()

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            CODE_BAD_REQUEST,
                            "BadRequest",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                self._active.add(task)
                task.add_done_callback(self._active.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Shutdown unparked us from readline(); finish normally so
            # the stream protocol's done-callback sees a clean task.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):
                pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        response: Dict[str, Any],
    ) -> None:
        async with lock:
            try:
                writer.write(encode(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        start = time.perf_counter()
        metrics = get_metrics()
        try:
            request = decode_line(line)
        except ValueError as exc:
            self.errors += 1
            metrics.inc("serve.errors")
            self.window.inc("errors")
            await self._write(
                writer,
                write_lock,
                error_response(
                    None, CODE_BAD_REQUEST, "BadRequest", f"malformed request: {exc}"
                ),
            )
            return
        # The daemon-side correlation id: unique per received request,
        # stamped into the request so worker spans/events/metrics tie
        # back to this front-end span (and to the caller's own id).
        rid = f"r{next(self._rid_counter)}"
        request["rid"] = rid
        op = request.get("op", "?")
        tracer = current_tracer()
        with tracer.span(
            f"serve:{op}", "serve", rid=rid, request_id=request.get("id")
        ):
            if op in WORKER_OPS:
                # Flow start under the front-end span; the worker
                # finishes it inside its own span, joining the two
                # processes with one arrow in the exported trace.
                tracer.flow("serve:request", rid, "s", op=op)
            response = await self._dispatch(request)
        self.requests += 1
        metrics.inc("serve.requests")
        metrics.inc(f"serve.requests.{op}")
        self.window.inc("requests")
        if response.get("status") != "ok":
            self.errors += 1
            metrics.inc("serve.errors")
            self.window.inc("errors")
        latency = time.perf_counter() - start
        metrics.observe(f"serve.latency.{op}", latency)
        self.window.observe("latency", latency)
        await self._write(writer, write_lock, response)

    # -- dispatch ----------------------------------------------------------------

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request.get("id")
        problem = validate_request(request)
        if problem is not None:
            if request.get("op") == "_debug_crash" and self.pool.debug_ops:
                return await self._submit_deduped(request)
            return error_response(request_id, CODE_BAD_REQUEST, "BadRequest", problem)
        op = request["op"]
        if self._draining and op in WORKER_OPS:
            return error_response(
                request_id, CODE_BAD_REQUEST, "Draining", "daemon is shutting down"
            )
        if op == "ping":
            return ok_response(request_id, {"pong": True, "protocol": PROTOCOL})
        if op == "stats":
            return ok_response(request_id, self._stats())
        if op == "events":
            log = get_event_log()
            return ok_response(
                request_id,
                {
                    "schema": EVENTS_SCHEMA,
                    "emitted": log.emitted,
                    "dropped": log.dropped,
                    "events": log.snapshot(request.get("limit")),
                },
            )
        if op == "shutdown":
            self.initiate_shutdown()
            return ok_response(request_id, {"stopping": True})
        return await self._submit_deduped(request)

    def _stats(self) -> Dict[str, Any]:
        log = get_event_log()
        latency_ms: Dict[str, Any] = {}
        histograms = get_metrics().snapshot()["histograms"]
        prefix = "serve.latency."
        for name, stats in histograms.items():
            if name.startswith(prefix):
                rendered = histogram_percentiles(stats, scale=1e3)
                if rendered is not None:
                    latency_ms[name[len(prefix):]] = {
                        key: round(value, 3) for key, value in rendered.items()
                    }
        return {
            "protocol": PROTOCOL,
            "endpoint": self.endpoint,
            "workers": self.pool.size,
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests": self.requests,
            "errors": self.errors,
            "dedup_coalesced": self.coalesced,
            "worker_restarts": self.pool.restarts,
            "inflight": len(self._inflight),
            "window": self.window.summary(),
            "latency_ms": latency_ms,
            "events": {
                "emitted": log.emitted,
                "buffered": len(log.events),
                "dropped": log.dropped,
            },
            "slo": self.slo_policy.to_dict() if self.slo_policy else None,
        }

    def _adopt_telemetry(self, telemetry: Dict[str, Any]) -> None:
        """Fold one worker's per-request telemetry into the daemon."""
        get_metrics().merge_snapshot(telemetry["metrics"])
        if telemetry.get("events"):
            current_tracer().adopt(telemetry["events"])
        security_events = telemetry.get("security_events") or []
        if security_events:
            get_event_log().adopt(security_events)
            for record in security_events:
                if record.get("type") == "trap":
                    self.window.inc("traps")
                    scheme = record.get("scheme")
                    if scheme:
                        self.window.inc(f"traps.{scheme}")

    async def _submit_deduped(self, request: Dict[str, Any]) -> Dict[str, Any]:
        key = request_key(request)
        inflight = self._inflight.get(key)
        if inflight is not None:
            # Follower: share the leader's computation, own envelope.
            leader_future, leader_rid = inflight
            self.coalesced += 1
            get_metrics().inc("serve.dedup.coalesced")
            self.window.inc("coalesced")
            get_event_log().emit(
                "dedup-coalesce",
                request_id=request.get("id"),
                rid=request.get("rid"),
                leader_rid=leader_rid,
                op=request.get("op"),
            )
            response = await asyncio.shield(leader_future)
            return with_id(response, request.get("id"))
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = (future, str(request.get("rid")))
        try:
            response, telemetry = await self.pool.submit(request)
            if telemetry is not None:
                self._adopt_telemetry(telemetry)
            future.set_result(response)
            return response
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Awaited by followers (if any); don't warn when not.
                future.exception()
            raise
        finally:
            self._inflight.pop(key, None)

    # -- SLO burn-rate loop --------------------------------------------------------

    async def _slo_loop(self) -> None:
        """Periodically compare the burn window against the baseline.

        An ``slo-breach`` event is emitted once per target *transition*
        into breach (re-armed when the target recovers), so a sustained
        burn does not flood the ring with one record per evaluation.
        """
        policy = self.slo_policy
        assert policy is not None
        interval = max(1.0, policy.burn_window_s / 3.0)
        while True:
            await asyncio.sleep(interval)
            burn = self.window.summary(horizon_s=policy.burn_window_s)
            baseline = self.window.summary()
            breaches = evaluate_window(policy, burn, baseline)
            current = {breach.target for breach in breaches}
            for breach in breaches:
                if breach.target in self._burning:
                    continue
                get_metrics().inc("serve.slo_breaches")
                get_event_log().emit("slo-breach", **breach.to_dict())
            self._burning = current
