"""Sharded persistent worker pool for the serve daemon.

The pool forks N :func:`repro.serve.worker.worker_main` processes (fork,
not spawn, matching ``perf/runner.py``: no pickling of entry points,
and a forked worker inherits the already-imported compiler) and keeps
them alive across requests -- that persistence *is* the optimization,
because each worker's :class:`~repro.serve.registry.WarmRegistry`
amortizes parse/analysis/compile across every request it ever sees.

**Sharding.**  Requests are routed by content digest
(:func:`repro.serve.protocol.shard_digest` modulo pool size), so one
module's warm state lives in exactly one worker instead of being
rebuilt N times.  A worker handles one request at a time (an asyncio
lock per worker); concurrency comes from having many workers, and
same-module bursts are collapsed upstream by the front-end's
single-flight dedup before they ever queue here.

**Containment.**  A request that outruns ``timeout`` or whose worker
dies mid-flight produces a structured error response (status code 1,
type ``WorkerTimeout``/``WorkerCrash``) -- never a wedged client -- and
the worker is terminated and respawned cold.  The blocking pipe I/O
runs on a dedicated thread pool sized to the worker count; the reader
thread polls with a deadline, so no thread is ever parked on a pipe
that will not answer.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..observability import get_event_log, get_metrics
from .protocol import CODE_INTERNAL, error_response, shard_digest
from .worker import worker_main

#: seconds between liveness/readability polls while awaiting a worker
_POLL_S = 0.02


@dataclass
class _Worker:
    """One persistent worker process and its parent-side pipe end."""

    index: int
    process: multiprocessing.Process
    conn: Any
    restarts: int = 0


class WorkerPool:
    """Fixed-size pool of persistent, digest-sharded workers."""

    def __init__(
        self,
        workers: int = 2,
        capacity: int = 32,
        cache_dir: Optional[str] = None,
        timeout: Optional[float] = 60.0,
        trace: bool = False,
        debug_ops: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.size = workers
        self.capacity = capacity
        self.cache_dir = cache_dir
        self.timeout = timeout
        self.trace = trace
        #: allow the test-only ``_debug_crash`` op through to workers
        self.debug_ops = debug_ops
        self.restarts = 0
        self._ctx = multiprocessing.get_context("fork")
        self._workers: Dict[int, _Worker] = {}
        self._locks: Dict[int, asyncio.Lock] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Fork every worker.  Call before the event loop starts."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.size, thread_name_prefix="serve-pipe"
        )
        for index in range(self.size):
            self._workers[index] = self._spawn(index)
        get_metrics().set_gauge("serve.workers", self.size)

    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, index),
            kwargs={
                "capacity": self.capacity,
                "cache_dir": self.cache_dir,
                "trace": self.trace,
            },
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(index=index, process=process, conn=parent_conn)

    def _restart(self, index: int) -> None:
        worker = self._workers[index]
        worker.conn.close()
        if worker.process.is_alive():
            # SIGKILL, not SIGTERM: workers ignore termination signals
            # (shutdown is pipe-coordinated), and a stalled worker must
            # not stall its own replacement.
            worker.process.kill()
        worker.process.join()
        replacement = self._spawn(index)
        replacement.restarts = worker.restarts + 1
        self._workers[index] = replacement
        self.restarts += 1
        get_metrics().inc("serve.worker_restarts")
        get_event_log().emit(
            "worker-restart", shard=index, restarts=replacement.restarts
        )

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Shut every worker down: sentinel, join, then terminate."""
        if self._stopped:
            return
        self._stopped = True
        for worker in self._workers.values():
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + drain_timeout
        for worker in self._workers.values():
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()  # workers ignore SIGTERM by design
                worker.process.join()
            worker.conn.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    # -- dispatch ----------------------------------------------------------------

    def shard_for(self, request: Dict[str, Any]) -> int:
        return int(shard_digest(request)[:16], 16) % self.size

    def _lock(self, index: int) -> asyncio.Lock:
        lock = self._locks.get(index)
        if lock is None:
            lock = self._locks[index] = asyncio.Lock()
        return lock

    def _exchange(self, index: int, request: Dict[str, Any]) -> Tuple[str, Any]:
        """Blocking send/recv with a deadline; runs on the pipe executor.

        Returns ``("ok", (response, telemetry))``, ``("timeout", None)``
        or ``("crash", exitcode)``.
        """
        worker = self._workers[index]
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        try:
            worker.conn.send(request)
        except (BrokenPipeError, OSError):
            return "crash", worker.process.exitcode
        while True:
            try:
                if worker.conn.poll(_POLL_S):
                    return "ok", worker.conn.recv()
            except (EOFError, OSError):
                return "crash", worker.process.exitcode
            if not worker.process.is_alive() and not worker.conn.poll():
                return "crash", worker.process.exitcode
            if deadline is not None and time.monotonic() >= deadline:
                return "timeout", None

    async def submit(
        self, request: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
        """Route one request to its shard; returns (response, telemetry).

        Timeout and crash yield a structured error response (and
        ``None`` telemetry) after the shard has been respawned, so the
        next request to that shard meets a healthy -- if cold -- worker.
        """
        if request.get("op") == "_debug_crash" and not self.debug_ops:
            return (
                error_response(
                    request.get("id"),
                    CODE_INTERNAL,
                    "DebugOpsDisabled",
                    "start the daemon with --debug-ops to use _debug_crash",
                ),
                None,
            )
        index = self.shard_for(request)
        loop = asyncio.get_running_loop()
        async with self._lock(index):
            outcome, payload = await loop.run_in_executor(
                self._executor, self._exchange, index, request
            )
            if outcome == "ok":
                response, telemetry = payload
                return response, telemetry
            self._restart(index)
            correlation = {
                "request_id": request.get("id"),
                "rid": request.get("rid"),
            }
            if outcome == "timeout":
                message = (
                    f"request exceeded the {self.timeout}s worker timeout; "
                    f"shard {index} was restarted (registry is cold)"
                )
                error_type = "WorkerTimeout"
                get_metrics().inc("serve.worker_timeouts")
                get_event_log().emit(
                    "worker-timeout",
                    shard=index,
                    op=request.get("op"),
                    timeout_s=self.timeout,
                    **correlation,
                )
            else:
                message = (
                    f"worker shard {index} exited with code {payload} "
                    "before responding; it was restarted (registry is cold)"
                )
                error_type = "WorkerCrash"
                get_metrics().inc("serve.worker_crashes")
                get_event_log().emit(
                    "worker-crash",
                    shard=index,
                    op=request.get("op"),
                    exitcode=payload,
                    **correlation,
                )
            return (
                error_response(
                    request.get("id"), CODE_INTERNAL, error_type, message
                ),
                None,
            )
