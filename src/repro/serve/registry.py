"""Warm per-worker module registry for the serve daemon.

A single-shot CLI invocation pays parse, verification, mem2reg,
vulnerability analysis, and per-scheme instrumentation for every
request.  The registry keeps all of that alive inside one worker
process, keyed by the content digest of the *source text* (the same
SHA-256 addressing :mod:`repro.perf.cache` uses for its on-disk
entries):

- ``prepared`` module: compiled, verified, SSA-promoted once;
- the shared :class:`~repro.analysis.manager.AnalysisManager`
  vulnerability report, computed once and carried into every scheme
  variant through the PR 2 ``Module.clone(value_map=True)`` + report
  remap path (never re-analyzed per scheme);
- one :class:`~repro.core.framework.ProtectionResult` per
  ``(scheme, protect_fields)`` variant, whose module object also
  accretes the interpreter tiers' decode/block/trace code caches
  across requests -- a warm ``run`` re-executes without re-decoding.

Entries are LRU-bounded (``capacity``); eviction drops the whole entry
so memory stays proportional to the distinct-module working set, not
the request count.  An optional on-disk
:class:`~repro.perf.cache.CompilationCache` backs the registry so a
restarted worker (or a sibling shard recompiling after a crash) can
skip instrumentation it has never run in-process.

The registry is single-threaded by construction: each worker process
owns exactly one and services one request at a time; cross-request
concurrency is the pool's job (sharding) and the front-end's
(single-flight dedup).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..analysis.manager import get_manager, invalidate_analyses
from ..core.config import DefenseConfig
from ..core.framework import ProtectionResult, protect
from ..core.remap import remap_report
from ..frontend import compile_source
from ..hardware.decoder import invalidate_decode_cache
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..observability import get_metrics, phase_span
from ..transforms.mem2reg import Mem2Reg
from ..ir.verifier import verify_module


def source_digest(source: str) -> str:
    """Content address of one source text (hex SHA-256)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class RegistryStats:
    """Warm/cold accounting for one registry instance."""

    module_hits: int = 0
    module_misses: int = 0
    protection_hits: int = 0
    protection_misses: int = 0
    evictions: int = 0


@dataclass
class _Entry:
    """Everything warm about one distinct source module."""

    digest: str
    #: verified + mem2reg-promoted module; the vanilla result and the
    #: clone source for every protected variant
    prepared: Module
    #: shared vulnerability report over ``prepared`` (``None`` until a
    #: non-vanilla scheme first needs it)
    report: Any = None
    #: printed pristine-module text, the on-disk cache key basis
    cache_text: Optional[str] = None
    #: (scheme, protect_fields) -> ProtectionResult
    protections: Dict[Tuple[str, bool], ProtectionResult] = field(
        default_factory=dict
    )
    #: (scheme, protect_fields) -> (printed protected module, its digest)
    printed: Dict[Tuple[str, bool], Tuple[str, str]] = field(default_factory=dict)


class WarmRegistry:
    """LRU registry of prepared modules and their scheme variants."""

    def __init__(self, capacity: int = 32, cache_dir: Optional[str] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = RegistryStats()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._disk = None
        if cache_dir is not None:
            from ..perf.cache import CompilationCache

            self._disk = CompilationCache(cache_dir)

    def __len__(self) -> int:
        return len(self._entries)

    # -- module preparation ------------------------------------------------------

    def _entry(self, source: str, name: str) -> _Entry:
        digest = source_digest(source)
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            self.stats.module_hits += 1
            get_metrics().inc("serve.registry.module_hits")
            return entry
        self.stats.module_misses += 1
        get_metrics().inc("serve.registry.module_misses")
        timings: Dict[str, float] = {}
        with phase_span("frontend", timings):
            module = compile_source(source, name=name)
        # The on-disk cache keys over the pristine printed module, so
        # capture the text before mem2reg rewrites it.
        cache_text = print_module(module) if self._disk is not None else None
        with phase_span("verify", timings):
            verify_module(module)
        with phase_span("mem2reg", timings):
            Mem2Reg().run(module)
        with phase_span("verify", timings):
            verify_module(module)
        invalidate_decode_cache(module)
        invalidate_analyses(module)
        entry = _Entry(digest=digest, prepared=module, cache_text=cache_text)
        self._entries[digest] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            get_metrics().inc("serve.registry.evictions")
        return entry

    def _report(self, entry: _Entry) -> Any:
        if entry.report is None:
            with phase_span("analysis", {}):
                entry.report = get_manager().vulnerability_report(entry.prepared)
        return entry.report

    # -- scheme variants ---------------------------------------------------------

    def protection(
        self,
        source: str,
        name: str = "module",
        scheme: str = "pythia",
        protect_fields: bool = False,
    ) -> Tuple[ProtectionResult, bool]:
        """The protected module for one scheme variant.

        Returns ``(result, warm)`` where ``warm`` says the variant was
        served from this registry (not compiled for this call).  Scheme
        variants of an already-prepared module reuse the shared
        analysis through the clone/remap path, so the second scheme of
        a module never re-runs verification, mem2reg, or analysis.
        """
        entry = self._entry(source, name)
        key = (scheme, protect_fields)
        result = entry.protections.get(key)
        if result is not None:
            self.stats.protection_hits += 1
            get_metrics().inc("serve.registry.protection_hits")
            return result, True
        self.stats.protection_misses += 1
        get_metrics().inc("serve.registry.protection_misses")
        result = self._compile_variant(entry, scheme, protect_fields)
        entry.protections[key] = result
        return result, False

    def _compile_variant(
        self, entry: _Entry, scheme: str, protect_fields: bool
    ) -> ProtectionResult:
        config = DefenseConfig(scheme=scheme, protect_fields=protect_fields)
        disk_key = None
        if self._disk is not None and entry.cache_text is not None:
            disk_key = self._disk.key_for(entry.cache_text, config)
            cached = self._disk.load(disk_key)
            if cached is not None:
                return ProtectionResult(
                    module=parse_module(cached["module"]),
                    scheme=scheme,
                    report=None,
                    pass_stats=cached["pass_stats"],
                    timings=dict(cached.get("timings", {})),
                )
        if scheme == "vanilla":
            result = ProtectionResult(
                module=entry.prepared, scheme="vanilla", report=None
            )
        else:
            target, vmap = entry.prepared.clone(value_map=True)
            timings: Dict[str, float] = {}
            with phase_span("remap", timings):
                remapped = remap_report(self._report(entry), vmap)
            result = protect(
                target,
                config=config,
                clone=False,
                report=remapped,
                prepared=True,
            )
            result.timings.update(timings)
        if self._disk is not None and disk_key is not None:
            self._disk.store(
                disk_key,
                scheme,
                print_module(result.module),
                result.pass_stats,
                result.timings,
            )
        return result

    def printed_module(
        self, source: str, name: str, scheme: str, protect_fields: bool = False
    ) -> Tuple[ProtectionResult, str, str, bool]:
        """``(protection, printed text, text digest, warm)`` for a variant.

        The print (and its digest) is memoized with the entry: repeated
        ``compile`` requests for a warm variant return byte-identical
        text without re-rendering the module.
        """
        protection, warm = self.protection(source, name, scheme, protect_fields)
        entry = self._entries[source_digest(source)]
        key = (scheme, protect_fields)
        memo = entry.printed.get(key)
        if memo is None:
            text = print_module(protection.module)
            memo = (text, hashlib.sha256(text.encode("utf-8")).hexdigest())
            entry.printed[key] = memo
        return protection, memo[0], memo[1], warm
