"""Persistent worker process for the serve daemon.

One worker = one process forked by :class:`repro.serve.pool.WorkerPool`
before the event loop starts.  It owns a :class:`WarmRegistry` and
loops over its pipe: receive one request dict, handle it, send back
``(response, telemetry)``.  The loop is strictly sequential (the
front-end serializes per worker), so registry state needs no locking.

Telemetry follows the suite runner's convention (``perf/runner.py``):
each request installs a *fresh* local metrics registry, a fresh
security-event log, and -- when the daemon traces -- a fresh tracer,
and returns their contents with the response.  The front-end merges them into the process-global registry
and tracer, which is how ``--metrics-out``/``--trace-out`` on ``serve``
see worker-side compile phases and cache events without double
counting, and how the single-flight dedup guarantee becomes testable:
one compilation produces exactly one ``compile.phase.*`` span set no
matter how many requests coalesced onto it.

Failures never leave the loop: every exception flattens into a
structured error response carrying the layered status code
(:func:`repro.serve.protocol.classify_exception`).  Only a hard crash
(``os._exit``, a signal) kills the worker, and the pool contains that
by respawning a cold replacement.
"""

from __future__ import annotations

import signal
from typing import Any, Dict, Optional, Tuple

from ..attacks import build_scenarios
from ..hardware.cpu import CPU
from ..observability import (
    EventLog,
    ExecutionProfiler,
    MetricsRegistry,
    Tracer,
    current_tracer,
    get_metrics,
    install_event_log,
    install_metrics,
    install_tracer,
    publish_execution,
)
from .protocol import classify_exception, error_response, ok_response
from .registry import WarmRegistry, source_digest


def _parse_inputs(request: Dict[str, Any]) -> list:
    return [item.encode("utf-8") for item in (request.get("inputs") or [])]


def _execution_result(result) -> Dict[str, Any]:
    """The JSON-able digest of one execution, shared by run/attack."""
    return {
        "status": result.status,
        "ok": result.ok,
        "detected": result.detected,
        "return_value": result.return_value,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": round(result.ipc, 6),
        "steps": result.steps,
        "pa_dynamic": result.pa_dynamic,
        "isolated_allocations": result.isolated_allocations,
        "interpreter": result.interpreter,
        "output": result.output.decode("utf-8", "replace"),
    }


class RequestHandler:
    """Dispatches worker ops against one warm registry."""

    def __init__(self, registry: WarmRegistry):
        self.registry = registry
        self._scenarios = None

    # -- ops ---------------------------------------------------------------------

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ValueError(f"op {op!r} is not a worker op")
        return handler(request)

    def _op_compile(self, request: Dict[str, Any]) -> Dict[str, Any]:
        scheme = request.get("scheme", "pythia")
        protection, text, text_digest, warm = self.registry.printed_module(
            request["source"],
            request.get("name", "module"),
            scheme,
            bool(request.get("fields", False)),
        )
        result = {
            "digest": source_digest(request["source"]),
            "scheme": scheme,
            "module_digest": text_digest,
            "pa_static": protection.pa_static,
            "binary_bytes": protection.binary_bytes,
            "canary_count": protection.canary_count,
            "pass_stats": protection.pass_stats,
            "timings": protection.timings,
            "registry": "warm" if warm else "cold",
        }
        if request.get("emit_module"):
            result["module"] = text
        return result

    def _op_run(self, request: Dict[str, Any]) -> Dict[str, Any]:
        scheme = request.get("scheme", "pythia")
        protection, warm = self.registry.protection(
            request["source"],
            request.get("name", "module"),
            scheme,
            bool(request.get("fields", False)),
        )
        cpu = CPU(
            protection.module,
            seed=int(request.get("seed", 2024)),
            interpreter=request.get("interpreter"),
        )
        execution = cpu.run(inputs=_parse_inputs(request))
        publish_execution(get_metrics(), execution, scheme=scheme)
        result = _execution_result(execution)
        result["digest"] = source_digest(request["source"])
        result["scheme"] = scheme
        result["registry"] = "warm" if warm else "cold"
        return result

    def _op_attack(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._scenarios is None:
            self._scenarios = build_scenarios()
        name = request["scenario"]
        scenario = self._scenarios.get(name)
        if scenario is None:
            raise KeyError(
                f"unknown scenario {name!r}; try: {', '.join(self._scenarios)}"
            )
        scheme = request.get("scheme", "pythia")
        # The scenario's source routes through the same registry as any
        # other module, so repeated attack replays reuse the warm
        # protection and the module's decoded program.
        protection, warm = self.registry.protection(
            scenario.source, name, scheme, False
        )
        execution = scenario.run_attack(
            protection.module,
            seed=int(request.get("seed", 2024)),
            interpreter=request.get("interpreter"),
        )
        result = _execution_result(execution)
        result["scenario"] = name
        result["scheme"] = scheme
        result["digest"] = source_digest(scenario.source)
        result["outcome"] = scenario.attack_outcome(execution)
        result["registry"] = "warm" if warm else "cold"
        return result

    def _op_profile(self, request: Dict[str, Any]) -> Dict[str, Any]:
        scheme = request.get("scheme", "pythia")
        protection, warm = self.registry.protection(
            request["source"], request.get("name", "module"), scheme, False
        )
        profiler = ExecutionProfiler()
        cpu = CPU(
            protection.module,
            seed=int(request.get("seed", 2024)),
            interpreter=request.get("interpreter") or "block",
            profiler=profiler,
        )
        execution = cpu.run(inputs=_parse_inputs(request))
        report = profiler.report(execution, top=int(request.get("top", 10)))
        return {
            "digest": source_digest(request["source"]),
            "scheme": scheme,
            "status": execution.status,
            "report": report,
            "registry": "warm" if warm else "cold",
        }


def handle_request(
    handler: RequestHandler, request: Dict[str, Any], trace: bool
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run one request under fresh local telemetry; never raises.

    The span (and every security event) is stamped with the caller's
    ``id`` and the daemon-assigned ``rid``; when the request carries a
    ``rid`` the worker also finishes the front-end's trace flow inside
    its span, which is what draws the cross-process arrow in the
    exported Chrome trace.
    """
    request_id = request.get("id")
    rid = request.get("rid")
    registry = MetricsRegistry()
    previous_metrics = install_metrics(registry)
    event_log = EventLog()
    previous_log = install_event_log(event_log)
    previous_tracer = (
        install_tracer(Tracer(f"serve-worker:{request.get('op')}"))
        if trace
        else None
    )
    try:
        tracer = current_tracer()
        try:
            with tracer.span(
                f"serve:{request['op']}", "serve", rid=rid, request_id=request_id
            ):
                if rid is not None:
                    tracer.flow("serve:request", rid, "f", op=request["op"])
                response = ok_response(request_id, handler.handle(request))
        except Exception as exc:  # noqa: BLE001 - flatten to a status code
            code, error_type = classify_exception(exc)
            response = error_response(
                request_id, code, error_type, str(exc) or error_type
            )
        result = response.get("result")
        if isinstance(result, dict) and result.get("detected"):
            # A defense fired: record the trap with full correlation so
            # the audit can name the request, module, scheme, and tier.
            event_log.emit(
                "trap",
                request_id=request_id,
                rid=rid,
                module_digest=result.get("digest"),
                scheme=result.get("scheme"),
                tier=result.get("interpreter"),
                status=result.get("status"),
                scenario=result.get("scenario"),
                op=request["op"],
            )
        telemetry = {
            "metrics": registry.snapshot(),
            "events": list(tracer.events) if trace else [],
            "security_events": event_log.snapshot(),
        }
        return response, telemetry
    finally:
        install_metrics(previous_metrics)
        install_event_log(previous_log)
        if previous_tracer is not None:
            install_tracer(previous_tracer)


def worker_main(
    conn,
    worker_id: int,
    capacity: int = 32,
    cache_dir: Optional[str] = None,
    trace: bool = False,
) -> None:
    """Process entry point: serve the pipe until the shutdown sentinel.

    Termination signals are ignored -- shutdown is coordinated by the
    parent through the pipe (a ``None`` sentinel), so SIGTERM against
    the daemon never kills a worker mid-request.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    handler = RequestHandler(WarmRegistry(capacity=capacity, cache_dir=cache_dir))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            if isinstance(message, dict) and message.get("op") == "_debug_crash":
                # Test-only hard crash (enabled by the pool's debug flag
                # before it ever reaches a worker): exercises the
                # crash-containment path end to end.
                import os

                os._exit(int(message.get("exit_code", 13)))
            response, telemetry = handle_request(handler, message, trace)
            try:
                conn.send((response, telemetry))
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()
