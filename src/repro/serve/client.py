"""Blocking JSON-lines client for the serve daemon.

Used by the load generator, the latency benchmark, and the tests.  One
client = one connection = one outstanding request at a time; concurrent
load uses one client per thread (the daemon multiplexes connections).
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from ..hardware.errors import ReproError
from .protocol import decode_line, encode


class ServeClientError(ReproError):
    """The daemon is unreachable or answered garbage."""

    exit_code = 3


class ServeClient:
    """Synchronous request/response client over a local socket."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 120.0,
    ):
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0

    @property
    def endpoint(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    def connect(self) -> "ServeClient":
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
        except OSError as exc:
            raise ServeClientError(
                f"cannot connect to repro serve at {self.endpoint}: {exc}"
            ) from exc
        self._sock = sock
        self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; returns the raw response envelope."""
        if self._sock is None:
            self.connect()
        self._next_id += 1
        message = {"id": self._next_id, "op": op}
        message.update(fields)
        return self.send_raw(message)

    def send_raw(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send a prebuilt request dict and read its response line."""
        return self.send_raw_line(encode(message))

    def send_raw_line(self, line: bytes) -> Dict[str, Any]:
        """Send pre-encoded bytes (tests use this to probe malformed input)."""
        if self._sock is None:
            self.connect()
        try:
            self._sock.sendall(line)
            line = self._reader.readline()
        except OSError as exc:
            raise ServeClientError(
                f"request to {self.endpoint} failed: {exc}"
            ) from exc
        if not line:
            raise ServeClientError(
                f"connection to {self.endpoint} closed before a response"
            )
        try:
            return decode_line(line)
        except ValueError as exc:
            raise ServeClientError(
                f"malformed response from {self.endpoint}: {exc}"
            ) from exc


def wait_for_server(
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    deadline_s: float = 10.0,
    interval_s: float = 0.1,
) -> None:
    """Block until the daemon answers ``ping`` (or the deadline passes).

    Lets scripts start ``repro serve`` in the background and fire load
    without hand-rolling a readiness loop; raises
    :class:`ServeClientError` (exit code 3) when the daemon never
    comes up.
    """
    deadline = time.monotonic() + deadline_s
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        client = ServeClient(socket_path=socket_path, host=host, port=port, timeout=5.0)
        try:
            response = client.request("ping")
            if response.get("status") == "ok":
                return
            last_error = ServeClientError(f"unexpected ping response: {response}")
        except ServeClientError as exc:
            last_error = exc
        finally:
            client.close()
        time.sleep(interval_s)
    raise ServeClientError(
        f"repro serve at "
        f"{socket_path or f'{host}:{port}'} not ready after {deadline_s}s: "
        f"{last_error}"
    )
