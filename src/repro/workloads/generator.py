"""Deterministic MiniC program generator.

Synthesises a benchmark program from a
:class:`~repro.workloads.profiles.BenchmarkProfile`: hot compute loops
over clean and input-tainted data, pointer-arithmetic walkers,
struct-field logic, input-channel handler functions with the profile's
IC category mix, caller-opaque helpers (the complex-interprocedural
case), and heap workers -- all driven from a bounded main loop so every
generated program terminates deterministically.

The generated statistics -- branch counts, pointer density of backward
slices, IC distribution, fraction of IC-affected branches -- are what
the benchmark harness measures; the profiles are tuned so the
cross-benchmark *shape* follows the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..frontend.driver import compile_source
from ..ir.module import Module
from .profiles import BenchmarkProfile

IC_CATEGORIES = ("print", "movecopy", "scan", "get", "put", "map")


@dataclass
class GeneratedProgram:
    """Source plus everything needed to run it."""

    profile: BenchmarkProfile
    source: str
    #: benign input queue for the scan/get channels
    inputs: List[bytes] = field(default_factory=list)

    def compile(self) -> Module:
        return compile_source(self.source, name=self.profile.name)


class ProgramGenerator:
    """Builds one program from a profile.  Deterministic per seed."""

    def __init__(self, profile: BenchmarkProfile):
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.parts: List[str] = []
        self.main_decls: List[str] = []
        self.main_init: List[str] = []
        self.main_loop: List[str] = []
        self.main_post: List[str] = []
        self.inputs: List[bytes] = []
        self._ic_counter = 0

    # -- helpers ---------------------------------------------------------------

    def _const(self, low: int = 1, high: int = 9) -> int:
        return self.rng.randint(low, high)

    def _pick_ic_category(self) -> str:
        weights = self.profile.ic_weights
        total = sum(weights)
        point = self.rng.randrange(total) if total else 0
        for category, weight in zip(IC_CATEGORIES, weights):
            if point < weight:
                return category
            point -= weight
        return "print"

    # -- function templates -----------------------------------------------------

    def _hot_function(self, index: int, tainted: bool) -> str:
        """A hot loop branching per element -- the bulk of dynamic branches."""
        name = f"{'tainted' if tainted else 'hot'}_compute{index}"
        t1 = self._const(2, 12)
        t2 = self._const(20, 60)
        compute = "\n".join(
            f"        scratch = scratch * {self._const(3, 7)} + i;\n"
            f"        acc = acc + (scratch & {self._const(31, 63)});"
            for _ in range(self.profile.compute_weight)
        )
        return f"""
int {name}(int *data, int n) {{
    int i;
    int acc = 0;
    int scratch = 1;
    for (i = 0; i < n; i = i + 1) {{
        if (data[i] > {t1}) {{
            acc = acc + data[i];
        }} else {{
            acc = acc - 1;
        }}
{compute}
        if (acc > {t2}) {{
            acc = acc - {self._const(3, 9)};
        }}
    }}
    return acc;
}}
"""

    def _pointer_function(self, index: int) -> str:
        """Pointer-arithmetic walker: the `p = p + i` DFI cannot follow."""
        name = f"pointer_walk{index}"
        step = self._const(1, 2)
        return f"""
int {name}(int *data, int n) {{
    int *p;
    int acc = 0;
    int left = n;
    p = data;
    while (left > 0) {{
        acc = acc + *p;
        p = p + {step};          // raw pointer arithmetic
        left = left - {step};
        if (acc > {self._const(40, 90)}) {{
            acc = acc / 2;
        }}
    }}
    return acc;
}}
"""

    def _field_function(self, index: int) -> str:
        """Struct-field logic: field-insensitive accesses kill DFI slices."""
        name = f"field_logic{index}"
        struct = f"rec{index}"
        self.parts.append(
            f"struct {struct} {{ int key; int weight; int level; }};\n"
        )
        return f"""
int {name}(int *data, int n) {{
    struct {struct} r;
    int i;
    r.key = data[0];
    r.weight = 0;
    r.level = 0;
    for (i = 0; i < n; i = i + 1) {{
        r.weight = r.weight + data[i];
        if (r.weight > r.key + {self._const(5, 25)}) {{
            r.level = r.level + 1;
        }}
    }}
    if (r.level > {self._const(1, 4)}) {{
        return r.weight;
    }}
    return r.level;
}}
"""

    def _opaque_function(self, index: int) -> str:
        """Branches on memory behind an unresolvable double indirection:
        Pythia's complex-interprocedural-aliasing limitation."""
        name = f"opaque_check{index}"
        return f"""
int {name}(int **pp, int enabled) {{
    int *q;
    int acc = 0;
    if (enabled > 0) {{
        q = *pp;                 // pointer fetched from opaque memory
        if (*q > {self._const(5, 30)}) {{
            acc = acc + 1;
        }}
        if (*q > {self._const(31, 60)}) {{
            acc = acc + 2;
        }}
        if (acc > {self._const(1, 2)}) {{
            return acc * 2;
        }}
    }}
    return acc;
}}
"""

    def _ic_handler(self, index: int) -> str:
        """An input-channel handler: buffers, IC calls per the profile's
        category mix, and branches directly on the channel data."""
        name = f"handle_input{index}"
        lines: List[str] = [
            "    char buf[24];",
            "    char copy[24];",
            "    int parsed = 0;",
            "    int status = 0;",
            "    memset(buf, 0, 24);",
            "    buf[0] = 'r';",
            "    buf[1] = 0;",
        ]
        for _ in range(self.profile.ic_sites_per_handler):
            category = self._pick_ic_category()
            self._ic_counter += 1
            if category == "print":
                lines.append(f'    printf("h{index} %s %d\\n", buf, parsed);')
            elif category == "movecopy":
                choice = self.rng.randrange(3)
                if choice == 0:
                    lines.append("    memcpy(copy, buf, 12);")
                elif choice == 1:
                    lines.append("    memmove(copy, buf, 12);")
                else:
                    lines.append(f"    memset(copy, {self._const(60, 80)}, 8);")
            elif category == "scan":
                lines.append("    scanf(\"%d\", &parsed);")
                self.inputs.append(str(self._const(0, 5)).encode())
            elif category == "get":
                lines.append("    fgets(buf, 24, NULL);")
                self.inputs.append(b"line")
            elif category == "put":
                lines.append("    strcpy(copy, buf);")
            else:  # map
                lines.append("    mapped = mmap(32);")
        body = "\n".join(lines)
        uses_map = "mapped" in body
        map_decl = "    char *mapped;\n" if uses_map else ""
        map_use = (
            f"    if (mapped[0] == {self._const(1, 9)}) {{ status = status + 1; }}\n"
            if uses_map
            else ""
        )
        return f"""
int {name}(int round) {{
{map_decl}{body}
{map_use}    if (buf[0] == 'a') {{
        status = status + 2;     // branch directly on channel data
    }}
    if (parsed > {self._const(2, 7)}) {{
        status = status + round;
    }}
    return status;
}}
"""

    def _heap_worker(self, index: int) -> str:
        """Heap buffers written by an input channel -- the Algorithm 4 case.

        The channel is a copy (``memcpy`` from the request buffer), the
        dominant nginx/SPEC category; the request buffer itself is
        filled once by a get-channel in main."""
        name = f"heap_worker{index}"
        size = 16 + 8 * self._const(0, 2)
        return f"""
int {name}(int round, char *request) {{
    char *block;
    int *counts;
    int i;
    int acc = 0;
    block = malloc({size});
    counts = malloc(32);
    memcpy(block, request, 8);
    for (i = 0; i < 4; i = i + 1) {{
        counts[i] = block[i] + round;
    }}
    for (i = 0; i < 4; i = i + 1) {{
        if (counts[i] > {self._const(3, 12)}) {{
            acc = acc + counts[i];
        }}
    }}
    free(counts);
    free(block);
    return acc;
}}
"""

    # -- assembly ---------------------------------------------------------------

    def generate(self) -> GeneratedProgram:
        profile = self.profile
        size = profile.array_size

        # data arrays live in main's frame so their slices, guards and
        # canaries behave like the paper's stack variables.
        calls: List[str] = []
        for i in range(profile.hot_functions):
            self.parts.append(self._hot_function(i, tainted=False))
            self.main_decls.append(f"    int data{i}[{size}];")
            self.main_init.append(
                f"    for (i = 0; i < {size}; i = i + 1) {{"
                f" data{i}[i] = i * {self._const(2, 5)} % {self._const(5, 11)}; }}"
            )
            calls.append(f"        acc = acc + hot_compute{i}(data{i}, {size});")

        if profile.tainted_functions:
            # one seed value read from input taints every tbuf array
            self.main_decls.append("    int seeds[2];")
            self.main_init.append("    seeds[0] = 0;")
            self.main_init.append("    seeds[1] = 1;")
            self.main_init.append('    scanf("%d", &seeds[0]);')
            self.inputs.append(b"3")
        for i in range(profile.tainted_functions):
            self.parts.append(self._hot_function(i, tainted=True))
            self.main_decls.append(f"    int tbuf{i}[{size}];")
            self.main_init.append(
                f"    for (i = 0; i < {size}; i = i + 1) {{"
                f" tbuf{i}[i] = seeds[0] + i % {self._const(3, 9)}; }}"
            )
            calls.append(
                f"        acc = acc + tainted_compute{i}(tbuf{i}, {size});"
            )

        for i in range(profile.pointer_functions):
            self.parts.append(self._pointer_function(i))
            target = f"tbuf{i % max(1, profile.tainted_functions)}" if profile.tainted_functions else f"data{i % max(1, profile.hot_functions)}"
            calls.append(f"        acc = acc + pointer_walk{i}({target}, {size});")

        for i in range(profile.field_functions):
            self.parts.append(self._field_function(i))
            target = f"tbuf{i % max(1, profile.tainted_functions)}" if profile.tainted_functions else f"data{i % max(1, profile.hot_functions)}"
            calls.append(f"        acc = acc + field_logic{i}({target}, {size});")

        for i in range(profile.ic_handlers):
            self.parts.append(self._ic_handler(i))
            calls.append(f"        acc = acc + handle_input{i}(t);")

        if profile.opaque_functions:
            self.main_decls.append("    char *opaque_region;")
            self.main_init.append("    opaque_region = mmap(64);")
        for i in range(profile.opaque_functions):
            self.parts.append(self._opaque_function(i))
            calls.append(
                f"        acc = acc + opaque_check{i}(opaque_region, 0);"
            )

        if profile.heap_workers:
            self.main_decls.append("    char netbuf[16];")
            self.main_init.append("    memset(netbuf, 0, 16);")
            self.main_init.append("    fgets(netbuf, 16, NULL);")
            self.inputs.append(b"request")
        for i in range(profile.heap_workers):
            self.parts.append(self._heap_worker(i))
            calls.append(f"        acc = acc + heap_worker{i}(t, netbuf);")

        self.rng.shuffle(calls)
        body = "\n".join(calls)
        decls = "\n".join(self.main_decls)
        init = "\n".join(self.main_init)
        main = f"""
int main() {{
{decls}
    int i;
    int t;
    int acc = 0;
{init}
    for (t = 0; t < {profile.outer_iterations}; t = t + 1) {{
{body}
    }}
    printf("acc=%d\\n", acc);
    return 0;
}}
"""
        self.parts.append(main)
        source = "\n".join(self.parts)
        # Inputs are consumed once per dynamic scanf/fgets call; repeat
        # generously so re-runs under several schemes stay deterministic.
        inputs = list(self.inputs) * (profile.outer_iterations + 2)
        return GeneratedProgram(profile=profile, source=source, inputs=inputs)


def generate_program(profile: BenchmarkProfile) -> GeneratedProgram:
    """Generate the benchmark program for ``profile``."""
    return ProgramGenerator(profile).generate()
