"""repro.workloads -- benchmark program synthesis.

Per-benchmark statistical profiles for the paper's 15 SPEC applications
plus nginx, the deterministic MiniC program generator realising them,
and the nginx-style transfer-rate workload.
"""

from .generator import GeneratedProgram, ProgramGenerator, generate_program
from .nginx import (
    DURATION_BATCHES,
    NginxRun,
    nginx_program,
    run_nginx,
    transfer_rate_overhead,
)
from .profiles import (
    ALL_PROFILES,
    BenchmarkProfile,
    NGINX_PROFILE,
    SPEC_PROFILES,
    get_profile,
    profile_names,
)

__all__ = [
    "ALL_PROFILES",
    "BenchmarkProfile",
    "DURATION_BATCHES",
    "GeneratedProgram",
    "generate_program",
    "get_profile",
    "NGINX_PROFILE",
    "nginx_program",
    "NginxRun",
    "ProgramGenerator",
    "profile_names",
    "run_nginx",
    "SPEC_PROFILES",
    "transfer_rate_overhead",
]
