"""Per-benchmark statistical profiles.

The paper evaluates 15 SPEC CPU2017 applications plus nginx.  We cannot
run SPEC's sources, but every number the evaluation reports is a
function of program *statistics*: how many conditional branches, how
pointer-heavy the backward slices are, how many input channels of each
category, how much of the hot code operates on input-tainted data, how
much struct-field traffic the language style produces (C++), and how
much of the data lives on the heap.

Each profile parameterises the deterministic program generator
(:mod:`repro.workloads.generator`) with those statistics, scaled down
to interpreter-friendly sizes.  The *relative* ordering across
benchmarks follows the paper's characterisation:

- ``502.gcc_r``     -- the most vulnerable variables and branches; worst
  CPA overhead (69.8% in the paper) and worst Pythia overhead (25.4%).
- ``500.perlbench_r`` -- high CPA overhead (60.7%) collapsing to 18%.
- ``519.lbm_r``     -- tiny branch count (75), no IC-affected branches:
  both techniques protect 100%.
- ``505.mcf_r``, ``525.x264_r`` -- fully protectable by Pythia.
- ``510.parest_r`` (C++) -- the most input channels and PA sites for
  Pythia, and the largest DFI protection gap (~17%).
- ``523.xalancbmk_r`` (C++) -- PA inside loop nests: worst CPA IPC hit.
- ``nginx``         -- copy/move-dominated ICs (712 of 720) inside a hot
  request loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator knobs for one benchmark."""

    name: str
    language: str  # "c" or "c++"

    # -- code shape -----------------------------------------------------------
    #: hot compute functions over non-tainted data (unaffected branches)
    hot_functions: int = 4
    #: hot compute functions over IC-tainted data (CPA instruments these)
    tainted_functions: int = 2
    #: pointer-arithmetic walkers over tainted data (DFI slice killers)
    pointer_functions: int = 1
    #: struct-field logic over tainted data (field-insensitivity killers)
    field_functions: int = 1
    #: input-channel handler functions (buffers + IC calls + direct branches)
    ic_handlers: int = 2
    #: helpers branching on caller-opaque memory (Pythia's interproc limit)
    opaque_functions: int = 0
    #: heap-allocating workers with IC-written heap buffers
    heap_workers: int = 1

    # -- dynamic intensity -------------------------------------------------------
    #: outer main-loop iterations
    outer_iterations: int = 6
    #: inner loop trip count of hot/tainted/pointer functions
    inner_iterations: int = 24
    #: element count of the data arrays
    array_size: int = 16
    #: arithmetic statements per hot-loop iteration (dilutes overheads,
    #: modelling compute-dense kernels like lbm/namd)
    compute_weight: int = 1

    # -- input-channel mix (relative weights, Fig. 5(b)) ----------------------------
    ic_weights: Tuple[int, int, int, int, int, int] = (32, 66, 1, 1, 1, 1)
    #: extra print/copy IC call sites per handler (drives total IC count)
    ic_sites_per_handler: int = 4

    seed: int = 1

    @property
    def is_cpp(self) -> bool:
        return self.language == "c++"


def _p(**kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(**kwargs)


#: The paper's benchmark list with scaled-down, shape-preserving knobs.
SPEC_PROFILES: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        _p(
            name="500.perlbench_r", language="c", seed=500, compute_weight=0,
            hot_functions=5, tainted_functions=5, pointer_functions=2,
            field_functions=1, ic_handlers=3, opaque_functions=1,
            heap_workers=2, outer_iterations=6, inner_iterations=30,
            ic_sites_per_handler=4,
        ),
        _p(
            name="502.gcc_r", language="c", seed=502, compute_weight=0,
            hot_functions=5, tainted_functions=7, pointer_functions=3,
            field_functions=2, ic_handlers=5, opaque_functions=1,
            heap_workers=2, outer_iterations=6, inner_iterations=32,
            ic_sites_per_handler=6,
        ),
        _p(
            name="505.mcf_r", language="c", seed=505, compute_weight=2,
            hot_functions=4, tainted_functions=1, pointer_functions=0,
            field_functions=0, ic_handlers=1, opaque_functions=0,
            heap_workers=0, outer_iterations=6, inner_iterations=28,
            ic_sites_per_handler=3,
        ),
        _p(
            name="508.namd_r", language="c++", seed=508, compute_weight=3,
            hot_functions=6, tainted_functions=1, pointer_functions=1,
            field_functions=2, ic_handlers=1, opaque_functions=1,
            heap_workers=1, outer_iterations=6, inner_iterations=30,
            ic_sites_per_handler=3,
        ),
        _p(
            name="510.parest_r", language="c++", seed=510, compute_weight=3,
            hot_functions=5, tainted_functions=5, pointer_functions=4,
            field_functions=5, ic_handlers=5, opaque_functions=1,
            heap_workers=2, outer_iterations=6, inner_iterations=26,
            ic_sites_per_handler=9,
        ),
        _p(
            name="511.povray_r", language="c++", seed=511, compute_weight=2,
            hot_functions=5, tainted_functions=3, pointer_functions=2,
            field_functions=3, ic_handlers=2, opaque_functions=1,
            heap_workers=1, outer_iterations=6, inner_iterations=26,
            ic_sites_per_handler=4,
        ),
        _p(
            name="519.lbm_r", language="c", seed=519, compute_weight=4,
            hot_functions=3, tainted_functions=0, pointer_functions=0,
            field_functions=0, ic_handlers=1, opaque_functions=0,
            heap_workers=0, outer_iterations=6, inner_iterations=36,
            ic_sites_per_handler=2,
        ),
        _p(
            name="520.omnetpp_r", language="c++", seed=520, compute_weight=2,
            hot_functions=4, tainted_functions=3, pointer_functions=2,
            field_functions=3, ic_handlers=2, opaque_functions=1,
            heap_workers=2, outer_iterations=6, inner_iterations=24,
            ic_sites_per_handler=4,
        ),
        _p(
            name="523.xalancbmk_r", language="c++", seed=523, compute_weight=3,
            hot_functions=4, tainted_functions=4, pointer_functions=2,
            field_functions=4, ic_handlers=3, opaque_functions=1,
            heap_workers=2, outer_iterations=6, inner_iterations=34,
            ic_sites_per_handler=4,
        ),
        _p(
            name="525.x264_r", language="c", seed=525, compute_weight=2,
            hot_functions=6, tainted_functions=2, pointer_functions=0,
            field_functions=0, ic_handlers=2, opaque_functions=0,
            heap_workers=1, outer_iterations=6, inner_iterations=30,
            ic_sites_per_handler=3,
        ),
        _p(
            name="526.blender_r", language="c++", seed=526, compute_weight=1,
            hot_functions=5, tainted_functions=3, pointer_functions=2,
            field_functions=2, ic_handlers=2, opaque_functions=1,
            heap_workers=1, outer_iterations=6, inner_iterations=26,
            ic_sites_per_handler=4,
        ),
        _p(
            name="531.deepsjeng_r", language="c++", seed=531,
            hot_functions=5, tainted_functions=2, pointer_functions=1,
            field_functions=1, ic_handlers=1, opaque_functions=1,
            heap_workers=1, outer_iterations=6, inner_iterations=28,
            ic_sites_per_handler=3,
        ),
        _p(
            name="538.imagick_r", language="c", seed=538, compute_weight=2,
            hot_functions=5, tainted_functions=2, pointer_functions=1,
            field_functions=0, ic_handlers=2, opaque_functions=1,
            heap_workers=1, outer_iterations=6, inner_iterations=30,
            ic_sites_per_handler=3,
        ),
        _p(
            name="541.leela_r", language="c++", seed=541, compute_weight=2,
            hot_functions=4, tainted_functions=2, pointer_functions=1,
            field_functions=2, ic_handlers=1, opaque_functions=1,
            heap_workers=1, outer_iterations=6, inner_iterations=26,
            ic_sites_per_handler=3,
        ),
        _p(
            name="557.xz_r", language="c", seed=557, compute_weight=2,
            hot_functions=4, tainted_functions=2, pointer_functions=1,
            field_functions=0, ic_handlers=2, opaque_functions=1,
            heap_workers=1, outer_iterations=6, inner_iterations=28,
            ic_sites_per_handler=3,
        ),
    ]
}

#: nginx: few variables, many copy/move ICs, hot request loop.
NGINX_PROFILE = _p(
    name="nginx", language="c", seed=8080,
    hot_functions=4, tainted_functions=4, pointer_functions=1,
    field_functions=1, ic_handlers=3, opaque_functions=0,
    heap_workers=2, outer_iterations=8, inner_iterations=22,
    compute_weight=2, ic_weights=(1, 89, 0, 0, 0, 0), ic_sites_per_handler=4,
)

#: Everything the paper's figures iterate over, in figure order.
ALL_PROFILES: Dict[str, BenchmarkProfile] = {**SPEC_PROFILES, "nginx": NGINX_PROFILE}


def profile_names() -> List[str]:
    return list(ALL_PROFILES)


def get_profile(name: str) -> BenchmarkProfile:
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(ALL_PROFILES)}"
        ) from None
