"""The nginx-style workload (§6.3) and the serve-daemon request mix.

The paper drives nginx with a 12-thread workload generator creating 400
concurrent connections for 3 s / 30 s / 300 s and reports overhead as
transfer-rate degradation.  The simulated equivalent is an event-loop
server program (generated from :data:`~repro.workloads.profiles.NGINX_PROFILE`,
whose input channels are copy/move-dominated like nginx's ``ngx_*``
functions) executed for increasing request batches; transfer rate is
bytes written to the response stream per simulated cycle.

:func:`build_request_mix` scales the same workload up for
``python -m repro serve``: a seeded, fully deterministic stream of
compile/run/attack/profile protocol requests over a small set of
distinct nginx-shaped programs -- the shape a front-line daemon sees
(hot repeats of few modules, occasional cold variants), which is what
exercises the warm registry, the shard routing, and the single-flight
dedup.  ``python -m repro loadgen`` and
``benchmarks/bench_serve_latency.py`` both consume it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from ..core.config import SCHEMES
from ..core.framework import protect
from ..hardware.cpu import CPU
from .generator import GeneratedProgram, generate_program
from .profiles import NGINX_PROFILE

#: Request batches standing in for the paper's 3 s / 30 s / 300 s runs.
DURATION_BATCHES: Dict[str, int] = {"3s": 6, "30s": 18, "300s": 54}


@dataclass
class NginxRun:
    """One scheme's measurement at one duration."""

    scheme: str
    duration: str
    cycles: float
    bytes_out: int

    @property
    def transfer_rate(self) -> float:
        """Bytes served per cycle -- the paper's GB/s equivalent."""
        if self.cycles <= 0:
            return 0.0
        return self.bytes_out / self.cycles


def nginx_program(duration: str = "3s") -> GeneratedProgram:
    """The nginx-style program sized for ``duration``."""
    batches = DURATION_BATCHES[duration]
    profile = replace(NGINX_PROFILE, outer_iterations=batches)
    return generate_program(profile)


def run_nginx(
    durations: Sequence[str] = ("3s", "30s", "300s"),
    schemes: Sequence[str] = SCHEMES,
    seed: int = 2024,
) -> List[NginxRun]:
    """Serve the request batches under each scheme; returns all runs."""
    runs: List[NginxRun] = []
    for duration in durations:
        program = nginx_program(duration)
        module = program.compile()
        for scheme in schemes:
            protection = protect(module, scheme=scheme)
            cpu = CPU(protection.module, seed=seed)
            result = cpu.run(inputs=list(program.inputs))
            if not result.ok:
                raise RuntimeError(
                    f"nginx/{scheme}/{duration} failed: {result.status} ({result.trap})"
                )
            runs.append(
                NginxRun(
                    scheme=scheme,
                    duration=duration,
                    cycles=result.cycles,
                    bytes_out=len(result.output),
                )
            )
    return runs


# -- serve-daemon load generation ---------------------------------------------

#: Default op weights of the serve request mix: a front-line daemon
#: mostly executes, sometimes (re)compiles, occasionally replays an
#: attack or profiles a hot module.
DEFAULT_MIX: Dict[str, int] = {"run": 6, "compile": 3, "attack": 2, "profile": 1}

#: Attack scenarios cycled through the mix's ``attack`` requests.
MIX_SCENARIOS = ("privilege_escalation", "heap_overflow", "pac_reuse")


def parse_mix(text: str) -> Dict[str, int]:
    """Parse ``op=weight,op=weight`` (e.g. ``run=6,compile=3``)."""
    mix: Dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad mix component {part!r}; expected op=weight")
        op, _, weight = part.partition("=")
        op = op.strip()
        if op not in DEFAULT_MIX:
            raise ValueError(
                f"unknown mix op {op!r}; try: {', '.join(DEFAULT_MIX)}"
            )
        try:
            mix[op] = int(weight)
        except ValueError as exc:
            raise ValueError(f"bad mix weight {weight!r} for {op!r}") from exc
        if mix[op] < 0:
            raise ValueError(f"mix weight for {op!r} must be >= 0")
    if not any(mix.values()):
        raise ValueError("request mix has zero total weight")
    return mix


def _mix_programs(variants: int, duration: str) -> List[GeneratedProgram]:
    """``variants`` distinct nginx-shaped programs (distinct digests)."""
    batches = DURATION_BATCHES[duration]
    programs = []
    for index in range(variants):
        profile = replace(
            NGINX_PROFILE,
            name=f"nginx.v{index}",
            outer_iterations=batches,
            seed=NGINX_PROFILE.seed + index,
        )
        programs.append(generate_program(profile))
    return programs


def build_request_mix(
    count: int,
    seed: int = 2024,
    mix: Optional[Dict[str, int]] = None,
    duration: str = "3s",
    variants: int = 3,
    schemes: Sequence[str] = SCHEMES,
    interpreter: Optional[str] = "block",
) -> List[Dict[str, Any]]:
    """A deterministic list of ``count`` serve-protocol request bodies.

    Ops are drawn with ``mix`` weights from a string-seeded RNG, each
    against one of ``variants`` distinct generated nginx programs and
    one of ``schemes`` -- so the same ``(count, seed, mix, duration,
    variants, schemes)`` always produces byte-identical request bodies
    (``id`` is assigned later, by whoever sends them).  The working set
    is deliberately small and hot: most requests repeat a
    (program, scheme) pair the daemon has already warmed, matching the
    few-modules/many-requests shape of real serving traffic.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if variants < 1:
        raise ValueError(f"variants must be >= 1, got {variants}")
    weights = dict(DEFAULT_MIX if mix is None else mix)
    ops = [op for op, weight in sorted(weights.items()) for _ in range(weight)]
    if not ops:
        raise ValueError("request mix has zero total weight")
    rng = random.Random(f"serve-mix:{seed}")
    programs = _mix_programs(variants, duration)
    requests: List[Dict[str, Any]] = []
    for _ in range(count):
        op = rng.choice(ops)
        scheme = rng.choice(list(schemes))
        if op == "attack":
            requests.append(
                {
                    "op": "attack",
                    "scenario": rng.choice(list(MIX_SCENARIOS)),
                    "scheme": scheme,
                    "seed": seed,
                }
            )
            continue
        program = rng.choice(programs)
        request: Dict[str, Any] = {
            "op": op,
            "source": program.source,
            "name": program.profile.name,
            "scheme": scheme,
            "seed": seed,
        }
        if op in ("run", "profile"):
            request["inputs"] = [data.decode("utf-8") for data in program.inputs]
            if interpreter is not None:
                request["interpreter"] = interpreter
        requests.append(request)
    return requests


def transfer_rate_overhead(runs: Sequence[NginxRun], scheme: str) -> float:
    """Average transfer-rate degradation of ``scheme`` vs vanilla."""
    by_duration: Dict[str, Dict[str, NginxRun]] = {}
    for run in runs:
        by_duration.setdefault(run.duration, {})[run.scheme] = run
    degradations = []
    for duration, by_scheme in by_duration.items():
        if "vanilla" not in by_scheme or scheme not in by_scheme:
            continue
        base = by_scheme["vanilla"].transfer_rate
        if base <= 0:
            continue
        degradations.append(1.0 - by_scheme[scheme].transfer_rate / base)
    if not degradations:
        return 0.0
    return sum(degradations) / len(degradations)
