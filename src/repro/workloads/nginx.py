"""The nginx-style workload (§6.3).

The paper drives nginx with a 12-thread workload generator creating 400
concurrent connections for 3 s / 30 s / 300 s and reports overhead as
transfer-rate degradation.  The simulated equivalent is an event-loop
server program (generated from :data:`~repro.workloads.profiles.NGINX_PROFILE`,
whose input channels are copy/move-dominated like nginx's ``ngx_*``
functions) executed for increasing request batches; transfer rate is
bytes written to the response stream per simulated cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from ..core.config import SCHEMES
from ..core.framework import protect
from ..hardware.cpu import CPU
from .generator import GeneratedProgram, generate_program
from .profiles import NGINX_PROFILE

#: Request batches standing in for the paper's 3 s / 30 s / 300 s runs.
DURATION_BATCHES: Dict[str, int] = {"3s": 6, "30s": 18, "300s": 54}


@dataclass
class NginxRun:
    """One scheme's measurement at one duration."""

    scheme: str
    duration: str
    cycles: float
    bytes_out: int

    @property
    def transfer_rate(self) -> float:
        """Bytes served per cycle -- the paper's GB/s equivalent."""
        if self.cycles <= 0:
            return 0.0
        return self.bytes_out / self.cycles


def nginx_program(duration: str = "3s") -> GeneratedProgram:
    """The nginx-style program sized for ``duration``."""
    batches = DURATION_BATCHES[duration]
    profile = replace(NGINX_PROFILE, outer_iterations=batches)
    return generate_program(profile)


def run_nginx(
    durations: Sequence[str] = ("3s", "30s", "300s"),
    schemes: Sequence[str] = SCHEMES,
    seed: int = 2024,
) -> List[NginxRun]:
    """Serve the request batches under each scheme; returns all runs."""
    runs: List[NginxRun] = []
    for duration in durations:
        program = nginx_program(duration)
        module = program.compile()
        for scheme in schemes:
            protection = protect(module, scheme=scheme)
            cpu = CPU(protection.module, seed=seed)
            result = cpu.run(inputs=list(program.inputs))
            if not result.ok:
                raise RuntimeError(
                    f"nginx/{scheme}/{duration} failed: {result.status} ({result.trap})"
                )
            runs.append(
                NginxRun(
                    scheme=scheme,
                    duration=duration,
                    cycles=result.cycles,
                    bytes_out=len(result.output),
                )
            )
    return runs


def transfer_rate_overhead(runs: Sequence[NginxRun], scheme: str) -> float:
    """Average transfer-rate degradation of ``scheme`` vs vanilla."""
    by_duration: Dict[str, Dict[str, NginxRun]] = {}
    for run in runs:
        by_duration.setdefault(run.duration, {})[run.scheme] = run
    degradations = []
    for duration, by_scheme in by_duration.items():
        if "vanilla" not in by_scheme or scheme not in by_scheme:
            continue
        base = by_scheme["vanilla"].transfer_rate
        if base <= 0:
            continue
        degradations.append(1.0 - by_scheme[scheme].transfer_rate / base)
    if not degradations:
        return 0.0
    return sum(degradations) / len(degradations)
