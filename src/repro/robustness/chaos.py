"""Chaos harness: run workloads under a fault plan, assert containment.

Pythia's security argument is about what happens when state is
*corrupted*: a tampered signed pointer must die at authentication, a
foreign write must be flagged by DFI, a rotten cache entry must be
silently recompiled -- never served.  This module turns that argument
into an executable check.  Each spec of a :class:`FaultPlan` becomes
one **chaos case**: a fresh execution (or cache exercise) with exactly
that fault armed, classified against the defense contract:

=================  ==================================================
fault kind         required containment
=================  ==================================================
``pac.bits``       execution status ``pac_trap``
``pac.key``        execution status ``pac_trap``
``pac.reuse``      execution status ``pac_trap`` (the replayed value's
                   MAC is genuine; the *modifier* mismatch must trap)
``dfi.shadow``     execution status ``dfi_trap``
``heap.cross``     execution status ``section_trap`` (the secure
                   allocator's section check must catch the misroute)
``cache.*``        miss / cache-off and a recompile, never a wrong or
                   half-written module served
``mem.flip``,      no strict contract (arbitrary data corruption /
``alloc.header``,  control-flow bending); any trap, fault, divergence,
``call.retarget``  or benign outcome is recorded -- only an *uncaught
                   Python exception* is a bug
=================  ==================================================

Anything outside its contract -- and any uncaught exception anywhere --
lands in a triage bucket (:mod:`repro.robustness.triage`).  Reports are
deterministic: the same plan and seed yield the same fault sites,
classifications, and buckets, which ``python -m repro chaos`` and the
CI smoke job rely on.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.framework import protect
from ..hardware.cpu import CPU
from ..ir.printer import print_module
from ..observability import current_tracer, get_event_log, get_metrics
from ..perf.cache import CompilationCache
from ..workloads.generator import generate_program
from ..workloads.profiles import get_profile
from .faults import FaultInjector, FaultPlan, FaultSpec
from .triage import CrashRecord, TriageReport, record_crash, triage

#: Scheme under which each execution-layer fault kind runs: PAC faults
#: need signed pointers (cpa signs every protected access), DFI faults
#: need an instrumented definitions table, raw corruption runs under
#: the full Pythia defense.
EXECUTION_SCHEME: Dict[str, str] = {
    "pac.bits": "cpa",
    "pac.key": "cpa",
    "pac.reuse": "cpa",
    "dfi.shadow": "dfi",
    "mem.flip": "pythia",
    "alloc.header": "pythia",
    "call.retarget": "vanilla",
    "heap.cross": "pythia",
}

#: Execution status required for strict-contract kinds.
CONTRACT_STATUS: Dict[str, str] = {
    "pac.bits": "pac_trap",
    "pac.key": "pac_trap",
    "pac.reuse": "pac_trap",
    "dfi.shadow": "dfi_trap",
    "heap.cross": "section_trap",
}

CACHE_KINDS = ("cache.corrupt", "cache.truncate", "cache.oserror")

#: Kinds whose contract is strict: anything but ``contained`` is a
#: violation.  The corruption kinds only forbid uncaught exceptions.
STRICT_KINDS = tuple(CONTRACT_STATUS) + CACHE_KINDS


@dataclass(frozen=True)
class ChaosCase:
    """One fault spec's run, classified.

    ``classification`` is one of ``contained`` (the contract held),
    ``detected`` (a different defense trap fired), ``faulted`` (memory
    fault / OOM / step limit), ``benign`` (ran clean, output identical
    to the fault-free baseline), ``diverged`` (ran clean but output
    changed -- a silent wrong answer), ``not-triggered`` (the trigger
    was never reached), or ``unexpected`` (an uncaught exception; see
    the triage report).
    """

    index: int
    kind: str
    scheme: str
    classification: str
    status: str
    detail: str
    events: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "kind": self.kind,
            "scheme": self.scheme,
            "classification": self.classification,
            "status": self.status,
            "detail": self.detail,
            "events": list(self.events),
        }


@dataclass
class ChaosReport:
    """Every case of one chaos run plus the triage of its crashes."""

    plan: FaultPlan
    workload: str
    seed: int
    cases: List[ChaosCase] = field(default_factory=list)
    crashes: List[CrashRecord] = field(default_factory=list)

    @property
    def triage(self) -> TriageReport:
        return triage(self.crashes)

    def contract_violations(self) -> List[ChaosCase]:
        """Cases that broke their defense contract.

        Strict kinds must be ``contained``; every kind forbids
        ``unexpected``.  A strict fault that never fired is also a
        violation -- an untriggered fault proves nothing.
        """
        return [
            case
            for case in self.cases
            if case.classification == "unexpected"
            or (case.kind in STRICT_KINDS and case.classification != "contained")
        ]

    @property
    def ok(self) -> bool:
        return not self.contract_violations()

    def signature(self) -> Tuple[Tuple[str, str, str, Tuple[str, ...]], ...]:
        """The determinism artifact: identical for same seed + plan."""
        return tuple(
            (case.kind, case.classification, case.status, case.events)
            for case in self.cases
        )

    def to_manifest(self) -> Dict[str, object]:
        """JSON-able manifest (the CI chaos job uploads this)."""
        return {
            "workload": self.workload,
            "seed": self.seed,
            "plan": [spec.to_dict() for spec in self.plan.specs],
            "cases": [case.to_dict() for case in self.cases],
            "violations": [case.to_dict() for case in self.contract_violations()],
            "triage": self.triage.to_dict(),
            "ok": self.ok,
        }

    def summary_lines(self) -> List[str]:
        lines = []
        for case in self.cases:
            lines.append(
                f"  [{case.index}] {case.kind:14s} {case.scheme:8s} "
                f"{case.classification:13s} status={case.status:10s} {case.detail}"
            )
        return lines


def _classify_execution(
    kind: str, result, baseline, events: Tuple[str, ...]
) -> Tuple[str, str]:
    """Classify one faulty execution against its contract and baseline."""
    if not events:
        return "not-triggered", "fault trigger was never reached"
    required = CONTRACT_STATUS.get(kind)
    if required is not None and result.status == required:
        return "contained", f"trapped as required ({result.trap})"
    if result.status == "ok":
        if result.output == baseline.output and (
            result.return_value == baseline.return_value
        ):
            return "benign", "ran clean, output identical to baseline"
        return "diverged", "ran clean but output differs from baseline"
    if result.detected:
        return "detected", f"defense trap {result.status} ({result.trap})"
    return "faulted", f"{result.status} ({result.trap})"


def _run_execution_case(
    index: int,
    spec: FaultSpec,
    plan: FaultPlan,
    protected_module,
    baseline,
    inputs,
    seed: int,
    interpreter: Optional[str],
) -> Tuple[ChaosCase, Optional[CrashRecord]]:
    scheme = EXECUTION_SCHEME[spec.kind]
    injector = FaultInjector(plan, only=index)
    task = f"chaos[{index}]:{spec.kind}"
    try:
        cpu = CPU(protected_module, seed=seed, interpreter=interpreter)
        injector.arm(cpu)
        result = cpu.run(inputs=list(inputs))
    except Exception as exc:  # an uncaught interpreter bug: triage it
        record = record_crash(task, exc)
        case = ChaosCase(
            index,
            spec.kind,
            scheme,
            "unexpected",
            "crash",
            f"uncaught {record.exc_type}: {record.message}",
            injector.event_log(),
        )
        return case, record
    classification, detail = _classify_execution(
        spec.kind, result, baseline, injector.event_log()
    )
    return (
        ChaosCase(
            index,
            spec.kind,
            scheme,
            classification,
            result.status,
            detail,
            injector.event_log(),
        ),
        None,
    )


def _run_cache_case(
    index: int,
    spec: FaultSpec,
    plan: FaultPlan,
    module_text: str,
    protected_text: str,
    cache_root: str,
) -> Tuple[ChaosCase, Optional[CrashRecord]]:
    """Exercise the compilation cache with one injected I/O fault.

    The contract for every cache kind is the same: the fault must
    surface as a miss (forcing a silent recompile) or as cache-off --
    never as a served wrong module and never as an exception.
    """
    injector = FaultInjector(plan, only=index)
    task = f"chaos[{index}]:{spec.kind}"
    try:
        cache = CompilationCache(cache_root)
        from ..core.config import DefenseConfig

        key = cache.key_for(module_text, DefenseConfig(scheme="pythia"))
        if spec.kind == "cache.corrupt":
            # Prime a clean entry, then read it back through the fault.
            cache.store(key, "pythia", protected_text, {})
            cache.fault_hook = injector
            loaded = cache.load(key)
            if not injector.fired:
                classification, detail = "not-triggered", "no cache load fired"
            elif loaded is None and cache.stats.corrupt == 1:
                classification, detail = "contained", "corrupt entry rejected; miss"
            elif loaded is not None and loaded["module"] == protected_text:
                classification, detail = "benign", "corruption did not take"
            else:
                classification, detail = "diverged", "corrupt entry was served"
        else:
            cache.fault_hook = injector
            cache.store(key, "pythia", protected_text, {})
            loaded = cache.load(key)
            served_wrong = loaded is not None and loaded["module"] != protected_text
            if not injector.fired:
                classification, detail = "not-triggered", "no cache store fired"
            elif served_wrong:
                classification, detail = "diverged", "damaged entry was served"
            elif spec.kind == "cache.oserror":
                if cache.disabled and cache.stats.io_errors >= 1:
                    classification, detail = (
                        "contained",
                        "store failed; degraded to cache-off",
                    )
                else:
                    classification, detail = "diverged", "OSError not absorbed"
            else:  # cache.truncate
                classification, detail = (
                    "contained",
                    "truncated entry rejected; miss",
                )
        status = "cache-off" if cache.disabled else "miss" if loaded is None else "hit"
    except Exception as exc:  # cache layer let an error escape: a bug
        record = record_crash(task, exc)
        case = ChaosCase(
            index,
            spec.kind,
            "-",
            "unexpected",
            "crash",
            f"uncaught {record.exc_type}: {record.message}",
            injector.event_log(),
        )
        return case, record
    return (
        ChaosCase(
            index, spec.kind, "-", classification, status, detail, injector.event_log()
        ),
        None,
    )


#: Default chaos workload: the only profile with live heap traffic,
#: so allocator-metadata faults actually trigger.
DEFAULT_WORKLOAD = "nginx"


def run_chaos(
    plan: FaultPlan,
    workload: str = DEFAULT_WORKLOAD,
    seed: int = 2024,
    interpreter: Optional[str] = None,
) -> ChaosReport:
    """Run ``workload`` once per fault spec and classify every outcome.

    Each spec runs in isolation (``FaultInjector(plan, only=index)``)
    so a fault is attributable to its own case, while its derived
    randomness stays tied to its index in the full plan -- running a
    spec alone or with siblings injects the identical fault.
    """
    report = ChaosReport(plan=plan, workload=workload, seed=seed)
    program = generate_program(get_profile(workload))
    module = program.compile()
    module_text = print_module(module)

    needed = {
        EXECUTION_SCHEME[spec.kind]
        for spec in plan.specs
        if spec.kind in EXECUTION_SCHEME
    }
    cache_specs = [spec for spec in plan.specs if spec.kind in CACHE_KINDS]
    if cache_specs:
        needed.add("pythia")
    protections = {scheme: protect(module, scheme=scheme) for scheme in sorted(needed)}
    baselines = {
        scheme: CPU(result.module, seed=seed, interpreter=interpreter).run(
            inputs=list(program.inputs)
        )
        for scheme, result in protections.items()
    }
    protected_text = (
        print_module(protections["pythia"].module) if cache_specs else ""
    )

    tracer = current_tracer()
    metrics = get_metrics()
    event_log = get_event_log()
    for index, spec in enumerate(plan.specs):
        with tracer.span(f"chaos:{spec.kind}", "chaos", index=index):
            if spec.kind in CACHE_KINDS:
                with tempfile.TemporaryDirectory(
                    prefix="repro-chaos-cache-"
                ) as root:
                    case, crash = _run_cache_case(
                        index, spec, plan, module_text, protected_text, root
                    )
            else:
                scheme = EXECUTION_SCHEME[spec.kind]
                case, crash = _run_execution_case(
                    index,
                    spec,
                    plan,
                    protections[scheme].module,
                    baselines[scheme],
                    program.inputs,
                    seed,
                    interpreter,
                )
            for event in case.events:
                tracer.instant("fault", "chaos", kind=spec.kind, site=event)
                event_log.emit(
                    "fault-injected",
                    scheme=case.scheme if case.scheme != "-" else None,
                    kind=spec.kind,
                    site=event,
                    case=index,
                )
            if case.status.endswith("_trap"):
                # A defense trap absorbed the fault: the same record a
                # serve worker emits for a detected attack.  (Cache
                # containment is covered by the cache layer's own
                # cache-corrupt-recompile events.)
                event_log.emit(
                    "trap",
                    scheme=case.scheme if case.scheme != "-" else None,
                    status=case.status,
                    kind=spec.kind,
                    case=index,
                )
        metrics.inc("chaos.cases")
        metrics.inc("chaos.faults_fired", len(case.events))
        metrics.inc(f"chaos.classification.{case.classification}")
        report.cases.append(case)
        if crash is not None:
            report.crashes.append(crash)
    return report
