"""Deterministic, seeded fault injection for the simulated machine.

A :class:`FaultPlan` names *where* failure strikes; a
:class:`FaultInjector` built from it plugs into the hook points the
hardware and cache layers expose and fires each fault at its configured
trigger.  Everything is derived from the plan seed and the spec's index
in the plan -- never from wall-clock time or global RNG state -- so the
same seed and plan reproduce the exact same fault sites, which the
chaos harness asserts run over run.

Fault kinds and their injection sites:

===================  ==========================================================
kind                 effect
===================  ==========================================================
``mem.flip``         flip one bit of the payload of the Nth memory write
                     (:meth:`repro.hardware.memory.Memory.write_bytes` /
                     ``write_int`` hook)
``pac.bits``         flip one bit inside the PAC field of the Nth signed
                     value (:meth:`repro.hardware.pac.PointerAuthentication.sign`
                     hook) -- models in-memory tampering with a signed pointer
``pac.key``          flip one bit of a PA key after the Nth sign -- every
                     later authentication of an earlier signature must trap
``alloc.header``     tamper the chunk-size metadata of the Nth allocation
                     (:meth:`repro.hardware.allocator.HeapAllocator.malloc`
                     hook), corrupting free-list coalescing downstream
``dfi.shadow``       record a bogus writer id for the Nth instrumented
                     ``dfi.setdef`` (the runtime definitions table hook)
``pac.reuse``        capture the Nth *signed* value and replay it at the
                     first later authentication of a different value
                     (:meth:`repro.hardware.pac.PointerAuthentication.auth`
                     hook) -- PACStack's signed-pointer reuse/substitution
                     attack: the MAC is genuine, only the site is wrong
``call.retarget``    bend the Nth defined-function call to a different
                     defined function of the same arity and return type
                     (:meth:`repro.hardware.cpu.CPU._call` hook) --
                     indirect-call operand corruption
``heap.cross``       misroute the Nth *isolated* allocation request into
                     the shared arena
                     (:meth:`repro.hardware.allocator.SectionedHeap.malloc`
                     hook) -- cross-heap-section confusion
``cache.corrupt``    garble the payload of the Nth compilation-cache load
``cache.truncate``   truncate the serialized entry of the Nth cache store
``cache.oserror``    raise ``OSError`` inside the Nth cache store (disk
                     full / permission loss)
===================  ==========================================================

The contract each kind must satisfy is checked by
:mod:`repro.robustness.chaos`: PAC faults surface as authentication
traps, DFI faults as DFI violations, cache faults as silent recompiles.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..hardware.pac import PAC_BITS, VA_BITS

#: Every fault kind the engine knows how to inject, mapped to the
#: event stream whose counter drives its trigger.
FAULT_KINDS: Dict[str, str] = {
    "mem.flip": "write",
    "pac.bits": "sign",
    "pac.key": "sign",
    "alloc.header": "malloc",
    "dfi.shadow": "setdef",
    "pac.reuse": "sign",
    "call.retarget": "call",
    "heap.cross": "isolated",
    "cache.corrupt": "cache.load",
    "cache.truncate": "cache.store",
    "cache.oserror": "cache.store",
}

#: Writer-id base for corrupted DFI definitions: far above any def id
#: the instrumentation assigns, so the bogus writer is never allowed.
_BOGUS_DFI_WRITER = 0x7FFF0000


@dataclass(frozen=True)
class FaultSpec:
    """One injection site: a kind plus when (and how often) it fires.

    ``trigger`` counts *eligible events* of the spec's stream (1-based):
    memory writes for ``mem.flip``, PAC signs for ``pac.*``,
    allocations for ``alloc.header``, instrumented setdefs for
    ``dfi.shadow``, cache loads/stores for ``cache.*``.  ``count``
    consecutive events starting at the trigger are corrupted
    (``pac.key`` corrupts the key once, at the trigger).
    """

    kind: str
    trigger: int = 1
    count: int = 1
    key_id: str = "da"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {tuple(FAULT_KINDS)}"
            )
        if self.trigger < 1:
            raise ValueError(f"trigger must be >= 1, got {self.trigger}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "trigger": self.trigger,
            "count": self.count,
            "key_id": self.key_id,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            trigger=int(data.get("trigger", 1)),
            count=int(data.get("count", 1)),
            key_id=data.get("key_id", "da"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of fault specs."""

    seed: int
    specs: Tuple[FaultSpec, ...]

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [spec.to_dict() for spec in self.specs]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict) or not isinstance(data.get("specs"), list):
            raise ValueError("fault plan must be an object with a 'specs' list")
        return cls(
            seed=int(data.get("seed", 0)),
            specs=tuple(FaultSpec.from_dict(spec) for spec in data["specs"]),
        )


def smoke_plan(seed: int = 2024) -> FaultPlan:
    """The built-in chaos smoke plan: one fault of every kind.

    Triggers are small so every fault actually fires on the default
    workload; the CI chaos job runs exactly this plan at a fixed seed.
    """
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec("pac.bits", trigger=1),
            FaultSpec("pac.key", trigger=1),
            FaultSpec("dfi.shadow", trigger=1),
            FaultSpec("mem.flip", trigger=64),
            FaultSpec("alloc.header", trigger=1),
            FaultSpec("pac.reuse", trigger=1),
            FaultSpec("call.retarget", trigger=2),
            FaultSpec("heap.cross", trigger=1),
            FaultSpec("cache.corrupt", trigger=1),
            FaultSpec("cache.truncate", trigger=1),
            FaultSpec("cache.oserror", trigger=1),
        ),
    )


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired, with its reproducible site."""

    spec_index: int
    kind: str
    event_index: int
    site: str

    def describe(self) -> str:
        return f"{self.kind}#{self.event_index} {self.site} (spec {self.spec_index})"


class FaultInjector:
    """Live injection state for one execution under a plan.

    Construct one injector per run and attach it with :meth:`arm`
    (simulated CPU) and/or by passing it as a
    :class:`~repro.perf.cache.CompilationCache` ``fault_hook``.  Event
    counters are per *stream* and shared by all specs of that stream,
    so a spec's trigger means "the Nth event of this stream in this
    run" regardless of how other streams interleave.  ``only``
    restricts the injector to a single spec (by plan index) without
    changing that spec's derived randomness -- the chaos harness uses
    this to attribute each fault to its own execution.
    """

    def __init__(self, plan: FaultPlan, only: Optional[int] = None):
        self.plan = plan
        self.events: List[FaultEvent] = []
        self._counters: Dict[str, int] = {}
        self._active = [
            (index, spec)
            for index, spec in enumerate(plan.specs)
            if only is None or index == only
        ]
        self._keys_corrupted: set = set()
        #: pac.reuse capture state: spec index -> signed value captured
        #: at the spec's sign site, cleared once replayed (one-shot).
        self._captured: Dict[int, int] = {}

    # -- bookkeeping ----------------------------------------------------------

    def _rng(self, spec_index: int, event_index: int) -> random.Random:
        """Per-(spec, event) randomness, independent of interleaving.

        String seeding hashes with SHA-512 internally, so the derived
        stream is identical across processes and runs.
        """
        return random.Random(f"{self.plan.seed}:{spec_index}:{event_index}")

    def _firing(self, stream: str) -> List[Tuple[int, FaultSpec, int]]:
        """Advance the stream counter; return the specs firing now."""
        event = self._counters.get(stream, 0) + 1
        self._counters[stream] = event
        return [
            (index, spec, event)
            for index, spec in self._active
            if FAULT_KINDS[spec.kind] == stream
            and spec.trigger <= event < spec.trigger + spec.count
        ]

    def _record(self, spec_index: int, kind: str, event: int, site: str) -> None:
        self.events.append(FaultEvent(spec_index, kind, event, site))

    @property
    def fired(self) -> bool:
        return bool(self.events)

    def event_log(self) -> Tuple[str, ...]:
        """The reproducibility artifact: every fired fault, in order."""
        return tuple(event.describe() for event in self.events)

    # -- attachment -----------------------------------------------------------

    def arm(self, cpu) -> None:
        """Attach this injector to every hook point of a CPU."""
        cpu.memory.fault_hook = self
        cpu.pac.fault_hook = self
        cpu.heap.fault_hook = self
        cpu.heap.shared.fault_hook = self
        cpu.heap.isolated.fault_hook = self
        cpu.dfi_shadow.fault_hook = self
        cpu.call_fault_hook = self

    # -- hardware hooks -------------------------------------------------------

    def on_memory_write(self, address: int, payload: bytes) -> bytes:
        for index, spec, event in self._firing("write"):
            if spec.kind != "mem.flip":
                continue
            bit = self._rng(index, event).randrange(len(payload) * 8)
            data = bytearray(payload)
            data[bit // 8] ^= 1 << (bit % 8)
            payload = bytes(data)
            self._record(index, "mem.flip", event, f"addr={address:#x} bit={bit}")
        return payload

    def on_pac_sign(self, pac, signed: int, modifier: int, key_id: str) -> int:
        for index, spec, event in self._firing("sign"):
            rng = self._rng(index, event)
            if spec.kind == "pac.bits":
                bit = VA_BITS + rng.randrange(PAC_BITS)
                signed ^= 1 << bit
                self._record(
                    index, "pac.bits", event, f"value={signed:#018x} bit={bit}"
                )
            elif spec.kind == "pac.key" and index not in self._keys_corrupted:
                self._keys_corrupted.add(index)
                bit = rng.randrange(128)
                pac.corrupt_key(spec.key_id, bit)
                self._record(index, "pac.key", event, f"key={spec.key_id} bit={bit}")
            elif spec.kind == "pac.reuse" and index not in self._captured:
                # Capture only: the replay happens at a later auth site
                # (see on_pac_auth).  Recording waits until the replay so
                # a capture with no subsequent auth reads as not fired.
                self._captured[index] = signed
        return signed

    def on_pac_auth(self, pac, value: int, modifier: int, key_id: str) -> int:
        """Signed-pointer reuse: substitute a captured signed value.

        The replay site is the first authentication whose incoming value
        differs from the capture -- substituting at a same-value site
        would be a no-op.  One-shot per spec; the MAC on the substituted
        value is genuine, so the defense only trips when sign and auth
        sites disagree on the modifier (per-object ids under cpa,
        canary slots under pythia).
        """
        event = self._counters.get("auth", 0) + 1
        self._counters["auth"] = event
        for index, spec in self._active:
            if spec.kind != "pac.reuse":
                continue
            captured = self._captured.get(index)
            if captured is None or captured == value:
                continue
            del self._captured[index]
            self._record(
                index,
                "pac.reuse",
                event,
                f"auth#{event} value={value:#018x}->{captured:#018x}",
            )
            value = captured
        return value

    def on_call(self, cpu, function, args):
        """Indirect-call operand corruption: bend the Nth defined call.

        The replacement is drawn deterministically from the module's
        other defined functions with the same arity and return type, so
        the bent execution stays type-correct (the corruption models a
        function-pointer swap, not a wild jump).  No candidate -> no-op.
        """
        for index, spec, event in self._firing("call"):
            if spec.kind != "call.retarget":
                continue
            ftype = function.function_type
            candidates = [
                f
                for f in cpu.module.functions.values()
                if not f.is_declaration
                and f is not function
                and len(f.args) == len(function.args)
                and f.function_type.return_type == ftype.return_type
            ]
            if not candidates:
                continue
            target = self._rng(index, event).choice(
                sorted(candidates, key=lambda f: f.name)
            )
            self._record(
                index,
                "call.retarget",
                event,
                f"{function.name}->{target.name}",
            )
            function = target
        return function

    def on_heap_route(self, heap, size: int, isolated: bool) -> bool:
        """Cross-heap-section confusion: misroute an isolated request."""
        for index, spec, event in self._firing("isolated"):
            if spec.kind != "heap.cross":
                continue
            self._record(index, "heap.cross", event, f"size={size} ->shared")
            isolated = False
        return isolated

    def on_malloc(self, allocator, address: int, payload: int) -> None:
        for index, spec, event in self._firing("malloc"):
            if spec.kind != "alloc.header":
                continue
            bogus = 16 * self._rng(index, event).randrange(1, 9)
            # Smash both views of the metadata: the in-memory size word
            # and the allocator's own live-size record, so the lie
            # propagates into free-list coalescing like a real heap
            # metadata attack.
            allocator.memory.write_int(address - 16, bogus, 8)
            allocator.live[address] = bogus
            self._record(
                index,
                "alloc.header",
                event,
                f"{allocator.name} addr={address:#x} size={payload}->{bogus}",
            )

    def on_dfi_setdef(self, address: int, size: int, def_id: int) -> int:
        for index, spec, event in self._firing("setdef"):
            if spec.kind != "dfi.shadow":
                continue
            bogus = _BOGUS_DFI_WRITER + index
            self._record(
                index, "dfi.shadow", event, f"addr={address:#x} def={def_id}->{bogus}"
            )
            def_id = bogus
        return def_id

    # -- cache hooks ----------------------------------------------------------

    def on_cache_load(self, key: str, entry: Dict[str, Any]) -> Dict[str, Any]:
        for index, spec, event in self._firing("cache.load"):
            if spec.kind != "cache.corrupt":
                continue
            payload = entry.get("payload")
            if isinstance(payload, dict) and payload.get("module"):
                module_text = payload["module"]
                pos = self._rng(index, event).randrange(len(module_text))
                corrupted = (
                    module_text[:pos]
                    + chr(ord(module_text[pos]) ^ 1)
                    + module_text[pos + 1 :]
                )
                entry = dict(entry)
                entry["payload"] = dict(payload, module=corrupted)
                self._record(
                    index, "cache.corrupt", event, f"key={key[:12]} pos={pos}"
                )
        return entry

    def on_cache_store(self, key: str, text: str) -> str:
        for index, spec, event in self._firing("cache.store"):
            if spec.kind == "cache.truncate":
                keep = self._rng(index, event).randrange(1, max(2, len(text) // 2))
                text = text[:keep]
                self._record(
                    index, "cache.truncate", event, f"key={key[:12]} keep={keep}"
                )
            elif spec.kind == "cache.oserror":
                self._record(index, "cache.oserror", event, f"key={key[:12]}")
                raise OSError(28, "injected disk failure (fault plan)")
        return text
