"""Attack-campaign fuzzer: mutate adversaries, matrix the defenses.

The scenario suite (:mod:`repro.attacks.scenarios`) replays the paper's
fixed exploit listings; this module stress-tests the defense *contract*
under whole families of adversaries derived from them.  A campaign is
seeded and fully deterministic: every mutant is derived from
``Random(f"{seed}:{family}:{index}")``, every armed fault from the PR 3
:class:`~repro.robustness.faults.FaultPlan` machinery, and the
artifacts (coverage matrix, bypass manifest) contain no wall-clock
state -- two runs with the same seed and budget are byte-identical.

Attack families
---------------

Each family wraps one victim scenario.  The six paper families mutate
the exploit payload and its injection site; the three related-work
families additionally arm a family-specific fault channel:

===============  =========================================================
family           adversary
===============  =========================================================
``pac_reuse``    signed-pointer reuse/substitution (PACStack): an armed
                 ``pac.reuse`` fault captures the Nth signed value and
                 replays it at a later authentication, on top of the
                 payload that splices signed slots
``call_bend``    indirect-call operand corruption: the payload bends the
                 dispatch selector; injection-site timing is mutated
                 across the router's three input reads
``heap_cross``   cross-heap-section confusion: an armed ``heap.cross``
                 fault misroutes the Nth isolated allocation into the
                 shared arena, on top of the adjacent-chunk overflow
(others)         the paper's listings under payload/site mutation
===============  =========================================================

Outcome taxonomy
----------------

``trapped``
    a defense trap fired (``pac_trap`` / ``canary_trap`` / ``dfi_trap``
    / ``section_trap``).
``detected``
    the adversary acted but was defeated without a trap: the run ended
    in a fault / OOM / step limit, or ran to completion without
    reaching the attack goal (isolation, divergence, absorbed payload).
``bypassed``
    the run completed OK and the scenario's success marker appeared --
    the defense was defeated.
``crashed``
    an uncaught Python exception: an interpreter/compiler bug, bucketed
    by triage fingerprint.
``missed``
    neither the payload nor the armed fault ever fired (mutated
    injection site out of range); proves nothing about the defense.

Every mutant runs under all four schemes and all three compiled
interpreter tiers (decoded / block / trace); tier disagreement is
recorded as a contract violation.  Every ``bypassed`` cell is bucketed,
and one exemplar per bucket is auto-minimized with the ddmin reducer to
a minimal still-bypassing victim source.

The defense contract asserted by :meth:`CampaignReport.contract_violations`
is scoped to the three related-work families: any mutant of those that
bypasses vanilla must be trapped or detected by **both** pythia and dfi.
(The paper families have documented blind spots -- e.g. DFI's
field-insensitivity on ``proftpd_leak`` -- that the scenario matrix
already pins down.)
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..attacks.controller import AttackController
from ..attacks.scenarios import Scenario, build_scenarios
from ..core.config import SCHEMES
from ..core.framework import protect
from ..frontend.driver import compile_source
from ..hardware.cpu import CPU
from ..observability import current_tracer, get_event_log, get_metrics
from .faults import FaultInjector, FaultPlan, FaultSpec
from .reduce import reduce_source
from .triage import CrashRecord, TriageReport, record_crash, triage

#: Interpreter tiers every mutant is executed under; the first is the
#: canonical one whose result is classified (the others must agree).
TIERS = ("decoded", "block", "trace")

#: Family -> fault kind armed alongside the payload.  Only the
#: related-work families carry a fault channel; ``call.retarget`` is a
#: chaos-substrate probe, not a data attack, so ``call_bend`` bends the
#: dispatch *operand* through its payload instead.
FAMILY_FAULTS: Dict[str, str] = {
    "pac_reuse": "pac.reuse",
    "heap_cross": "heap.cross",
}

#: The three related-work families the defense contract is scoped to.
NEW_FAMILIES = ("pac_reuse", "call_bend", "heap_cross")

OUTCOMES = ("trapped", "detected", "bypassed", "crashed", "missed")

#: ddmin budget per bypass-bucket exemplar: predicates compile and run
#: the candidate, so the cap bounds campaign latency, not correctness.
REDUCE_MAX_TESTS = 200

_PAYLOAD_OPS = (
    "keep",
    "keep",  # weighted: the unmutated exploit stays common
    "grow",
    "shrink",
    "flip",
    "value",
    "spray",
)


@dataclass(frozen=True)
class Mutant:
    """One deterministic point in the mutation space.

    All randomness is resolved at construction (from the campaign
    seed), never at payload-render time, so the same mutant delivers
    byte-identical payloads under every scheme and tier.
    """

    family: str
    index: int
    payload_op: str
    #: operand of the payload op (pad bytes, bit position, spray length)
    amount: int
    #: planted 64-bit value for the ``value`` op
    planted: int
    #: which occurrence of the input channel the payload fires at
    occurrence: int
    #: trigger of the armed family fault (unused for fault-free families)
    trigger: int

    @property
    def name(self) -> str:
        return f"{self.family}[{self.index}]"

    def describe(self) -> str:
        return (
            f"{self.name} op={self.payload_op}/{self.amount} "
            f"occ={self.occurrence} trigger={self.trigger}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "index": self.index,
            "payload_op": self.payload_op,
            "amount": self.amount,
            "planted": self.planted,
            "occurrence": self.occurrence,
            "trigger": self.trigger,
        }


def make_mutant(seed: int, family: str, index: int) -> Mutant:
    """Derive mutant ``index`` of ``family`` from the campaign seed.

    Index 0 is pinned to the scenario's documented exploit verbatim
    (no payload op, canonical injection site and trigger), so every
    campaign -- whatever its seed -- contains the baseline attack and
    the vanilla-bypass anchor the defense contract reasons from.
    """
    if index == 0:
        return Mutant(
            family=family,
            index=0,
            payload_op="keep",
            amount=0,
            planted=0,
            occurrence=1,
            trigger=1,
        )
    rng = random.Random(f"{seed}:{family}:{index}")
    op = rng.choice(_PAYLOAD_OPS)
    amount = {
        "keep": 0,
        "grow": rng.randrange(1, 17),
        "shrink": rng.randrange(1, 9),
        "flip": rng.randrange(0, 512),
        "value": 0,
        "spray": rng.randrange(8, 97),
    }[op]
    planted = rng.randrange(2, 1 << 31) if op == "value" else 0
    occurrence = rng.randrange(1, 4) if rng.random() < 0.25 else 1
    trigger = rng.randrange(1, 4)
    return Mutant(
        family=family,
        index=index,
        payload_op=op,
        amount=amount,
        planted=planted,
        occurrence=occurrence,
        trigger=trigger,
    )


def mutate_payload(data: bytes, mutant: Mutant) -> bytes:
    """Apply the mutant's byte-level operator to a rendered payload."""
    op, amount = mutant.payload_op, mutant.amount
    if op == "grow":
        return data + b"A" * amount
    if op == "shrink":
        return data[: max(1, len(data) - amount)] if data else data
    if op == "flip":
        if not data:
            return data
        bit = amount % (len(data) * 8)
        flipped = bytearray(data)
        flipped[bit // 8] ^= 1 << (bit % 8)
        return bytes(flipped)
    if op == "value":
        planted = mutant.planted.to_bytes(8, "little")
        return data[:-8] + planted if len(data) >= 8 else planted
    if op == "spray":
        return b"A" * amount
    return data


def build_attack(scenario: Scenario, mutant: Mutant) -> AttackController:
    """The scenario's exploit, mutated: same channel, altered payload
    and injection site."""
    base = scenario.make_attack()
    controller = AttackController()
    for injection in base.injections:

        def payload(cpu, _injection=injection):
            return mutate_payload(_injection.render(cpu), mutant)

        controller.add(injection.channel, payload, occurrence=mutant.occurrence)
    return controller


def fault_plan_for(seed: int, mutant: Mutant) -> Optional[FaultPlan]:
    """The family fault armed for this mutant, if the family has one."""
    kind = FAMILY_FAULTS.get(mutant.family)
    if kind is None:
        return None
    plan_seed = random.Random(f"{seed}:{mutant.name}:plan").randrange(1 << 31)
    return FaultPlan(
        seed=plan_seed, specs=(FaultSpec(kind, trigger=mutant.trigger),)
    )


@dataclass(frozen=True)
class MutantRun:
    """One (mutant, scheme) cell: the classified canonical-tier result."""

    mutant: Mutant
    scheme: str
    outcome: str
    status: str
    detail: str
    #: fired fault/injection sites, in order (the determinism artifact)
    events: Tuple[str, ...]
    tier_mismatch: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "mutant": self.mutant.to_dict(),
            "scheme": self.scheme,
            "outcome": self.outcome,
            "status": self.status,
            "detail": self.detail,
            "events": list(self.events),
            "tier_mismatch": self.tier_mismatch,
        }


@dataclass(frozen=True)
class BypassRecord:
    """One defense bypass, with its minimized reproducer (exemplars)."""

    bucket: str
    mutant: Mutant
    scheme: str
    reduced_source: str = ""
    original_lines: int = 0
    reduced_lines: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "bucket": self.bucket,
            "mutant": self.mutant.to_dict(),
            "scheme": self.scheme,
            "reduced_source": self.reduced_source,
            "original_lines": self.original_lines,
            "reduced_lines": self.reduced_lines,
        }


@dataclass
class CampaignReport:
    """Everything one campaign produced."""

    seed: int
    budget: int
    families: Tuple[str, ...]
    runs: List[MutantRun] = field(default_factory=list)
    bypasses: List[BypassRecord] = field(default_factory=list)
    crashes: List[CrashRecord] = field(default_factory=list)

    @property
    def triage(self) -> TriageReport:
        return triage(self.crashes)

    def matrix(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """scheme -> family -> outcome -> count (all cells present)."""
        table: Dict[str, Dict[str, Dict[str, int]]] = {
            scheme: {
                family: {outcome: 0 for outcome in OUTCOMES}
                for family in sorted(self.families)
            }
            for scheme in SCHEMES
        }
        for run in self.runs:
            table[run.scheme][run.mutant.family][run.outcome] += 1
        return table

    def contract_violations(self) -> List[Dict[str, object]]:
        """Mutants of the related-work families that defeat the paper.

        A mutant that bypasses vanilla (the vulnerability is real) must
        be trapped or detected by both pythia and dfi; any tier
        disagreement is also a violation.
        """
        by_mutant: Dict[str, Dict[str, MutantRun]] = {}
        for run in self.runs:
            by_mutant.setdefault(run.mutant.name, {})[run.scheme] = run
        violations: List[Dict[str, object]] = []
        for name in sorted(by_mutant):
            cells = by_mutant[name]
            for run in cells.values():
                if run.tier_mismatch:
                    violations.append(
                        {
                            "mutant": name,
                            "scheme": run.scheme,
                            "reason": f"tier mismatch: {run.tier_mismatch}",
                        }
                    )
            family = next(iter(cells.values())).mutant.family
            if family not in NEW_FAMILIES:
                continue
            vanilla = cells.get("vanilla")
            if vanilla is None or vanilla.outcome != "bypassed":
                continue
            for scheme in ("pythia", "dfi"):
                run = cells.get(scheme)
                if run is not None and run.outcome not in (
                    "trapped",
                    "detected",
                ):
                    violations.append(
                        {
                            "mutant": name,
                            "scheme": scheme,
                            "reason": (
                                f"vanilla bypass not stopped: {run.outcome} "
                                f"({run.detail})"
                            ),
                        }
                    )
        return violations

    @property
    def ok(self) -> bool:
        return not self.contract_violations() and not self.crashes

    def bypass_buckets(self) -> Dict[str, List[BypassRecord]]:
        buckets: Dict[str, List[BypassRecord]] = {}
        for record in self.bypasses:
            buckets.setdefault(record.bucket, []).append(record)
        return buckets

    def matrix_manifest(self) -> Dict[str, object]:
        """The coverage-matrix artifact (JSON-able, wall-clock free)."""
        return {
            "schema": "repro-campaign-matrix-v1",
            "seed": self.seed,
            "budget": self.budget,
            "families": sorted(self.families),
            "schemes": list(SCHEMES),
            "outcomes": list(OUTCOMES),
            "matrix": self.matrix(),
        }

    def to_manifest(self) -> Dict[str, object]:
        """The full campaign manifest: runs, bypasses, crashes, verdict."""
        return {
            "schema": "repro-campaign-v1",
            "seed": self.seed,
            "budget": self.budget,
            "families": sorted(self.families),
            "matrix": self.matrix(),
            "runs": [run.to_dict() for run in self.runs],
            "bypasses": {
                bucket: [record.to_dict() for record in records]
                for bucket, records in sorted(self.bypass_buckets().items())
            },
            "triage": self.triage.to_dict(),
            "violations": self.contract_violations(),
            "ok": self.ok,
        }

    def render_matrix(self) -> List[str]:
        """The human-readable coverage table."""
        families = sorted(self.families)
        matrix = self.matrix()
        width = max([len("family")] + [len(f) for f in families]) + 2
        header = "family".ljust(width) + "".join(
            scheme.center(18) for scheme in SCHEMES
        )
        lines = [header, "-" * len(header)]
        for family in families:
            cells = []
            for scheme in SCHEMES:
                counts = matrix[scheme][family]
                cells.append(
                    (
                        f"T{counts['trapped']} D{counts['detected']} "
                        f"B{counts['bypassed']} C{counts['crashed']} "
                        f"M{counts['missed']}"
                    ).center(18)
                )
            lines.append(family.ljust(width) + "".join(cells))
        lines.append(
            "T=trapped D=detected B=bypassed C=crashed M=missed "
            "(counts per scheme x family)"
        )
        return lines


def _classify(
    scenario: Scenario, result, any_fired: bool
) -> Tuple[str, str]:
    if result.detected:
        return "trapped", f"defense trap {result.status} ({result.trap})"
    if result.ok and scenario.success_marker in result.output:
        return "bypassed", "attack goal reached"
    if not any_fired:
        return "missed", "neither payload nor fault ever fired"
    if result.ok:
        return "detected", "ran clean; attack goal not reached"
    return "detected", f"defeated without a trap: {result.status} ({result.trap})"


def _run_one(
    scenario: Scenario,
    module,
    mutant: Mutant,
    plan: Optional[FaultPlan],
    seed: int,
    interpreter: str,
):
    """One execution: fresh controller and injector per tier run."""
    controller = build_attack(scenario, mutant)
    cpu = CPU(module, seed=seed, attack=controller, interpreter=interpreter)
    injector = None
    if plan is not None:
        injector = FaultInjector(plan)
        injector.arm(cpu)
    result = cpu.run(inputs=list(scenario.benign_inputs))
    events = list(controller.log)
    if injector is not None:
        events.extend(injector.event_log())
    fired = controller.any_fired or (injector is not None and injector.fired)
    return result, tuple(events), fired


def _bypass_predicate(
    scenario: Scenario, mutant: Mutant, scheme: str, seed: int
) -> Callable[[str], bool]:
    """Candidate source still bypasses ``scheme`` under this mutant."""

    def predicate(candidate: str) -> bool:
        try:
            module = compile_source(candidate, name=scenario.name)
            protected = protect(module, scheme=scheme).module
            controller = build_attack(scenario, mutant)
            cpu = CPU(protected, seed=seed, attack=controller)
            result = cpu.run(inputs=list(scenario.benign_inputs))
        except Exception:
            return False
        return result.ok and scenario.success_marker in result.output

    return predicate


def run_campaign(
    seed: int = 2024,
    budget: int = 200,
    families: Optional[Sequence[str]] = None,
    reduce_bypasses: bool = True,
) -> CampaignReport:
    """Run a full campaign: ``budget`` mutants spread over ``families``.

    Each mutant executes under every scheme and every compiled tier.
    The block and trace tiers must agree with the decoded tier on
    status, output, and fired sites; disagreement lands in
    :meth:`CampaignReport.contract_violations`.
    """
    scenarios = build_scenarios()
    if families is None:
        family_names = tuple(sorted(scenarios))
    else:
        family_names = tuple(families)
        for name in family_names:
            if name not in scenarios:
                raise ValueError(
                    f"unknown attack family {name!r}; "
                    f"expected one of {tuple(sorted(scenarios))}"
                )
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    per_family = max(1, budget // len(family_names))
    extra = max(0, budget - per_family * len(family_names))

    report = CampaignReport(seed=seed, budget=budget, families=family_names)
    tracer = current_tracer()
    metrics = get_metrics()
    event_log = get_event_log()
    reduced_buckets: set = set()

    for family_index, family in enumerate(sorted(family_names)):
        scenario = scenarios[family]
        count = per_family + (1 if family_index < extra else 0)
        base_module = scenario.compile()
        protections = {
            scheme: protect(base_module, scheme=scheme).module
            for scheme in SCHEMES
        }
        with tracer.span(f"campaign:{family}", "campaign", mutants=count):
            for index in range(count):
                mutant = make_mutant(seed, family, index)
                plan = fault_plan_for(seed, mutant)
                metrics.inc("campaign.mutants")
                for scheme in SCHEMES:
                    run, crash = _run_mutant_cell(
                        scenario,
                        protections[scheme],
                        mutant,
                        plan,
                        seed,
                        scheme,
                    )
                    report.runs.append(run)
                    metrics.inc(f"campaign.outcome.{run.outcome}")
                    metrics.inc(f"campaign.family.{family}.{run.outcome}")
                    if run.outcome in ("trapped", "detected"):
                        event_log.emit(
                            "trap",
                            scheme=scheme,
                            status=run.status,
                            family=family,
                            mutant=mutant.name,
                        )
                    if crash is not None:
                        report.crashes.append(crash)
                    if run.outcome == "bypassed":
                        tracer.instant(
                            "bypass",
                            "campaign",
                            mutant=mutant.name,
                            scheme=scheme,
                        )
                        record = _record_bypass(
                            scenario,
                            mutant,
                            scheme,
                            seed,
                            reduce_bypasses,
                            reduced_buckets,
                        )
                        report.bypasses.append(record)
    return report


def _run_mutant_cell(
    scenario: Scenario,
    module,
    mutant: Mutant,
    plan: Optional[FaultPlan],
    seed: int,
    scheme: str,
) -> Tuple[MutantRun, Optional[CrashRecord]]:
    """Run one (mutant, scheme) under all tiers and classify."""
    results = {}
    try:
        for tier in TIERS:
            results[tier] = _run_one(
                scenario, module, mutant, plan, seed, tier
            )
    except Exception as exc:  # an interpreter/compiler bug: triage it
        crash = record_crash(f"campaign:{mutant.name}:{scheme}", exc)
        return (
            MutantRun(
                mutant=mutant,
                scheme=scheme,
                outcome="crashed",
                status="crash",
                detail=f"uncaught {crash.exc_type}: {crash.message}",
                events=(),
            ),
            crash,
        )
    canonical_result, events, fired = results["decoded"]
    mismatch = ""
    for tier in TIERS[1:]:
        other_result, other_events, _ = results[tier]
        if (
            other_result.status != canonical_result.status
            or other_result.output != canonical_result.output
            or other_events != events
        ):
            mismatch = (
                f"{tier}: {other_result.status} vs "
                f"decoded: {canonical_result.status}"
            )
            break
    outcome, detail = _classify(scenario, canonical_result, fired)
    return (
        MutantRun(
            mutant=mutant,
            scheme=scheme,
            outcome=outcome,
            status=canonical_result.status,
            detail=detail,
            events=events,
            tier_mismatch=mismatch,
        ),
        None,
    )


def _record_bypass(
    scenario: Scenario,
    mutant: Mutant,
    scheme: str,
    seed: int,
    reduce_bypasses: bool,
    reduced_buckets: set,
) -> BypassRecord:
    """Bucket a bypass; ddmin-minimize the first exemplar per bucket."""
    bucket = f"{scenario.name}:{scheme}:bypass"
    reduced_source = ""
    original_lines = reduced_lines = 0
    if reduce_bypasses and bucket not in reduced_buckets:
        reduced_buckets.add(bucket)
        predicate = _bypass_predicate(scenario, mutant, scheme, seed)
        original = scenario.source
        original_lines = sum(
            1 for line in original.splitlines() if line.strip()
        )
        try:
            reduced_source = reduce_source(
                original, predicate, max_tests=REDUCE_MAX_TESTS
            )
            reduced_lines = sum(
                1 for line in reduced_source.splitlines() if line.strip()
            )
        except ValueError:
            # The bypass does not reproduce outside the tier matrix
            # (it needed an armed fault); keep the unreduced source.
            reduced_source = original
            reduced_lines = original_lines
    return BypassRecord(
        bucket=bucket,
        mutant=mutant,
        scheme=scheme,
        reduced_source=reduced_source,
        original_lines=original_lines,
        reduced_lines=reduced_lines,
    )


def write_matrix(report: CampaignReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.matrix_manifest(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_manifest(report: CampaignReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_manifest(), handle, indent=2, sort_keys=True)
        handle.write("\n")
