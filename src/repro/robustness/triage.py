"""Crash triage: bucket failures by exception fingerprint.

A fleet of chaos runs (or a ``--keep-going`` suite) produces many raw
failures; most are the *same* bug hit from different tasks.  The triage
pipeline collapses them: every crash is reduced to a **fingerprint** --
the exception type plus a stable stack signature built from the
function names of the frames inside this package.  Line numbers and
messages are deliberately excluded (addresses and counters vary run to
run; function names survive cosmetic edits), so two crashes with the
same fingerprint are the same bucket and one of them is enough to
debug.

This module is stdlib-only and imports nothing from the rest of the
package: both :mod:`repro.perf.runner` (cross-process failure reports)
and :mod:`repro.robustness.chaos` depend on it.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

#: Frames kept in a stack signature (innermost last).
MAX_FRAMES = 8

_PACKAGE_MARKER = f"{os.sep}repro{os.sep}"


def repro_frames(exc: BaseException) -> List[str]:
    """Function names of the traceback frames inside this package.

    Frames from the interpreter, pytest, or the standard library are
    noise for bucketing purposes and are dropped.
    """
    summary = traceback.extract_tb(exc.__traceback__)
    return [frame.name for frame in summary if _PACKAGE_MARKER in frame.filename]


def fingerprint_from_frames(exc_type: str, frames: Sequence[str]) -> str:
    """Build a fingerprint from a pre-extracted (picklable) stack.

    The suite runner's worker processes send ``(exc_type, frames)``
    across the pipe instead of exception objects; the parent calls this
    to get the same fingerprint :func:`crash_fingerprint` would.
    """
    return f"{exc_type}|" + ">".join(list(frames)[-MAX_FRAMES:])


def crash_fingerprint(exc: BaseException) -> str:
    """The triage fingerprint of one exception: type + stack signature."""
    return fingerprint_from_frames(type(exc).__name__, repro_frames(exc))


@dataclass(frozen=True)
class CrashRecord:
    """One observed crash, ready for bucketing."""

    task: str
    exc_type: str
    message: str
    fingerprint: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "task": self.task,
            "exc_type": self.exc_type,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def record_crash(task: str, exc: BaseException) -> CrashRecord:
    """Capture ``exc`` (raised while running ``task``) as a record."""
    return CrashRecord(
        task=task,
        exc_type=type(exc).__name__,
        message=str(exc),
        fingerprint=crash_fingerprint(exc),
    )


@dataclass
class TriageReport:
    """Crash records grouped by fingerprint."""

    buckets: Dict[str, List[CrashRecord]] = field(default_factory=dict)

    def add(self, record: CrashRecord) -> None:
        self.buckets.setdefault(record.fingerprint, []).append(record)

    @property
    def total_crashes(self) -> int:
        return sum(len(records) for records in self.buckets.values())

    def counts(self) -> Dict[str, int]:
        """Bucket sizes, largest first (ties broken by fingerprint)."""
        return dict(
            sorted(
                ((fp, len(records)) for fp, records in self.buckets.items()),
                key=lambda item: (-item[1], item[0]),
            )
        )

    def exemplar(self, fingerprint: str) -> CrashRecord:
        """One representative crash of a bucket (the first observed)."""
        return self.buckets[fingerprint][0]

    def summary_lines(self) -> List[str]:
        lines = []
        for fingerprint, count in self.counts().items():
            record = self.exemplar(fingerprint)
            lines.append(
                f"{count:4d}x {record.exc_type}: {record.message}"
                f"  [{fingerprint}]  e.g. task {record.task}"
            )
        return lines

    def to_dict(self) -> Dict[str, List[Dict[str, str]]]:
        return {
            fingerprint: [record.to_dict() for record in records]
            for fingerprint, records in sorted(self.buckets.items())
        }


def triage(records: Iterable[CrashRecord]) -> TriageReport:
    """Bucket an iterable of crash records by fingerprint."""
    report = TriageReport()
    for record in records:
        report.add(record)
    return report


def triage_exceptions(pairs: Iterable[Tuple[str, BaseException]]) -> TriageReport:
    """Convenience: fingerprint and bucket raw ``(task, exc)`` pairs."""
    return triage(record_crash(task, exc) for task, exc in pairs)
