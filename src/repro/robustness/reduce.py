"""Delta-debugging minimizer for crashing MiniC sources.

When a chaos run (or a fuzzer, or a user) finds a MiniC program that
crashes the compiler or the interpreter, the full program is rarely the
smallest one that does.  :func:`reduce_source` shrinks it with the
classic ddmin algorithm [Zeller & Hildebrandt 2002]: split the line
list into chunks, try dropping each chunk (and each complement), keep
any candidate that still reproduces the crash, and double the
granularity when nothing sticks.

"Reproduces" is a caller-supplied predicate over source text.  The
usual predicate is *same triage fingerprint*:
:func:`make_crash_predicate` runs the original source, captures its
crash signature (see :mod:`repro.robustness.triage`), and accepts a
candidate only when it fails the same way -- candidates that merely
fail to parse after a bad cut are rejected and ddmin moves on.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from .triage import crash_fingerprint

T = TypeVar("T")

#: Hard cap on predicate evaluations per reduction, so a pathological
#: predicate cannot run ddmin forever.
MAX_TESTS = 2000


def ddmin(
    items: Sequence[T],
    predicate: Callable[[List[T]], bool],
    max_tests: int = MAX_TESTS,
) -> List[T]:
    """Minimize ``items`` while ``predicate`` holds.

    Returns a 1-minimal subsequence: removing any single remaining item
    makes the predicate fail (up to the test budget).  The predicate
    must hold for the full input; that is asserted up front because a
    non-reproducing input would silently "minimize" to garbage.
    """
    items = list(items)
    if not predicate(items):
        raise ValueError("predicate does not hold for the unreduced input")
    tests = 0
    granularity = 2
    while len(items) >= 2 and tests < max_tests:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items) and tests < max_tests:
            candidate = items[:start] + items[start + chunk :]
            tests += 1
            if candidate and predicate(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # stay at the same start: the next chunk shifted in
            else:
                start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def reduce_source(
    source: str,
    predicate: Callable[[str], bool],
    max_tests: int = MAX_TESTS,
) -> str:
    """Shrink a MiniC source to a minimal crash reproducer.

    Operates on lines; blank lines are dropped eagerly since they never
    affect compilation.  The returned source still satisfies the
    predicate.
    """
    lines = [line for line in source.splitlines() if line.strip()]

    def line_predicate(candidate: List[str]) -> bool:
        return predicate("\n".join(candidate) + "\n")

    if not line_predicate(lines):
        # Whitespace mattered after all (string literals spanning
        # lines do not exist in MiniC, but be conservative).
        lines = source.splitlines()
    reduced = ddmin(lines, line_predicate, max_tests=max_tests)
    return "\n".join(reduced) + "\n"


def crash_signature(
    source: str,
    inputs: Sequence[bytes] = (),
    seed: int = 2024,
    scheme: Optional[str] = None,
) -> Optional[str]:
    """The failure signature of compiling + running ``source``, if any.

    Three failure layers, in order:

    - front-end / verifier / protection errors -> the exception's
      triage fingerprint;
    - an interpreter-level trap (memory fault, security trap, step
      limit) -> ``status:<status>|<trap type>``;
    - an uncaught interpreter bug -> its triage fingerprint.

    A clean run returns ``None``.  Imports are local so this module
    stays importable without dragging in the whole compile pipeline.
    """
    from ..frontend import compile_source
    from ..hardware.cpu import CPU

    try:
        module = compile_source(source)
        if scheme is not None:
            from ..core.framework import protect

            module = protect(module, scheme=scheme).module
        result = CPU(module, seed=seed).run(inputs=list(inputs))
    except Exception as exc:
        return crash_fingerprint(exc)
    if result.ok:
        return None
    return f"status:{result.status}|{type(result.trap).__name__}"


def make_crash_predicate(
    source: str,
    inputs: Sequence[bytes] = (),
    seed: int = 2024,
    scheme: Optional[str] = None,
) -> Tuple[Callable[[str], bool], Optional[str]]:
    """Build a same-signature predicate from an original crasher.

    Returns ``(predicate, signature)``; ``signature`` is ``None`` when
    the original source does not crash (then there is nothing to
    reduce and the predicate always returns ``False``).
    """
    signature = crash_signature(source, inputs=inputs, seed=seed, scheme=scheme)

    def predicate(candidate: str) -> bool:
        if signature is None:
            return False
        return (
            crash_signature(candidate, inputs=inputs, seed=seed, scheme=scheme)
            == signature
        )

    return predicate, signature
