"""repro.robustness -- failure as a first-class, testable input.

- :mod:`~repro.robustness.faults`: deterministic, seeded fault
  injection into the simulated hardware and the compilation cache;
- :mod:`~repro.robustness.triage`: crash bucketing by exception
  fingerprint;
- :mod:`~repro.robustness.reduce`: delta-debugging minimizer for
  crashing MiniC sources;
- :mod:`~repro.robustness.chaos`: the harness asserting the defense
  contract under injected faults (``python -m repro chaos``);
- :mod:`~repro.robustness.campaign`: the seeded attack-campaign fuzzer
  producing the defense-coverage matrix (``python -m repro campaign``).

``chaos``, ``campaign``, and ``reduce`` are loaded lazily (PEP 562):
``chaos`` pulls in the perf layer, whose suite runner in turn imports
:mod:`~repro.robustness.triage` from here -- eager imports would tie
the two packages into a cycle -- and ``campaign`` pulls in the whole
attacks/compile pipeline.
"""

from __future__ import annotations

from .faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    smoke_plan,
)
from .triage import (
    CrashRecord,
    TriageReport,
    crash_fingerprint,
    fingerprint_from_frames,
    record_crash,
    triage,
    triage_exceptions,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "smoke_plan",
    "CrashRecord",
    "TriageReport",
    "crash_fingerprint",
    "fingerprint_from_frames",
    "record_crash",
    "triage",
    "triage_exceptions",
    # lazy (PEP 562): chaos / campaign / reduce submodule attributes
    "ChaosCase",
    "ChaosReport",
    "run_chaos",
    "CampaignReport",
    "Mutant",
    "MutantRun",
    "run_campaign",
    "ddmin",
    "make_crash_predicate",
    "reduce_source",
]

_LAZY = {
    "ChaosCase": "chaos",
    "ChaosReport": "chaos",
    "run_chaos": "chaos",
    "CampaignReport": "campaign",
    "Mutant": "campaign",
    "MutantRun": "campaign",
    "run_campaign": "campaign",
    "ddmin": "reduce",
    "make_crash_predicate": "reduce",
    "reduce_source": "reduce",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
