"""Classic scalar optimizations: constant folding, DCE, CFG cleanup.

The paper compiles its baselines at ``-O3``; these passes give the
vanilla baseline the obvious optimizations so the defense overheads are
not measured against artificially slow code:

- :class:`ConstantFold` -- folds integer arithmetic, comparisons,
  casts and selects over constants, and turns constant conditional
  branches into jumps;
- :class:`DeadCodeElimination` -- removes side-effect-free
  instructions with no uses and prunes unreachable blocks (fixing phi
  incomings).

Both passes are semantics-preserving (verified by differential tests)
and idempotent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.cfg import reachable_blocks
from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CondBranch,
    DfiChkDef,
    DfiSetDef,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    PacAuth,
    PacSign,
    Phi,
    Ret,
    SecAssert,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import I1, IntType
from ..ir.values import Constant, UndefValue, Value

_MASK64 = (1 << 64) - 1


def _fold_binop(inst: BinOp) -> Optional[int]:
    lhs, rhs = inst.lhs, inst.rhs
    if not (isinstance(lhs, Constant) and isinstance(rhs, Constant)):
        return None
    vtype = inst.type
    if not isinstance(vtype, IntType):
        return None
    a, b = lhs.value, rhs.value
    signed = vtype.to_signed
    op = inst.op
    if op == "add":
        return vtype.wrap(a + b)
    if op == "sub":
        return vtype.wrap(a - b)
    if op == "mul":
        return vtype.wrap(a * b)
    if op == "and":
        return vtype.wrap(a & b)
    if op == "or":
        return vtype.wrap(a | b)
    if op == "xor":
        return vtype.wrap(a ^ b)
    if op == "shl":
        return vtype.wrap(a << (b % vtype.bits))
    if op == "lshr":
        return vtype.wrap(a >> (b % vtype.bits))
    if op == "ashr":
        return vtype.wrap(signed(a) >> (b % vtype.bits))
    if op == "sdiv" and signed(b) != 0:
        return vtype.wrap(int(signed(a) / signed(b)))
    if op == "srem" and signed(b) != 0:
        sa, sb = signed(a), signed(b)
        return vtype.wrap(sa - int(sa / sb) * sb)
    return None


def _fold_icmp(inst: ICmp) -> Optional[int]:
    lhs, rhs = inst.lhs, inst.rhs
    if not (isinstance(lhs, Constant) and isinstance(rhs, Constant)):
        return None
    vtype = lhs.type
    a, b = lhs.value, rhs.value
    if isinstance(vtype, IntType):
        sa, sb = vtype.to_signed(a), vtype.to_signed(b)
    else:
        sa, sb = a, b
    table = {
        "eq": a == b,
        "ne": a != b,
        "slt": sa < sb,
        "sle": sa <= sb,
        "sgt": sa > sb,
        "sge": sa >= sb,
        "ult": a < b,
        "ule": a <= b,
        "ugt": a > b,
        "uge": a >= b,
    }
    return 1 if table[inst.predicate] else 0


def _fold_cast(inst: Cast) -> Optional[int]:
    value = inst.value
    if not isinstance(value, Constant):
        return None
    if inst.op in ("trunc", "zext", "bitcast", "ptrtoint", "inttoptr"):
        raw = value.value
    elif inst.op == "sext":
        src = value.type
        raw = src.to_signed(value.value) if isinstance(src, IntType) else value.value
    else:
        return None
    if isinstance(inst.type, IntType):
        return inst.type.wrap(raw)
    return raw & _MASK64


class ConstantFold:
    """Fold constant expressions; turn constant branches into jumps."""

    name = "constfold"

    def run(self, module: Module) -> Dict[str, object]:
        folded = branches = 0
        for function in module.defined_functions():
            f, b = self._run_function(function)
            folded += f
            branches += b
        return {"folded": folded, "branches_resolved": branches}

    def _run_function(self, function: Function) -> "tuple[int, int]":
        folded = branches = 0
        changed = True
        while changed:
            changed = False
            for block in function.blocks:
                for inst in list(block.instructions):
                    replacement = self._fold(inst)
                    if replacement is not None:
                        inst.replace_all_uses_with(replacement)
                        inst.erase_from_parent()
                        folded += 1
                        changed = True
            branches += self._resolve_branches(function)
        return folded, branches

    @staticmethod
    def _fold(inst: Instruction) -> Optional[Constant]:
        result: Optional[int] = None
        if isinstance(inst, BinOp):
            result = _fold_binop(inst)
        elif isinstance(inst, ICmp):
            result = _fold_icmp(inst)
        elif isinstance(inst, Cast):
            result = _fold_cast(inst)
        elif isinstance(inst, Select) and isinstance(inst.condition, Constant):
            chosen = inst.true_value if inst.condition.value & 1 else inst.false_value
            if isinstance(chosen, Constant):
                return chosen
            return None
        if result is None:
            return None
        return Constant(inst.type, result)

    @staticmethod
    def _resolve_branches(function: Function) -> int:
        resolved = 0
        for block in function.blocks:
            term = block.terminator
            if not isinstance(term, CondBranch):
                continue
            if not isinstance(term.condition, Constant):
                continue
            taken = term.true_block if term.condition.value & 1 else term.false_block
            dropped = term.false_block if taken is term.true_block else term.true_block
            term.erase_from_parent()
            block.append(Jump(taken))
            if dropped is not taken:
                _drop_phi_incoming(dropped, block)
            resolved += 1
        return resolved


def _drop_phi_incoming(block: BasicBlock, pred: BasicBlock) -> None:
    for phi in block.phis:
        for index, incoming in enumerate(list(phi.incoming_blocks)):
            if incoming is pred:
                operand = phi.operands[index]
                operand.remove_use(phi, index)
                # rebuild operand/uses bookkeeping after removal
                remaining = [
                    (value, blk)
                    for i, (value, blk) in enumerate(phi.incomings)
                    if i != index
                ]
                phi.drop_all_operands()
                phi.incoming_blocks = []
                for value, blk in remaining:
                    phi.add_incoming(value, blk)
                break


#: instruction classes that must never be removed even when unused
_SIDE_EFFECTS = (
    Store,
    Call,
    PacAuth,  # traps on tampering: removing it removes the defense
    SecAssert,
    DfiSetDef,
    DfiChkDef,
)


class DeadCodeElimination:
    """Remove unused pure instructions and unreachable blocks."""

    name = "dce"

    def run(self, module: Module) -> Dict[str, object]:
        removed_insts = removed_blocks = 0
        for function in module.defined_functions():
            removed_blocks += self._prune_unreachable(function)
            removed_insts += self._remove_dead(function)
        return {
            "removed_instructions": removed_insts,
            "removed_blocks": removed_blocks,
        }

    @staticmethod
    def _prune_unreachable(function: Function) -> int:
        live = set(reachable_blocks(function))
        dead = [b for b in function.blocks if b not in live]
        for block in dead:
            for succ in set(block.successors):
                if succ in live:
                    _remove_phi_entries(succ, block)
            for inst in list(block.instructions):
                inst.replace_all_uses_with(UndefValue(inst.type))
                inst.erase_from_parent()
            function.blocks.remove(block)
        return len(dead)

    @staticmethod
    def _remove_dead(function: Function) -> int:
        removed = 0
        changed = True
        while changed:
            changed = False
            for block in function.blocks:
                for inst in reversed(list(block.instructions)):
                    if inst.is_terminator or isinstance(inst, _SIDE_EFFECTS):
                        continue
                    if inst.type.is_void:
                        continue
                    if inst.uses:
                        continue
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
        return removed


def _remove_phi_entries(block: BasicBlock, dead_pred: BasicBlock) -> None:
    for phi in block.phis:
        while dead_pred in phi.incoming_blocks:
            _drop_phi_incoming(block, dead_pred)


def optimize(module: Module) -> Dict[str, Dict[str, object]]:
    """Run the standard pipeline: fold -> DCE (to a fixpoint-ish)."""
    stats: Dict[str, Dict[str, object]] = {}
    stats["constfold"] = ConstantFold().run(module)
    stats["dce"] = DeadCodeElimination().run(module)
    return stats
