"""Complete Pointer Authentication -- the conservative baseline (§4.2).

CPA protects the *un-refined* vulnerable set (backward branch slices ∪
forward IC slices) with ARM-PA across the board:

- **64-bit scalar slots** (ints, pointers): every store signs the value
  with the slot address as modifier; every load authenticates before
  use.  Any external tampering of the slot (overflow bytes, pointer
  corruption) fails authentication at the next load.
- **Aggregates** (arrays, structs) and scalars that share ambiguous
  accesses with aggregates: a PA-signed *guard word* is placed
  immediately below the object in the frame.  A contiguous overflow
  that reaches the object from lower addresses necessarily crosses the
  guard, and the guard is authenticated before **every** read of the
  object -- IR loads and library reads alike.  This
  authenticate-on-every-use placement is what makes the conservative
  scheme cost ``1 + u_i`` extra instructions per variable (Eq. 1).
- **Heap objects**: the pointer slots that reference vulnerable heap
  allocations are scalars and are value-signed by the first rule, so a
  corrupted heap pointer fails authentication when reloaded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.alias import AliasAnalysis, MemObject
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.vulnerability import VulnerabilityReport
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Alloca, Call, Instruction, Load, Store
from ..ir.module import Module
from ..ir.types import I64, IntType, PointerType
from ..ir.values import GlobalVariable, Value
from .support import (
    ensure_declaration,
    is_scalar_object,
    library_read_sites,
    loads_touching,
    sign_scalar_slots,
    stores_touching,
)


class CompletePointerAuthentication:
    """The CPA module pass (Algorithm 2)."""

    name = "cpa"

    def __init__(self, report: Optional["VulnerabilityReport"] = None):
        self.report = report
        self.guard_allocas: Dict[MemObject, Alloca] = {}

    # -- set computation -------------------------------------------------------

    def _partition(
        self, report: VulnerabilityReport, alias: AliasAnalysis, module: Module
    ) -> Tuple[Set[MemObject], Set[MemObject]]:
        """Split the vulnerable set into value-signable scalars and
        guard-protected objects, demoting scalars with ambiguous
        accesses shared with non-signable objects."""
        vulnerable = report.cpa_variables
        sign_set = {
            o
            for o in vulnerable
            if o.kind in ("stack", "global") and is_scalar_object(o)
        }
        sign_set |= self._signable_wide_objects(module, alias, vulnerable)
        # Demote objects involved in ambiguous accesses: a store whose
        # points-to set is not a singleton has no well-defined object
        # modifier (and signing it could corrupt an unauthenticated
        # object's data).  The demoting sets are a property of the
        # module's accesses, not of ``sign_set``, so one scan collects
        # them and the fixpoint then iterates over sets alone.
        ambiguous = []
        for function in module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, (Store, Load)):
                    pts = alias.points_to(inst.pointer)
                    if len(pts) > 1:
                        ambiguous.append(pts)
        changed = True
        while changed:
            changed = False
            for pts in ambiguous:
                touched_signed = pts & sign_set
                if touched_signed:
                    sign_set -= touched_signed
                    changed = True
        guard_set = {
            o for o in vulnerable if o.kind == "stack" and o not in sign_set
        }
        return sign_set, guard_set

    @staticmethod
    def _signable_wide_objects(
        module: Module, alias: AliasAnalysis, vulnerable: Set[MemObject]
    ) -> Set[MemObject]:
        """Aggregates whose contents CPA can value-sign word-by-word.

        Heap allocations and word-element stack arrays qualify when
        every program access to them is a full 8-byte load/store and
        they are never handed to a library routine as a raw byte buffer
        -- then signing their words cannot corrupt byte-level data.
        This realises the paper's "data pointers are created for each
        non-pointer vulnerable variable" for word-grained aggregates.
        """
        from ..ir.instructions import Alloca
        from ..ir.types import ArrayType

        candidates = {o for o in vulnerable if o.kind == "heap"}
        for obj in vulnerable:
            if obj.kind != "stack" or not isinstance(obj.anchor, Alloca):
                continue
            atype = obj.anchor.allocated_type
            if isinstance(atype, ArrayType) and atype.element.size == 8:
                candidates.add(obj)
        if not candidates:
            return candidates
        for function in module.defined_functions():
            for inst in function.instructions():
                if isinstance(inst, Load):
                    hit = alias.points_to(inst.pointer) & candidates
                    if hit and inst.type.size != 8:
                        candidates -= hit
                elif isinstance(inst, Store):
                    hit = alias.points_to(inst.pointer) & candidates
                    if hit and inst.value.type.size != 8:
                        candidates -= hit
                elif isinstance(inst, Call) and inst.callee.is_declaration:
                    if inst.callee.name in ("malloc", "calloc", "free", "realloc"):
                        continue
                    for arg in inst.args:
                        if isinstance(arg.type, PointerType):
                            candidates -= alias.points_to(arg)
                if not candidates:
                    return candidates
        return candidates

    # -- pass entry point -------------------------------------------------------

    def run(self, module: Module) -> Dict[str, object]:
        if self.report is None:
            from ..core.vulnerability import VulnerabilityAnalysis

            self.report = VulnerabilityAnalysis(module).analyze()
        report = self.report
        alias = report.analysis.alias  # type: ignore[union-attr]
        ensure_declaration(module, "pythia_random")

        sign_set, guard_set = self._partition(report, alias, module)
        signs = auths = guards = 0

        for function in module.defined_functions():
            guards_local = self._install_guards(function, alias, guard_set)
            guards += len(guards_local)
            signs += len(guards_local)  # one sign per guard init
            auths += self._auth_guards_on_reads(function, alias, guards_local)
            s, a = sign_scalar_slots(function, alias, sign_set)
            signs += s
            auths += a
            signs += self._resign_after_channels(
                function, alias, sign_set, report.analysis.channels  # type: ignore[union-attr]
            )

        return {
            "vulnerable_variables": len(report.cpa_variables),
            "signed_scalars": len(sign_set),
            "guarded_objects": len(guard_set),
            "pa_sign_inserted": signs,
            "pa_auth_inserted": auths,
            "guard_words": guards,
        }

    # -- post-IC re-signing -----------------------------------------------------

    @staticmethod
    def _resign_after_channels(
        function: Function, alias: AliasAnalysis, sign_set: Set[MemObject], channels
    ) -> int:
        """Re-sign value-signed slots right after an input channel
        legitimately writes them (the channel stores raw bytes; without
        re-signing the next authenticated load would falsely trap)."""
        if not sign_set:
            return 0
        builder = IRBuilder()
        signs = 0
        from .support import object_modifier_id

        for site in channels.sites:
            if site.function is not function:
                continue
            for ptr in site.written_pointers:
                pointee = ptr.type.pointee  # type: ignore[union-attr]
                if pointee.size != 8:
                    continue
                pts = alias.points_to(ptr)
                if len(pts) != 1 or not (pts & sign_set):
                    continue
                (obj,) = pts
                builder.position_after(site.call)
                raw = builder.load(ptr)
                modifier = builder.const(I64, object_modifier_id(obj))
                signed = builder.pac_sign(raw, modifier)
                builder.store(signed, ptr)
                signs += 1
        return signs

    # -- guard words --------------------------------------------------------------

    def _install_guards(
        self, function: Function, alias: AliasAnalysis, guard_set: Set[MemObject]
    ) -> Dict[MemObject, Alloca]:
        """Insert a signed guard word immediately *below* each guarded
        object in the frame and initialise it at function entry."""
        local: Dict[MemObject, Alloca] = {}
        entry = function.entry_block
        for alloca in list(function.allocas()):
            obj = alias.object_for(alloca)
            if obj is None or obj not in guard_set or obj in self.guard_allocas:
                continue
            guard = Alloca(I64, name=function.unique_name("cpa.guard"))
            block = alloca.parent or entry
            block.insert_before(alloca, guard)
            local[obj] = guard
            self.guard_allocas[obj] = guard

        if not local:
            return local

        builder = IRBuilder(entry)
        # Initialise after the last alloca of the entry block.
        index = 0
        for i, inst in enumerate(entry.instructions):
            if isinstance(inst, Alloca):
                index = i + 1
        if index >= len(entry.instructions):
            builder.position_at_end(entry)
        else:
            builder.position_before(entry.instructions[index])
        random_fn = function.module.get_function("pythia_random")
        for obj, guard in local.items():
            value = builder.call(random_fn, [])
            modifier = builder.cast("ptrtoint", guard, I64)
            signed = builder.pac_sign(value, modifier)
            builder.store(signed, guard)
        return local

    def _auth_guards_on_reads(
        self,
        function: Function,
        alias: AliasAnalysis,
        guards: Dict[MemObject, Alloca],
    ) -> int:
        """Authenticate the guard before every read of a guarded object."""
        if not guards:
            return 0
        guarded = set(guards)
        auths = 0
        read_points: List[Tuple[Instruction, Set[MemObject]]] = []
        for load in loads_touching(function, alias, guarded):
            read_points.append((load, alias.points_to(load.pointer) & guarded))
        for call, arg in library_read_sites(function, alias, guarded):
            read_points.append((call, alias.points_to(arg) & guarded))

        builder = IRBuilder()
        instrumented: Set[Tuple[int, int]] = set()
        for anchor, objects in read_points:
            # Label order keeps guard-auth emission independent of
            # MemObject identity-hash set ordering (remap determinism).
            for obj in sorted(objects, key=lambda o: o.label):
                key = (id(anchor), id(obj))
                if key in instrumented:
                    continue
                instrumented.add(key)
                guard = guards[obj]
                builder.position_before(anchor)
                loaded = builder.load(guard)
                modifier = builder.cast("ptrtoint", guard, I64)
                builder.pac_auth(loaded, modifier)
                auths += 1
        return auths

