"""Pythia's stack defense: re-layout + ARM-PA canaries (Algorithm 3).

For every *refined* vulnerable stack variable the pass:

1. **Re-lays out the frame** -- non-vulnerable variables are placed at
   lower addresses, vulnerable variables at the overflow-exposed high
   end of the frame, each immediately followed by its canary slot.  An
   overflow escaping a vulnerable buffer therefore corrupts a canary
   before it can reach any other variable.
2. **Initialises the canary** at function entry: a fresh random value
   (library call), PA-signed with the canary slot address as modifier.
3. **Re-randomises before, and authenticates after, every input-channel
   use** of the variable.  Re-randomisation defeats byte-wise canary
   leaks (§4.4); the post-IC authentication is the detection point.
4. **Handles interprocedural overflows**: when a local vulnerable
   variable is passed (by pointer) into a callee that reaches an input
   channel, the canary is checked after the call site too -- the
   paper's "global pointer canary" mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.alias import AliasAnalysis, MemObject
from ..analysis.callgraph import CallGraph
from ..analysis.input_channels import InputChannelSite
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.vulnerability import VulnerabilityReport
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Alloca, Call, Instruction
from ..ir.module import Module
from ..ir.types import I64, PointerType
from .support import ensure_declaration, hoist_allocas


class StackProtectionPass:
    """Stack re-layout and canary instrumentation (Algorithm 3)."""

    name = "pythia-stack"

    def __init__(
        self,
        report: Optional["VulnerabilityReport"] = None,
        rerandomize: bool = True,
    ):
        self.report = report
        #: §4.4 re-randomisation before each IC use (ablation switch)
        self.rerandomize = rerandomize
        #: canary slot per protected object (for tests and metrics)
        self.canaries: Dict[MemObject, Alloca] = {}

    def run(self, module: Module) -> Dict[str, object]:
        if self.report is None:
            from ..core.vulnerability import VulnerabilityAnalysis

            self.report = VulnerabilityAnalysis(module).analyze()
        report = self.report
        analysis = report.analysis
        assert analysis is not None
        alias = analysis.alias
        channels = analysis.channels
        callgraph = analysis.callgraph
        ensure_declaration(module, "pythia_random")

        vulnerable = report.stack_vulnerable
        reach_cache: Dict[Function, Set[Function]] = {}
        stats = {"canaries": 0, "protected_objects": 0, "ic_checks": 0,
                 "interprocedural_checks": 0, "pa_sign_inserted": 0,
                 "pa_auth_inserted": 0}

        for function in module.defined_functions():
            local = self._local_vulnerable(function, alias, vulnerable)
            if not local:
                continue
            canaries = self._relayout_with_canaries(function, local)
            stats["canaries"] += len(canaries)
            stats["protected_objects"] += len(local)
            signs, current_signed, modifiers = self._init_canaries(
                function, canaries
            )
            stats["pa_sign_inserted"] += signs
            ic_checks, inter_checks, s, a = self._instrument_uses(
                function, alias, channels, callgraph, canaries, reach_cache,
                current_signed, modifiers,
            )
            stats["ic_checks"] += ic_checks
            stats["interprocedural_checks"] += inter_checks
            stats["pa_sign_inserted"] += s
            stats["pa_auth_inserted"] += a
        return stats

    # -- classification -----------------------------------------------------------

    @staticmethod
    def _local_vulnerable(
        function: Function, alias: AliasAnalysis, vulnerable: Set[MemObject]
    ) -> List[Tuple[Alloca, MemObject]]:
        local = []
        for alloca in function.allocas():
            obj = alias.object_for(alloca)
            if obj is not None and obj in vulnerable:
                local.append((alloca, obj))
        return local

    # -- re-layout -----------------------------------------------------------------

    def _relayout_with_canaries(
        self, function: Function, local: List[Tuple[Alloca, MemObject]]
    ) -> Dict[MemObject, Alloca]:
        vulnerable_allocas = {id(a) for a, _ in local}
        safe = [
            a for a in function.allocas() if id(a) not in vulnerable_allocas
        ]
        ordered: List[Alloca] = list(safe)
        canaries: Dict[MemObject, Alloca] = {}
        for alloca, obj in local:
            canary = Alloca(I64, name=function.unique_name("canary"))
            canary.parent = function.entry_block  # attached by hoist below
            ordered.append(alloca)
            ordered.append(canary)
            canaries[obj] = canary
            self.canaries[obj] = canary
        # hoist expects attached instructions; attach canaries first.
        entry = function.entry_block
        for canary in canaries.values():
            entry.insert(0, canary)
        hoist_allocas(function, ordered)
        return canaries

    # -- canary protocol ---------------------------------------------------------------

    def _init_canaries(
        self, function: Function, canaries: Dict[MemObject, Alloca]
    ) -> "Tuple[int, Dict[int, object], Dict[int, object]]":
        builder = self._builder_after_allocas(function)
        random_fn = function.module.get_function("pythia_random")
        signs = 0
        #: live *signed* canary value per slot (the check reference)
        current_signed: Dict[int, object] = {}
        #: hoisted modifier (slot address) per slot, computed once
        modifiers: Dict[int, object] = {}
        for canary in canaries.values():
            value = builder.call(random_fn, [])
            modifier = builder.cast("ptrtoint", canary, I64)
            signed = builder.pac_sign(value, modifier)
            builder.store(signed, canary)
            current_signed[id(canary)] = signed
            modifiers[id(canary)] = modifier
            signs += 1
        return signs, current_signed, modifiers

    @staticmethod
    def _builder_after_allocas(function: Function) -> IRBuilder:
        entry = function.entry_block
        index = 0
        for i, inst in enumerate(entry.instructions):
            if isinstance(inst, Alloca):
                index = i + 1
        builder = IRBuilder(entry)
        if index >= len(entry.instructions):
            builder.position_at_end(entry)
        else:
            builder.position_before(entry.instructions[index])
        return builder

    # -- IC use instrumentation ------------------------------------------------------------

    def _instrument_uses(
        self,
        function: Function,
        alias: AliasAnalysis,
        channels,
        callgraph: CallGraph,
        canaries: Dict[MemObject, Alloca],
        reach_cache: Dict[Function, Set[Function]],
        current_signed: Dict[int, object],
        modifiers: Dict[int, object],
    ) -> Tuple[int, int, int, int]:
        protected = set(canaries)
        random_fn = function.module.get_function("pythia_random")
        builder = IRBuilder()
        ic_checks = inter_checks = signs = auths = 0

        local_sites = {id(s.call): s for s in channels.sites if s.function is function}

        for inst in list(function.instructions()):
            if not isinstance(inst, Call):
                continue
            touched: Set[MemObject] = set()
            site = local_sites.get(id(inst))
            interprocedural = False
            if site is not None:
                for ptr in site.written_pointers:
                    touched |= alias.points_to(ptr) & protected
            elif not inst.callee.is_declaration:
                # A defined callee that may reach an IC writing our object.
                reachable = self._reachable_functions(
                    inst.callee, callgraph, reach_cache
                )
                candidate: Set[MemObject] = set()
                for arg in inst.args:
                    if isinstance(arg.type, PointerType):
                        candidate |= alias.points_to(arg) & protected
                if candidate and any(
                    s.function in reachable
                    and any(
                        alias.points_to(p) & candidate for p in s.written_pointers
                    )
                    for s in channels.sites
                ):
                    touched = candidate
                    interprocedural = True
            if not touched:
                continue

            # Label order, not set order: MemObjects hash by identity,
            # so set iteration would emit checks in a different order on
            # a remapped report than on a fresh one.
            for obj in sorted(touched, key=lambda o: o.label):
                canary = canaries[obj]
                modifier = modifiers[id(canary)]
                if self.rerandomize:
                    # Re-randomise before the channel runs: a canary
                    # value leaked through an earlier buffered read is
                    # useless by the time the overflow fires (§4.4).
                    builder.position_before(inst)
                    fresh = builder.call(random_fn, [])
                    signed = builder.pac_sign(fresh, modifier)
                    builder.store(signed, canary)
                    current_signed[id(canary)] = signed
                    signs += 1
                # The detection point right after the channel: auth traps
                # on garbage bytes, and the value compare traps on
                # *replayed* (validly signed but stale) canaries.
                builder.position_after(inst)
                loaded = builder.load(canary)
                builder.pac_auth(loaded, modifier)
                matches = builder.icmp(
                    "eq", loaded, current_signed[id(canary)]
                )
                builder.sec_assert(matches, "canary")
                auths += 1
                if interprocedural:
                    inter_checks += 1
                else:
                    ic_checks += 1
        return ic_checks, inter_checks, signs, auths

    @staticmethod
    def _reachable_functions(
        root: Function, callgraph: CallGraph, cache: Dict[Function, Set[Function]]
    ) -> Set[Function]:
        cached = cache.get(root)
        if cached is not None:
            return cached
        reachable: Set[Function] = {root}
        stack = [root]
        while stack:
            current = stack.pop()
            for callee in callgraph.callees.get(current, ()):
                if not callee.is_declaration and callee not in reachable:
                    reachable.add(callee)
                    stack.append(callee)
        cache[root] = reachable
        return reachable
