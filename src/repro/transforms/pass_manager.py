"""Minimal pass infrastructure.

A pass is anything with a ``name`` and a ``run(module) -> dict`` method
returning statistics.  The manager runs passes in order and verifies
once per pipeline stage: the incoming module (unless the caller just
verified it, see below) and the final module after the whole pipeline.
``verify_each=True`` restores the after-every-pass schedule for
debugging which pass corrupted the IR; the test suite exercises both.

``verify_input`` controls the verify of the *incoming* module: callers
that just verified it themselves -- ``protect()`` verifies right before
building its pipeline -- pass ``False`` so the same untouched module is
not verified twice in a row.

``run`` records wall time per pass in :attr:`timings` (verification
time is accumulated separately under ``"verify"``), and invalidates
both the pre-decoded execution program and the cached module analyses
once the pipeline has mutated the module.  Each phase is measured via
:class:`repro.observability.phase_span`, so the same clock reading
feeds :attr:`timings`, the global metrics registry, and (when tracing
is enabled) a ``pass:<name>`` span in the trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

from ..ir.module import Module
from ..ir.verifier import verify_module
from ..observability import phase_span


class ModulePass(Protocol):
    """Structural interface of a module pass."""

    name: str

    def run(self, module: Module) -> Dict[str, object]:  # pragma: no cover
        ...


class PassManager:
    """Runs a pipeline of module passes, collecting their statistics."""

    def __init__(
        self,
        passes: Sequence[ModulePass],
        verify: bool = True,
        verify_input: bool = True,
        verify_each: bool = False,
    ):
        self.passes = list(passes)
        self.verify = verify
        self.verify_input = verify_input
        self.verify_each = verify_each
        self.stats: Dict[str, Dict[str, object]] = {}
        #: wall seconds per pass name, plus accumulated ``"verify"`` time
        self.timings: Dict[str, float] = {}

    def _verify(self, module: Module) -> None:
        with phase_span("verify", self.timings):
            verify_module(module)

    def run(self, module: Module) -> Dict[str, Dict[str, object]]:
        if self.verify and self.verify_input:
            self._verify(module)
        for pass_ in self.passes:
            with phase_span(f"pass:{pass_.name}", self.timings, key=pass_.name):
                self.stats[pass_.name] = pass_.run(module) or {}
            if self.verify and self.verify_each:
                self._verify(module)
        if self.passes:
            if self.verify and not self.verify_each:
                self._verify(module)
            # Transforms invalidate any pre-decoded execution program
            # and any memoized analyses of the module; imported lazily
            # to keep the transform layer free of upper-layer imports.
            from ..analysis.manager import invalidate_analyses
            from ..hardware.decoder import invalidate_decode_cache

            invalidate_decode_cache(module)
            invalidate_analyses(module)
        return self.stats
