"""Minimal pass infrastructure.

A pass is anything with a ``name`` and a ``run(module) -> dict`` method
returning statistics.  The manager runs passes in order, optionally
verifying the module between passes (always on in the test suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

from ..ir.module import Module
from ..ir.verifier import verify_module


class ModulePass(Protocol):
    """Structural interface of a module pass."""

    name: str

    def run(self, module: Module) -> Dict[str, object]:  # pragma: no cover
        ...


class PassManager:
    """Runs a pipeline of module passes, collecting their statistics."""

    def __init__(self, passes: Sequence[ModulePass], verify: bool = True):
        self.passes = list(passes)
        self.verify = verify
        self.stats: Dict[str, Dict[str, object]] = {}

    def run(self, module: Module) -> Dict[str, Dict[str, object]]:
        if self.verify:
            verify_module(module)
        for pass_ in self.passes:
            self.stats[pass_.name] = pass_.run(module) or {}
            if self.verify:
                verify_module(module)
        if self.passes:
            # Transforms invalidate any pre-decoded execution program
            # (see repro.hardware.decoder); imported lazily to keep the
            # transform layer free of hardware dependencies.
            from ..hardware.decoder import invalidate_decode_cache

            invalidate_decode_cache(module)
        return self.stats
