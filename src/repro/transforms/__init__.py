"""repro.transforms -- compiler passes.

SSA construction (mem2reg) and the three defense instrumentations: the
conservative CPA baseline (Algorithm 2), Pythia's stack canaries with
re-layout (Algorithm 3) and heap sectioning (Algorithm 4), and the DFI
comparison baseline.
"""

from .cpa import CompletePointerAuthentication
from .dfi import DataFlowIntegrityPass
from .field_protect import FieldProtectionPass, make_guarded_struct
from .heap_section import HeapSectionPass
from .mem2reg import Mem2Reg, promotable_allocas
from .optimize import ConstantFold, DeadCodeElimination, optimize
from .pass_manager import PassManager
from .stack_protect import StackProtectionPass
from .support import (
    ensure_declaration,
    hoist_allocas,
    is_scalar_object,
    library_read_sites,
    loads_touching,
    object_size,
    sign_scalar_slots,
    stores_touching,
)

__all__ = [
    "CompletePointerAuthentication",
    "DataFlowIntegrityPass",
    "FieldProtectionPass",
    "make_guarded_struct",
    "ensure_declaration",
    "HeapSectionPass",
    "hoist_allocas",
    "is_scalar_object",
    "library_read_sites",
    "loads_touching",
    "ConstantFold",
    "DeadCodeElimination",
    "Mem2Reg",
    "optimize",
    "object_size",
    "PassManager",
    "promotable_allocas",
    "sign_scalar_slots",
    "StackProtectionPass",
    "stores_touching",
]
