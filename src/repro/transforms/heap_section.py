"""Pythia's heap defense: heap sectioning (Algorithm 4).

Vulnerable dynamically allocated variables are:

1. **Relocated to the isolated heap section** -- their allocation calls
   are rewritten from ``malloc``/``calloc`` to ``pythia_secure_malloc``,
   the paper's custom glibc-based allocator that serves a disjoint
   address range.  Overflows inside the shared section can no longer
   reach them, and overflows they cause stay inside the isolated
   section.
2. **Pointer-slot protected with ARM-PA** -- the (stack) slots holding
   pointers to vulnerable heap objects are value-signed on store and
   authenticated on load, so pointer-misdirection attacks that corrupt
   the stored heap pointer fail authentication at the next use
   (Algorithm 4's decrypt/deref/re-encrypt around dispatcher uses).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.alias import AliasAnalysis, MemObject
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.vulnerability import VulnerabilityReport
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Call, Store
from ..ir.module import Module
from ..ir.types import I64
from .support import ensure_declaration, sign_scalar_slots


class HeapSectionPass:
    """Heap sectioning + pointer-slot authentication (Algorithm 4)."""

    name = "pythia-heap"

    def __init__(self, report: Optional["VulnerabilityReport"] = None):
        self.report = report
        self.relocated_sites: List[Call] = []

    def run(self, module: Module) -> Dict[str, object]:
        if self.report is None:
            from ..core.vulnerability import VulnerabilityAnalysis

            self.report = VulnerabilityAnalysis(module).analyze()
        report = self.report
        analysis = report.analysis
        assert analysis is not None
        alias = analysis.alias
        secure_malloc = ensure_declaration(module, "pythia_secure_malloc")

        vulnerable = report.heap_vulnerable
        relocated = 0
        # Label order: calloc relocation inserts a named mul, so visit
        # order must not depend on MemObject identity-hash set ordering.
        for obj in sorted(vulnerable, key=lambda o: o.label):
            call = obj.anchor
            if not isinstance(call, Call):
                continue
            if self._relocate(call, secure_malloc):
                self.relocated_sites.append(call)
                relocated += 1

        slot_objects = self._pointer_slots(module, alias, vulnerable)
        signs = auths = 0
        for function in module.defined_functions():
            s, a = sign_scalar_slots(function, alias, slot_objects)
            signs += s
            auths += a

        return {
            "vulnerable_heap_objects": len(vulnerable),
            "relocated_allocations": relocated,
            "protected_pointer_slots": len(slot_objects),
            "pa_sign_inserted": signs,
            "pa_auth_inserted": auths,
        }

    # -- allocation rewriting ---------------------------------------------------------

    @staticmethod
    def _relocate(call: Call, secure_malloc: Function) -> bool:
        """Rewrite a malloc/calloc site to allocate from the isolated
        section.  ``mmap`` regions stay put: they map external data and
        are not under allocator control."""
        name = call.callee.name
        if name == "malloc":
            call.callee = secure_malloc
            return True
        if name == "calloc":
            # calloc(n, size) -> secure_malloc(n * size); the secure
            # allocator arena is zero-initialised by construction.
            builder = IRBuilder()
            builder.position_before(call)
            total = builder.mul(call.args[0], call.args[1])
            call.callee = secure_malloc
            call.set_operand(0, total)
            call.drop_trailing_operand()
            return True
        return False

    # -- pointer-slot discovery ---------------------------------------------------------

    @staticmethod
    def _pointer_slots(
        module: Module, alias: AliasAnalysis, vulnerable: Set[MemObject]
    ) -> Set[MemObject]:
        """Stack/global slots that hold pointers to vulnerable heap
        objects -- the values Algorithm 4 signs and authenticates."""
        slots: Set[MemObject] = set()
        if not vulnerable:
            return slots
        for function in module.defined_functions():
            for inst in function.instructions():
                if not isinstance(inst, Store):
                    continue
                if not (alias.points_to(inst.value) & vulnerable):
                    continue
                for obj in alias.points_to(inst.pointer):
                    if obj.kind in ("stack", "global"):
                        slots.add(obj)
        return slots
