"""Shared helpers for the instrumentation passes."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.alias import AliasAnalysis, MemObject
from ..hardware.libc import LIBRARY
from ..ir.builder import IRBuilder
from ..ir.function import BasicBlock, Function
from ..ir.instructions import Alloca, Call, Instruction, Load, Store
from ..ir.module import Module
from ..ir.types import ArrayType, FunctionType, I64, IntType, PointerType, StructType
from ..ir.values import GlobalVariable, Value


def pointer_as_modifier(builder: IRBuilder, ptr: Value) -> Value:
    """The PA modifier for a slot: its address as an i64 (``ptrtoint``)."""
    return builder.cast("ptrtoint", ptr, I64)


def object_size(obj: MemObject) -> int:
    """Byte size of a memory object's allocation, 8 when unknown."""
    anchor = obj.anchor
    if isinstance(anchor, Alloca):
        return max(1, anchor.allocated_type.size)
    if isinstance(anchor, GlobalVariable):
        return max(1, anchor.value_type.size)
    return 8


def is_scalar_object(obj: MemObject) -> bool:
    """True for objects holding a single i64/pointer value (signable)."""
    anchor = obj.anchor
    if isinstance(anchor, Alloca):
        atype = anchor.allocated_type
    elif isinstance(anchor, GlobalVariable):
        atype = anchor.value_type
    else:
        return False
    if isinstance(atype, PointerType):
        return True
    return isinstance(atype, IntType) and atype.bits == 64


def loads_touching(
    function: Function, alias: AliasAnalysis, objects: Set[MemObject]
) -> List[Load]:
    """Loads in ``function`` that may read any of ``objects``."""
    result = []
    for inst in function.instructions():
        if isinstance(inst, Load) and (alias.points_to(inst.pointer) & objects):
            result.append(inst)
    return result


def stores_touching(
    function: Function, alias: AliasAnalysis, objects: Set[MemObject]
) -> List[Store]:
    """Stores in ``function`` that may write any of ``objects``."""
    result = []
    for inst in function.instructions():
        if isinstance(inst, Store) and (alias.points_to(inst.pointer) & objects):
            result.append(inst)
    return result


def library_read_sites(
    function: Function, alias: AliasAnalysis, objects: Set[MemObject]
) -> List[Tuple[Call, Value]]:
    """(call, pointer-arg) pairs where a library callee reads ``objects``.

    Library reads (``strncmp(user, "admin", 5)``) are how branch
    predicates consume aggregate variables, so integrity checks must
    fire before them.
    """
    result: List[Tuple[Call, Value]] = []
    for inst in function.instructions():
        if not isinstance(inst, Call) or not inst.callee.is_declaration:
            continue
        lib = LIBRARY.get(inst.callee.name)
        if lib is None:
            continue
        indices = [i for i in lib.reads_args if i < len(inst.args)]
        if lib.reads_varargs:
            indices.extend(range(len(lib.function_type.params), len(inst.args)))
        for index in indices:
            arg = inst.args[index]
            if isinstance(arg.type, PointerType) and (
                alias.points_to(arg) & objects
            ):
                result.append((inst, arg))
    return result


def input_channel_sites_touching(
    sites: Iterable, alias: AliasAnalysis, objects: Set[MemObject]
):
    """IC sites whose written pointers may alias any of ``objects``."""
    touching = []
    for site in sites:
        for ptr in site.written_pointers:
            if alias.points_to(ptr) & objects:
                touching.append(site)
                break
    return touching


def hoist_allocas(function: Function, ordered: Sequence[Alloca]) -> None:
    """Re-layout the frame: place ``ordered`` allocas (in that order) at
    the top of the entry block.

    Allocas have no operands, so hoisting is always legal; program
    order of allocas is frame-address order in the simulated CPU, which
    is how Pythia's stack re-layout controls adjacency.
    """
    entry = function.entry_block
    known = set(ordered)
    rest = [i for i in entry.instructions if not (isinstance(i, Alloca) and i in known)]
    for alloca in ordered:
        if alloca.parent is not entry:
            # Allocas in non-entry blocks are moved into the entry frame.
            alloca.parent.instructions.remove(alloca)  # type: ignore[union-attr]
            alloca.parent = entry
    entry.instructions = list(ordered) + rest


def entry_builder(function: Function) -> IRBuilder:
    """A builder positioned after the last entry-block alloca."""
    entry = function.entry_block
    index = 0
    for i, inst in enumerate(entry.instructions):
        if isinstance(inst, Alloca):
            index = i + 1
    builder = IRBuilder(entry)
    if index >= len(entry.instructions):
        builder.position_at_end(entry)
    else:
        builder.position_before(entry.instructions[index])
    return builder


def ensure_declaration(module: Module, name: str) -> Function:
    """Declare a library function in the module if not already present."""
    lib = LIBRARY[name]
    return module.declare_function(name, lib.function_type, lib.ic_kind)


def object_modifier_id(obj: MemObject) -> int:
    """Deterministic 64-bit PA modifier identifying a memory object.

    Signing with the *static object identity* rather than the runtime
    address is what defeats pointer-misdirection (§3): a store the
    compiler attributed to object A carries A's modifier, so when the
    attacker steers it onto object B, B's authenticated load fails.
    FNV-1a over the object label keeps the id stable across module
    clones (labels encode function + variable name).
    """
    value = 0xCBF29CE484222325
    for byte in obj.label.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def sign_scalar_slots(
    function: Function, alias: AliasAnalysis, objects: Set[MemObject]
) -> Tuple[int, int]:
    """Value-sign 8-byte slots: sign at every store, auth at every load.

    The PA modifier is the accessed object's identity
    (:func:`object_modifier_id`); only accesses the analysis resolves
    to a *single* object are instrumented -- ambiguous accesses must be
    demoted by the caller beforehand, or their objects would see
    inconsistently signed values.  Returns ``(signs, auths)``.
    """
    if not objects:
        return 0, 0
    signs = auths = 0
    builder = IRBuilder()
    for store in stores_touching(function, alias, objects):
        if store.value.type.size != 8:
            continue
        pts = alias.points_to(store.pointer)
        if len(pts) != 1:
            continue
        (obj,) = pts
        builder.position_before(store)
        modifier = builder.const(I64, object_modifier_id(obj))
        signed = builder.pac_sign(store.value, modifier)
        store.set_operand(0, signed)
        signs += 1
    for load in loads_touching(function, alias, objects):
        if load.type.size != 8:
            continue
        pts = alias.points_to(load.pointer)
        if len(pts) != 1:
            continue
        (obj,) = pts
        prior_uses = list(load.uses)
        builder.position_after(load)
        modifier = builder.const(I64, object_modifier_id(obj))
        auth = builder.pac_auth(load, modifier)
        for use in prior_uses:
            use.user.set_operand(use.index, auth)
        auths += 1
    return signs, auths
