"""SSA construction: promote scalar allocas to registers.

This mirrors LLVM's ``mem2reg``, which the paper runs before its module
pass ("LLVM's mem2reg pass transforms the program IR by promoting
memory references into register references, thereby reducing the
loads/stores").  Only the loads/stores that *survive* promotion -- the
address-taken variables, arrays, and anything reachable by pointers --
are candidates for ARM-PA instrumentation, exactly as in the paper.

Standard algorithm: phi insertion at iterated dominance frontiers,
then a renaming walk over the dominator tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.cfg import DominatorTree, reachable_blocks
from ..ir.function import BasicBlock, Function
from ..ir.instructions import Alloca, Instruction, Load, Phi, Store
from ..ir.module import Module
from ..ir.types import IntType, PointerType
from ..ir.values import UndefValue, Value


def promotable_allocas(function: Function) -> List[Alloca]:
    """Allocas whose every use is a direct scalar load or store."""
    result = []
    for alloca in function.allocas():
        if not isinstance(alloca.allocated_type, (IntType, PointerType)):
            continue
        promotable = True
        for use in alloca.uses:
            user = use.user
            if isinstance(user, Load) and user.pointer is alloca:
                continue
            if isinstance(user, Store) and user.pointer is alloca and user.value is not alloca:
                continue
            promotable = False
            break
        if promotable:
            result.append(alloca)
    return result


class Mem2Reg:
    """The mem2reg module pass."""

    name = "mem2reg"

    def run(self, module: Module) -> Dict[str, object]:
        promoted = 0
        phis = 0
        for function in module.defined_functions():
            p, f = self._run_function(function)
            promoted += p
            phis += f
        return {"promoted_allocas": promoted, "inserted_phis": phis}

    def _run_function(self, function: Function) -> "tuple[int, int]":
        allocas = promotable_allocas(function)
        if not allocas:
            return 0, 0
        domtree = DominatorTree(function)
        reachable_list = reachable_blocks(function)
        reachable = set(reachable_list)
        phi_owner: Dict[Phi, Alloca] = {}
        # BasicBlocks hash by identity, so every set of blocks must be
        # iterated in a canonical order or phi naming/placement would
        # differ between structurally identical modules (e.g. clones of
        # the same source -- the shared-analysis path compares them
        # bit-for-bit against per-scheme recompilations).
        block_index = {id(block): i for i, block in enumerate(function.blocks)}

        # 1. Phi insertion at iterated dominance frontiers of def blocks.
        inserted = 0
        for alloca in allocas:
            def_blocks = {
                use.user.parent
                for use in alloca.uses
                if isinstance(use.user, Store) and use.user.parent in reachable
            }
            placed: Set[BasicBlock] = set()
            worklist = sorted(
                def_blocks, key=lambda b: block_index[id(b)], reverse=True
            )
            while worklist:
                block = worklist.pop()
                frontier_blocks = sorted(
                    domtree.frontiers.get(block, ()),
                    key=lambda b: block_index[id(b)],
                )
                for frontier in frontier_blocks:
                    if frontier in placed or frontier not in reachable:
                        continue
                    placed.add(frontier)
                    phi = Phi(alloca.allocated_type, name=function.unique_name("m2r"))
                    frontier.insert(0, phi)
                    phi_owner[phi] = alloca
                    inserted += 1
                    if frontier not in def_blocks:
                        worklist.append(frontier)

        # 2. Renaming walk over the dominator tree (children in
        #    discovery order, for the same determinism reason).
        children: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in reachable_list}
        for block in reachable_list:
            idom = domtree.idom.get(block)
            if idom is not None and idom is not block:
                children[idom].append(block)

        alloca_set = set(allocas)
        stacks: Dict[Alloca, List[Value]] = {a: [] for a in allocas}

        def current(alloca: Alloca) -> Value:
            stack = stacks[alloca]
            return stack[-1] if stack else UndefValue(alloca.allocated_type)

        def rename(block: BasicBlock) -> None:
            pushed: List[Alloca] = []
            for inst in list(block.instructions):
                if isinstance(inst, Phi) and inst in phi_owner:
                    stacks[phi_owner[inst]].append(inst)
                    pushed.append(phi_owner[inst])
                elif isinstance(inst, Load) and inst.pointer in alloca_set:
                    inst.replace_all_uses_with(current(inst.pointer))  # type: ignore[arg-type]
                    inst.erase_from_parent()
                elif isinstance(inst, Store) and inst.pointer in alloca_set:
                    stacks[inst.pointer].append(inst.value)  # type: ignore[index]
                    pushed.append(inst.pointer)  # type: ignore[arg-type]
                    inst.erase_from_parent()
            for succ in block.successors:
                for phi in succ.phis:
                    if phi in phi_owner:
                        phi.add_incoming(current(phi_owner[phi]), block)
            for child in children.get(block, ()):
                rename(child)
            for alloca in pushed:
                stacks[alloca].pop()

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000))
        try:
            rename(function.entry_block)
        finally:
            sys.setrecursionlimit(old_limit)

        # 3. Remove the promoted allocas.
        for alloca in allocas:
            if not alloca.uses:
                alloca.erase_from_parent()

        # 4. Prune phis with missing predecessors in unreachable edges and
        #    phis that became trivial (all incomings identical).
        self._simplify_phis(function, phi_owner)
        return len(allocas), inserted

    @staticmethod
    def _simplify_phis(function: Function, phi_owner: Dict[Phi, Alloca]) -> None:
        changed = True
        while changed:
            changed = False
            for block in function.blocks:
                for phi in list(block.phis):
                    if phi not in phi_owner:
                        continue
                    distinct = {
                        id(value)
                        for value, _ in phi.incomings
                        if value is not phi and not isinstance(value, UndefValue)
                    }
                    if len(distinct) == 1:
                        replacement = next(
                            value
                            for value, _ in phi.incomings
                            if value is not phi and not isinstance(value, UndefValue)
                        )
                        phi.replace_all_uses_with(replacement)
                        phi.erase_from_parent()
                        changed = True
                    elif len(distinct) == 0 and not phi.uses:
                        phi.erase_from_parent()
                        changed = True
