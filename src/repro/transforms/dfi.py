"""Data-Flow Integrity baseline (Castro et al., OSDI'06).

DFI computes a static data-flow graph (reaching definitions) and
verifies at runtime that every load was last written by a statically
permitted definition:

- every store is followed by ``dfi.setdef`` recording its definition id
  in the runtime definitions table (RDT);
- every input-channel call is followed by ``dfi.setdef`` over the
  buffer region the call was *supposed* to write -- bytes the channel
  wrote beyond that region keep the "external writer" marker;
- every load it can reason about is preceded by ``dfi.chkdef`` with the
  statically computed set of allowed writers;
- library reads of tracked buffers are checked the same way (the first
  8 bytes of the read region, where any overflow arriving from lower
  addresses must land).

**The limitation the paper exploits**: DFI cannot reason about loads
whose address comes from raw pointer arithmetic or field-insensitive
struct access, so such loads are left unchecked (no false traps, no
protection) -- exactly the termination behaviour measured in Fig. 7(b)
and the attack-distance comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.alias import AliasAnalysis, MemObject
from ..analysis.dataflow import MemoryDefUse, ReachingDefinitions
from ..analysis.input_channels import InputChannelAnalysis
from ..analysis.slicing import BackwardSlicer
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.vulnerability import VulnerabilityReport
from ..hardware.cpu import DFI_EXTERNAL_WRITER
from ..hardware.libc import LIBRARY
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Call, Load, Store
from ..ir.module import Module
from ..ir.types import PointerType
from .support import object_size


class DataFlowIntegrityPass:
    """SETDEF/CHKDEF instrumentation over the reaching-defs graph."""

    name = "dfi"

    def __init__(self, report: Optional["VulnerabilityReport"] = None):
        self.report = report
        self.unchecked_loads: List[Load] = []

    def run(self, module: Module) -> Dict[str, object]:
        if self.report is None:
            from ..core.vulnerability import VulnerabilityAnalysis

            self.report = VulnerabilityAnalysis(module).analyze()
        report = self.report
        analysis = report.analysis
        assert analysis is not None
        alias = analysis.alias
        channels = analysis.channels
        memdu = analysis.memdu

        wild_defs = self._wild_definitions(module, alias, memdu)
        setdefs = chkdefs = skipped = 0
        for function in module.defined_functions():
            rd = ReachingDefinitions(function, memdu)
            s, c, k = self._instrument_function(
                function, alias, channels, memdu, rd, wild_defs
            )
            setdefs += s
            chkdefs += c
            skipped += k
        return {
            "setdef_inserted": setdefs,
            "chkdef_inserted": chkdefs,
            "unchecked_loads": skipped,
        }

    # -- per function --------------------------------------------------------------

    @staticmethod
    def _wild_definitions(
        module: Module, alias: AliasAnalysis, memdu: MemoryDefUse
    ) -> frozenset:
        """Definition ids of stores DFI cannot attribute to objects.

        Castro et al.'s DFI must avoid false positives, so a write whose
        target the static analysis cannot resolve (raw pointer
        arithmetic, field-insensitive access) is permitted *everywhere*
        -- which is precisely why DFI misses pointer-misdirection
        attacks (§3).
        """
        wild = set()
        for function in module.defined_functions():
            for inst in function.instructions():
                if not isinstance(inst, Store):
                    continue
                mdef = memdu.def_of(inst)
                if mdef is None:
                    continue
                if BackwardSlicer._pointer_is_computed(inst.pointer) or not alias.points_to(
                    inst.pointer
                ):
                    wild.add(mdef.def_id)
        return frozenset(wild)

    def _instrument_function(
        self,
        function: Function,
        alias: AliasAnalysis,
        channels: InputChannelAnalysis,
        memdu: MemoryDefUse,
        rd: ReachingDefinitions,
        wild_defs: frozenset,
    ) -> Tuple[int, int, int]:
        builder = IRBuilder()
        setdefs = chkdefs = skipped = 0
        local_sites = {id(s.call): s for s in channels.sites if s.function is function}

        # Phase 1: chkdefs (before any setdef shifts instruction positions).
        for inst in list(function.instructions()):
            if isinstance(inst, Load):
                added, skip = self._check_load(builder, inst, alias, rd, wild_defs)
                chkdefs += added
                skipped += skip
            elif isinstance(inst, Call) and inst.callee.is_declaration:
                chkdefs += self._check_library_read(
                    builder, inst, alias, rd, wild_defs
                )

        # Phase 2: setdefs.
        for inst in list(function.instructions()):
            mdef = memdu.def_of(inst)
            if mdef is None:
                continue
            if isinstance(inst, Store):
                builder.position_after(inst)
                builder.dfi_setdef(
                    inst.pointer, mdef.def_id, max(1, inst.value.type.size)
                )
                setdefs += 1
            elif isinstance(inst, Call) and id(inst) in local_sites:
                site = local_sites[id(inst)]
                builder.position_after(inst)
                for ptr in site.written_pointers:
                    builder.dfi_setdef(
                        ptr, mdef.def_id, self._intended_size(alias, ptr)
                    )
                    setdefs += 1
                if site.writes_return and not inst.type.is_void:
                    # map-style channels define the returned region
                    builder.dfi_setdef(
                        inst, mdef.def_id, self._intended_size(alias, inst)
                    )
                    setdefs += 1
        return setdefs, chkdefs, skipped

    # -- checks ---------------------------------------------------------------------

    def _check_load(
        self,
        builder: IRBuilder,
        load: Load,
        alias: AliasAnalysis,
        rd: ReachingDefinitions,
        wild_defs: frozenset,
    ) -> Tuple[int, int]:
        if not self._can_reason_about(load.pointer, alias):
            self.unchecked_loads.append(load)
            return 0, 1
        objects = alias.points_to(load.pointer)
        allowed = (
            self._allowed_set(rd.reaching(load))
            | wild_defs
            | self._cross_function_defs(load.function, objects, rd.memdu)
        )
        builder.position_before(load)
        builder.dfi_chkdef(load.pointer, allowed, max(1, load.type.size))
        return 1, 0

    @staticmethod
    def _cross_function_defs(function, objects, memdu: MemoryDefUse) -> Set[int]:
        """Whole-program fallback: definitions of the objects living in
        *other* functions are flow-insensitively permitted (our reaching
        definitions are per function, but Castro's analysis is
        interprocedural)."""
        allowed: Set[int] = set()
        for obj in objects:
            for mdef in memdu.defs_of_object(obj):
                if mdef.function is not function:
                    allowed.add(mdef.def_id)
        return allowed

    def _check_library_read(
        self,
        builder: IRBuilder,
        call: Call,
        alias: AliasAnalysis,
        rd: ReachingDefinitions,
        wild_defs: frozenset,
    ) -> int:
        lib = LIBRARY.get(call.callee.name)
        if lib is None:
            return 0
        indices = [i for i in lib.reads_args if i < len(call.args)]
        if lib.reads_varargs:
            indices.extend(range(len(lib.function_type.params), len(call.args)))
        added = 0
        for index in indices:
            arg = call.args[index]
            if not isinstance(arg.type, PointerType):
                continue
            if not self._can_reason_about(arg, alias):
                continue
            objects = alias.points_to(arg)
            if not objects or any(o.kind in ("heap", "arg") for o in objects):
                continue
            allowed = (
                self._allowed_set(rd.reaching_at(call, objects))
                | wild_defs
                | self._cross_function_defs(call.function, objects, rd.memdu)
            )
            size = min(8, min(object_size(o) for o in objects))
            builder.position_before(call)
            builder.dfi_chkdef(arg, allowed, size)
            added += 1
        return added

    @staticmethod
    def _allowed_set(reaching) -> frozenset:
        ids = {d.def_id for d in reaching}
        if not ids:
            # Reads of never-defined memory see the initial marker.
            ids = {DFI_EXTERNAL_WRITER}
        return frozenset(ids)

    # -- the termination rule ----------------------------------------------------------

    @staticmethod
    def _can_reason_about(pointer, alias: AliasAnalysis) -> bool:
        """DFI's static analysis gives up on computed pointers.

        Raw pointer arithmetic (``p + i``) and struct-field access defeat
        it; constant array decay and in-bounds array indexing do not.
        """
        return not BackwardSlicer._pointer_is_computed(pointer)

    @staticmethod
    def _intended_size(alias: AliasAnalysis, ptr) -> int:
        obj = alias.must_alias_single(ptr)
        if obj is not None:
            return object_size(obj)
        pts = alias.points_to(ptr)
        if pts:
            return min(object_size(o) for o in pts)
        return 8
