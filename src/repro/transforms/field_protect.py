"""Per-field struct canaries -- the paper's §6.4 future work.

§6.4: "Pythia cannot detect stack buffer overflows resulting within
objects such as sub-fields of a struct...  To solve this problem of
overflow detection within sub-fields, stack canaries must be inserted
within individual fields."

This optional pass (``DefenseConfig(protect_fields=True)``) implements
exactly that: every vulnerable, non-escaping stack struct is re-typed
into a *guarded* twin whose fields are interleaved with PA-signed
canary words, and the canaries follow the stack-canary protocol
(initialise at entry, re-randomise before and authenticate after every
input-channel use of the struct).  An overflow from one field into its
sibling now crosses an intra-struct canary and traps.

Only structs whose address never escapes the function in raw form
(every use is a constant-index field access, possibly passed to library
channels) are re-typed -- re-typing an escaping struct would change the
layout other functions index into.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..analysis.alias import AliasAnalysis, MemObject
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import Alloca, Call, GetElementPtr, Instruction, Load, Store
from ..ir.module import Module
from ..ir.types import I64, StructType
from ..ir.values import Constant
from .support import ensure_declaration

if TYPE_CHECKING:  # pragma: no cover
    from ..core.vulnerability import VulnerabilityReport

#: Prefix of the canary fields interleaved into guarded structs.
GUARD_FIELD_PREFIX = "__guard"


def make_guarded_struct(struct: StructType) -> StructType:
    """The guarded twin: a signed canary word after every field."""
    fields: List[Tuple[str, object]] = []
    for index, (fname, ftype) in enumerate(struct.fields):
        fields.append((fname, ftype))
        fields.append((f"{GUARD_FIELD_PREFIX}{index}", I64))
    return StructType(f"{struct.name}.guarded", fields)


class FieldProtectionPass:
    """Interleave PA canaries inside vulnerable stack structs (§6.4)."""

    name = "pythia-fields"

    def __init__(self, report: Optional["VulnerabilityReport"] = None):
        self.report = report
        #: structs re-typed, for tests/metrics
        self.guarded_structs: Dict[str, StructType] = {}

    def run(self, module: Module) -> Dict[str, object]:
        if self.report is None:
            from ..core.vulnerability import VulnerabilityAnalysis

            self.report = VulnerabilityAnalysis(module).analyze()
        report = self.report
        analysis = report.analysis
        assert analysis is not None
        alias = analysis.alias
        channels = analysis.channels
        ensure_declaration(module, "pythia_random")

        rewritten = guards = 0
        signs = auths = 0
        for function in module.defined_functions():
            for alloca in list(function.allocas()):
                obj = alias.object_for(alloca)
                if obj is None or obj not in report.stack_vulnerable:
                    continue
                if not isinstance(alloca.allocated_type, StructType):
                    continue
                if not self._is_rewritable(alloca):
                    continue
                new_alloca, guard_count = self._rewrite(module, function, alloca)
                rewritten += 1
                guards += guard_count
                s, a = self._instrument(
                    module, function, alias, channels, obj, alloca, new_alloca
                )
                signs += s
                auths += a

        return {
            "structs_guarded": rewritten,
            "field_canaries": guards,
            "pa_sign_inserted": signs,
            "pa_auth_inserted": auths,
        }

    # -- rewritability ---------------------------------------------------------

    @staticmethod
    def _is_rewritable(alloca: Alloca) -> bool:
        """Every use must be a constant field access; the raw struct
        pointer must not escape (stores, calls, dynamic indexing)."""
        for user in alloca.users:
            if not isinstance(user, GetElementPtr):
                return False
            if user.pointer is not alloca:
                return False
            indices = user.indices
            if len(indices) < 2:
                return False
            if not all(isinstance(i, Constant) for i in indices[:2]):
                return False
            if indices[0].value != 0:  # type: ignore[union-attr]
                return False
        return True

    # -- re-typing ------------------------------------------------------------

    def _rewrite(
        self, module: Module, function: Function, alloca: Alloca
    ) -> Tuple[Alloca, int]:
        struct = alloca.allocated_type
        assert isinstance(struct, StructType)
        guarded = self.guarded_structs.get(struct.name)
        if guarded is None:
            guarded = make_guarded_struct(struct)
            self.guarded_structs[struct.name] = guarded
            if guarded.name not in module.structs:
                module.add_struct(guarded)

        new_alloca = Alloca(guarded, name=function.claim_name(f"{alloca.name}.g"))
        block = alloca.parent
        assert block is not None
        block.insert_before(alloca, new_alloca)

        # Remap every field access: old field i -> new field 2i.
        builder = IRBuilder()
        for user in list(alloca.users):
            assert isinstance(user, GetElementPtr)
            old_index = user.indices[1].value  # type: ignore[union-attr]
            builder.position_before(user)
            remapped = builder.gep(
                new_alloca,
                [0, 2 * old_index] + [i for i in user.indices[2:]],
            )
            user.replace_all_uses_with(remapped)
            user.erase_from_parent()
        alloca.erase_from_parent()
        return new_alloca, len(new_alloca.allocated_type.fields) // 2

    # -- canary protocol ---------------------------------------------------------

    def _guard_geps(
        self, builder: IRBuilder, new_alloca: Alloca
    ) -> List[Tuple[int, object]]:
        struct = new_alloca.allocated_type
        assert isinstance(struct, StructType)
        return [
            (index, builder.gep(new_alloca, [0, index]))
            for index, (fname, _) in enumerate(struct.fields)
            if fname.startswith(GUARD_FIELD_PREFIX)
        ]

    def _instrument(
        self,
        module: Module,
        function: Function,
        alias: AliasAnalysis,
        channels,
        obj: MemObject,
        old_alloca: Alloca,
        new_alloca: Alloca,
    ) -> Tuple[int, int]:
        random_fn = module.get_function("pythia_random")
        builder = IRBuilder()
        signs = auths = 0

        def init_guards_at(position_setter) -> int:
            count = 0
            position_setter()
            for _, guard_ptr in self._guard_geps(builder, new_alloca):
                fresh = builder.call(random_fn, [])
                modifier = builder.cast("ptrtoint", guard_ptr, I64)
                builder.store(builder.pac_sign(fresh, modifier), guard_ptr)
                count += 1
            return count

        # Initialise once, right after the allocas at function entry.
        entry = function.entry_block
        index = 0
        for i, inst in enumerate(entry.instructions):
            if isinstance(inst, Alloca):
                index = i + 1
        if index >= len(entry.instructions):
            signs += init_guards_at(lambda: builder.position_at_end(entry))
        else:
            anchor = entry.instructions[index]
            signs += init_guards_at(lambda: builder.position_before(anchor))

        # Around every IC call writing into the struct: re-randomise
        # before, authenticate after (the §4.3 protocol, per field).
        for site in channels.sites:
            if site.function is not function:
                continue
            touched = any(
                obj in alias.points_to(ptr) for ptr in site.written_pointers
            )
            if not touched:
                continue
            signs += init_guards_at(lambda c=site.call: builder.position_before(c))
            builder.position_after(site.call)
            for _, guard_ptr in self._guard_geps(builder, new_alloca):
                loaded = builder.load(guard_ptr)
                modifier = builder.cast("ptrtoint", guard_ptr, I64)
                builder.pac_auth(loaded, modifier)
                auths += 1
        return signs, auths
