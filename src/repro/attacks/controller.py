"""Attack controller: scripted payload injection at input channels.

The threat model (§2.5) lets the attacker corrupt any program variable
through input channels, at any time, with unlimited attempts.  The
controller realises this: it watches every IC the CPU executes and can
substitute a malicious payload for the benign input -- an oversized
string for ``gets``, a crafted source for ``strcpy``, a huge integer
for ``scanf %d``, etc.  Overflows then happen naturally in the flat
memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

#: A payload is raw bytes, or a callable computing bytes from the live
#: CPU -- the adaptive attacker of the threat model, who knows the
#: binary layout and targets exact victim addresses.
Payload = Union[bytes, Callable[[object], bytes]]


@dataclass
class Injection:
    """One scripted payload: fire at the Nth call of ``channel``.

    ``channel`` is the libc model name (``gets``, ``strcpy``, ...) or a
    scanf conversion pseudo-channel (``scanf%d``, ``scanf%s``).
    ``occurrence=None`` fires at *every* call of the channel.
    """

    channel: str
    payload: Payload
    occurrence: Optional[int] = 1
    #: set true once delivered
    fired: bool = False

    def render(self, cpu) -> bytes:
        if callable(self.payload):
            return self.payload(cpu)
        return self.payload


class AttackController:
    """Delivers scripted injections; records what fired."""

    def __init__(self, injections: Optional[Sequence[Injection]] = None):
        self.injections: List[Injection] = list(injections or [])
        self._counts: Dict[str, int] = {}
        self.log: List[str] = []

    def add(
        self, channel: str, payload: Payload, occurrence: Optional[int] = 1
    ) -> "AttackController":
        """Schedule a payload; ``occurrence=None`` hits every call."""
        self.injections.append(Injection(channel, payload, occurrence))
        return self

    def payload_for(self, cpu, channel: str, args) -> Optional[bytes]:
        """CPU hook: return a payload to use at this IC, or ``None``."""
        count = self._counts.get(channel, 0) + 1
        self._counts[channel] = count
        for injection in self.injections:
            if injection.channel == channel and (
                injection.occurrence is None or injection.occurrence == count
            ):
                injection.fired = True
                data = injection.render(cpu)
                self.log.append(f"{channel}#{count}: {len(data)}B payload")
                return data
        return None

    @property
    def any_fired(self) -> bool:
        return any(injection.fired for injection in self.injections)

    def reset(self) -> None:
        self._counts.clear()
        for injection in self.injections:
            injection.fired = False
        self.log.clear()


def overflow_payload(prefix: bytes, pad_to: int, suffix: bytes) -> bytes:
    """Build a classic overflow payload: ``prefix`` padded with ``A`` up
    to the victim offset ``pad_to``, then ``suffix`` lands on the
    victim."""
    if len(prefix) > pad_to:
        raise ValueError("prefix longer than pad_to")
    return prefix + b"A" * (pad_to - len(prefix)) + suffix
