"""Brute-force attacks against PA canaries (§4.4, Eq. 6).

The attacker repeatedly guesses the canary (equivalently, forges a PAC)
and each wrong guess crashes the program.  Because Pythia re-randomises
the canary on every function entry and before every input channel, each
attempt is independent: success probability per attempt is ``2^-b`` for
a ``b``-bit PAC, the number of attempts is geometric, and the expected
number of tries is ``2^b`` (16.7 million for the 24-bit PAC).

Both the closed forms and a Monte-Carlo simulation against the real
simulated PAC function are provided; the simulation uses a reduced PAC
width so it terminates quickly while exercising the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hardware.pac import PAC_BITS, PointerAuthentication, compute_pac
from ..hardware.rng import CanaryRng


def success_probability(attempts: int, pac_bits: int = PAC_BITS, canaries: int = 1) -> float:
    """P(at least one success within ``attempts`` tries), Eq. 6.

    With re-randomisation every attempt is independent, so for one
    canary P = 1 - (1 - 2^-b)^N; the paper's ``k/2^24`` appears as the
    small-N, k-canary first-order term.
    """
    per_try = 1.0 / (1 << pac_bits)
    miss_all = (1.0 - per_try) ** attempts
    single = 1.0 - miss_all
    # k independent canaries, attacker needs any one of them
    return 1.0 - (1.0 - single) ** canaries


def first_order_probability(canaries: int = 1, pac_bits: int = PAC_BITS) -> float:
    """The paper's approximation: P ≈ k / 2^b for one attempt."""
    return canaries / (1 << pac_bits)


def expected_tries(pac_bits: int = PAC_BITS) -> float:
    """E[attempts] of the geometric variable: 1/p = 2^b."""
    return float(1 << pac_bits)


@dataclass
class BruteForceOutcome:
    """Result of one simulated brute-force campaign."""

    attempts: int
    succeeded: bool
    pac_bits: int


def simulate_bruteforce(
    pac_bits: int = 12,
    max_attempts: int = 100_000,
    seed: int = 7,
) -> BruteForceOutcome:
    """Monte-Carlo brute force against the real PAC function.

    Every attempt models one program invocation: the defender
    re-randomises the canary (fresh value + fresh signing), the
    attacker overwrites the canary slot with a guess, and the defender
    authenticates.  ``pac_bits`` narrows the checked field so the
    campaign finishes in reasonable time; the per-try success
    probability scales as 2^-pac_bits exactly as Eq. 6 predicts.
    """
    if pac_bits < 1 or pac_bits > PAC_BITS:
        raise ValueError(f"pac_bits must be in [1, {PAC_BITS}]")
    pa = PointerAuthentication(seed)
    defender_rng = CanaryRng(seed ^ 0xDEF)
    attacker_rng = CanaryRng(seed ^ 0xA77AC4)
    mask = ((1 << pac_bits) - 1) << 40
    slot_address = 0x2_0000_1000

    for attempt in range(1, max_attempts + 1):
        # Defender: fresh canary value, re-signed (re-randomisation).
        canary = defender_rng.next_canary()
        signed = pa.sign(canary, slot_address)
        # Attacker: overwrite the slot with a full 64-bit guess.
        guess = attacker_rng.next_u64()
        # Detection check: the stored value must carry the correct PAC
        # for its (unknown to the attacker) payload bits.
        expected = pa.sign(guess & ((1 << 40) - 1), slot_address)
        if (guess & mask) == (expected & mask):
            return BruteForceOutcome(attempt, True, pac_bits)
        # wrong guess -> crash -> next program invocation
        del signed
    return BruteForceOutcome(max_attempts, False, pac_bits)


def empirical_success_rate(
    pac_bits: int = 8, trials: int = 2000, attempts_per_trial: int = 1, seed: int = 11
) -> float:
    """Fraction of campaigns that succeed -- for validating Eq. 6."""
    wins = 0
    for trial in range(trials):
        outcome = simulate_bruteforce(
            pac_bits=pac_bits,
            max_attempts=attempts_per_trial,
            seed=seed + trial * 977,
        )
        wins += outcome.succeeded
    return wins / trials
