"""repro.attacks -- the attacker's side of the evaluation.

Scripted payload injection at input channels, the paper's attack
scenarios as runnable MiniC programs, and the canary brute-force model
of §4.4.
"""

from .bruteforce import (
    BruteForceOutcome,
    empirical_success_rate,
    expected_tries,
    first_order_probability,
    simulate_bruteforce,
    success_probability,
)
from .controller import AttackController, Injection, Payload, overflow_payload
from .scenarios import Scenario, build_scenarios

__all__ = [
    "AttackController",
    "BruteForceOutcome",
    "build_scenarios",
    "empirical_success_rate",
    "expected_tries",
    "first_order_probability",
    "Injection",
    "overflow_payload",
    "Payload",
    "Scenario",
    "simulate_bruteforce",
    "success_probability",
]
