"""The paper's attack scenarios, as runnable MiniC programs.

Each scenario bundles: the victim program (MiniC source), benign
inputs, the scripted exploit, and the observable that distinguishes a
*successful* attack (control-flow bent) from a failed or detected one.

Scenario table (§2.2, §3, §6.3):

====================  ========================================  ==========================
scenario              attack                                    expected detection
====================  ========================================  ==========================
privilege_escalation  Listing 1: gets() overflow flips the      CPA, Pythia, DFI
                      admin check
proftpd_leak          Listing 2 style: overflow corrupts the    CPA, Pythia, DFI
                      copy bound, bending the overflow check
pointer_dualism       Listing 3: overflow of the input buffer   CPA, Pythia, DFI
                      into the stride meta[0] misdirects `*p`
pointer_misdirection  §3 pure-dataflow variant: a *legitimate*  CPA only (the conservative
                      scanf value steers `p` onto `m`; no       scheme's completeness
                      overflow ever happens                     claim, §4.2)
heap_overflow         overflow between adjacent heap chunks     CPA, DFI detect;
                      flips a privilege flag                    Pythia *prevents* (isolation)
interprocedural       callee gets() into caller's buffer,       CPA, Pythia, DFI
                      overflow spills into caller's frame
====================  ========================================  ==========================

Beyond the paper's listings, three scenarios model the related-work
attack families the campaign fuzzer (:mod:`repro.robustness.campaign`)
mutates -- PACStack-style signed-pointer reuse, control-flow bending
through corrupted call operands, and cross-heap-section confusion:

====================  ========================================  ==========================
scenario              attack                                    expected detection
====================  ========================================  ==========================
pac_reuse             overflow splices a pointer signed for     CPA, Pythia, DFI
                      one slot into another slot (genuine MAC,
                      wrong site -- reuse/substitution)
call_bend             overflow corrupts the dispatch selector,  CPA, Pythia, DFI
                      bending the call to the privileged
                      handler
heap_cross            overflow from a shared-section chunk      CPA, DFI detect;
                      into the adjacent ACL word                Pythia *prevents* (isolation)
====================  ========================================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..frontend.driver import compile_source
from ..hardware.cpu import CPU, ExecutionResult
from ..ir.module import Module
from .controller import AttackController, overflow_payload


@dataclass
class Scenario:
    """A victim program plus its scripted exploit."""

    name: str
    description: str
    source: str
    benign_inputs: List[bytes]
    #: builds a fresh controller delivering the exploit
    make_attack: Callable[[], AttackController]
    #: substring present in output iff the attack *succeeded* (bent flow)
    success_marker: bytes
    #: substring present on the benign path
    benign_marker: bytes
    #: schemes expected to detect (trap); others either miss or prevent
    detected_by: Tuple[str, ...] = ("cpa", "pythia", "dfi")
    #: schemes that stop the attack without trapping (e.g. isolation)
    prevented_by: Tuple[str, ...] = ()

    def compile(self) -> Module:
        return compile_source(self.source, name=self.name)

    def run_benign(
        self, module: Module, seed: int = 2024, interpreter: Optional[str] = None
    ) -> ExecutionResult:
        cpu = CPU(module, seed=seed, interpreter=interpreter)
        return cpu.run(inputs=list(self.benign_inputs))

    def run_attack(
        self, module: Module, seed: int = 2024, interpreter: Optional[str] = None
    ) -> ExecutionResult:
        cpu = CPU(
            module, seed=seed, attack=self.make_attack(), interpreter=interpreter
        )
        return cpu.run(inputs=list(self.benign_inputs))

    def attack_succeeded(self, result: ExecutionResult) -> bool:
        return result.ok and self.success_marker in result.output

    def attack_outcome(self, result: ExecutionResult) -> str:
        """``success`` (flow bent), ``detected`` (trap), or ``prevented``."""
        if result.detected:
            return "detected"
        if self.attack_succeeded(result):
            return "success"
        return "prevented"


# ---------------------------------------------------------------------------
# Listing 1: string-buffer overflow -> privilege escalation
# ---------------------------------------------------------------------------

_LISTING1_SOURCE = r"""
// Listing 1 of the paper: the user/admin check is bent by overflowing
// the input buffer `str` into the adjacent `user` credential buffer.
int access_check(char *pwd) {
    char str[16];
    char user[16];
    strcpy(user, pwd);          // verify_user() stand-in
    gets(str);                  // the vulnerable input channel
    if (strncmp(user, "admin", 5) == 0) {
        printf("SUPERUSER\n");  // privileged code
        return 1;
    }
    printf("normal user\n");
    return 0;
}

int main() {
    return access_check("guest");
}
"""


def _listing1_attack() -> AttackController:
    # 16 padding bytes exit `str`, then "admin" lands on `user`.
    return AttackController().add("gets", overflow_payload(b"", 16, b"admin\x00"))


# ---------------------------------------------------------------------------
# Listing 2: ProFTPd-style bound corruption -> information leakage
# ---------------------------------------------------------------------------

_PROFTPD_SOURCE = r"""
// ProFTPd sreplace() distilled: the session state (the copy bound and
// cursor of Listing 2) lives in a struct next to the input buffer.
// The attacker corrupts the bound, the "safe" copy sstrncpy trusts it,
// and the overflow check is bent, leaking the private key.  The
// struct-field loads are exactly the field-insensitive accesses DFI
// cannot reason about.
struct session { int blen; int nread; };

int serve_request(void) {
    char cmd[16];
    struct session sess;
    char out[40];
    char secret[32];
    sess.blen = 8;
    sess.nread = 0;
    strcpy(secret, "PRIVATE-KEY-0xDEADBEEF");
    gets(cmd);                        // CWD input: overflow corrupts sess.blen
    sstrncpy(out, cmd, sess.blen);    // copies attacker-chosen byte count
    if (sess.blen <= 8) {
        printf("request served\n");
        return 0;
    }
    printf("LEAK:%s\n", secret);     // reachable only by bending blen
    return 1;
}

int main() {
    return serve_request();
}
"""


def _proftpd_attack() -> AttackController:
    # 16 bytes fill `cmd`, the next 8 bytes land on sess.blen = 9999.
    blen = (9999).to_bytes(8, "little")
    return AttackController().add("gets", overflow_payload(b"CWD /tmp", 16, blen))


# ---------------------------------------------------------------------------
# Listing 3: pointer/array dualism -- overflow into the stride
# ---------------------------------------------------------------------------

_DUALISM_SOURCE = r"""
// Listing 3 of the paper: the input channel buffer overflows into the
// stride meta[0]; `p = arr + meta[0]` then aliases vals[0] (the `m` of
// the listing), and `*p = n + 1` bends the `m > n` predicate.
int main() {
    int arr[4];
    char kbuf[8];
    int meta[2];
    int vals[2];
    int *p;
    meta[0] = 1;          // the stride `l`
    vals[1] = 5;          // n
    vals[0] = vals[1] - 1; // m = n - 1
    arr[0] = 0;
    gets(kbuf);           // overflow corrupts meta[0]
    p = arr;
    p = p + meta[0];      // pointer arithmetic: DFI's slice stops here
    *p = vals[1] + 1;     // with the right stride, this aliases vals[0]
    if (vals[0] > vals[1]) {
        printf("PRIVILEGED\n");
        return 1;
    }
    printf("ok\n");
    return 0;
}
"""


def _dualism_payload(cpu) -> bytes:
    # Adaptive attacker (§2.5: full layout knowledge): overflow kbuf up
    # to meta[0] and plant the stride that makes arr + stride == &vals[0].
    kbuf = cpu.stack_slot_address("kbuf")
    meta = cpu.stack_slot_address("meta")
    arr = cpu.stack_slot_address("arr")
    vals = cpu.stack_slot_address("vals")
    if None in (kbuf, meta, arr, vals) or meta <= kbuf:
        # Re-layout moved the stride out of reach: spray blindly (this
        # is what tripping the canary looks like from the attacker side).
        return b"A" * 64
    stride = ((vals - arr) // 8) % (1 << 64)
    return overflow_payload(b"7", meta - kbuf, stride.to_bytes(8, "little"))


def _dualism_attack() -> AttackController:
    return AttackController().add("gets", _dualism_payload)


# ---------------------------------------------------------------------------
# §3 variant: pure pointer misdirection, no overflow at all
# ---------------------------------------------------------------------------

_MISDIRECTION_SOURCE = r"""
// The new attack class of §3 in its purest form: the attacker supplies
// a *legitimate* integer; every dataflow step is legal C, yet the
// computed pointer lands on the branch variable.  Only value-level
// integrity (the conservative CPA scheme) catches the forged write.
int main() {
    int arr[4];
    int k = 0;
    int vals[2];
    int *p;
    vals[1] = 5;            // n
    vals[0] = vals[1] - 1;  // m = n - 1
    arr[0] = 0;
    scanf("%d", &k);        // legal input, no overflow
    p = arr;
    p = p + k;              // attacker-steered pointer arithmetic
    *p = vals[1] + 1;       // out-of-bounds store onto vals[0]
    if (vals[0] > vals[1]) {
        printf("PRIVILEGED\n");
        return 1;
    }
    printf("ok\n");
    return 0;
}
"""


def _misdirection_payload(cpu) -> bytes:
    # The attacker supplies the perfectly legal integer k for which
    # arr + k aliases vals[0] -- computed from the live layout.
    arr = cpu.stack_slot_address("arr")
    vals = cpu.stack_slot_address("vals")
    if arr is None or vals is None:
        return b"1"
    return str((vals - arr) // 8).encode()


def _misdirection_attack() -> AttackController:
    return AttackController().add("scanf%d", _misdirection_payload)


# ---------------------------------------------------------------------------
# Heap overflow between adjacent chunks
# ---------------------------------------------------------------------------

_HEAP_SOURCE = r"""
// Two adjacent heap chunks: the request buffer (input channel
// destination) sits right below the session's privilege flag.  A heap
// overflow flips the flag.  Pythia relocates the vulnerable buffer to
// the isolated section, so the overflow can no longer reach the flag.
int main() {
    char *req;
    int *level;
    req = malloc(16);
    level = malloc(8);
    *level = 0;
    gets(req);               // heap overflow source
    if (*level > 0) {
        printf("ADMIN\n");
        return 1;
    }
    printf("guest\n");
    return 0;
}
"""


def _heap_attack() -> AttackController:
    # Chunks are 16-byte aligned with a 16-byte header: payload(16) +
    # header(16) pad, then 8 bytes land on *level.
    flag = (7).to_bytes(8, "little")
    return AttackController().add("gets", overflow_payload(b"GET /", 32, flag))


# ---------------------------------------------------------------------------
# Interprocedural overflow: callee writes the caller's buffer
# ---------------------------------------------------------------------------

_INTERPROC_SOURCE = r"""
// The §4.4 interprocedural case: main passes its buffer by pointer;
// the callee's input channel overflows it back in the caller's frame,
// spilling into the caller's admin flag.
void read_name(char *dest) {
    gets(dest);
}

int main() {
    char name[16];
    int perms[2];
    perms[0] = 0;
    perms[1] = 0;
    read_name(name);
    if (perms[0] != 0) {
        printf("ADMIN\n");
        return 1;
    }
    printf("hello %s\n", name);
    return 0;
}
"""


def _interproc_attack() -> AttackController:
    flag = (1).to_bytes(8, "little")
    return AttackController().add("gets", overflow_payload(b"eve", 16, flag))


# ---------------------------------------------------------------------------
# Signed-pointer reuse/substitution (PACStack's observation)
# ---------------------------------------------------------------------------

_PAC_REUSE_SOURCE = r"""
// Signed-pointer reuse: the public and private registries hold pointers
// into the same account record.  Under cpa both slots are value-signed
// -- but each with its *own* modifier, so splicing the (genuinely
// signed) private pointer into the public slot must fail to
// authenticate.  The attacker never forges a MAC; the overflow merely
// relocates one.
int main() {
    char nick[8];
    int *pubs[1];
    int *privs[1];
    int acct[2];
    acct[0] = 0;
    acct[1] = 0;
    pubs[0] = acct;
    privs[0] = acct + 1;
    gets(nick);
    *pubs[0] = 1;
    if (acct[1] != 0) {
        printf("SUBSTITUTED\n");
        return 1;
    }
    printf("member ok\n");
    return 0;
}
"""


def _pac_reuse_payload(cpu) -> bytes:
    # Adaptive substitution: read the live (possibly signed) bytes of
    # the private slot and splice them over the public slot.  Whatever
    # signature privs[0] carries is replayed verbatim -- the classic
    # reuse attack, no MAC forgery involved.
    nick = cpu.stack_slot_address("nick")
    pubs = cpu.stack_slot_address("pubs")
    privs = cpu.stack_slot_address("privs")
    if None in (nick, pubs, privs) or pubs <= nick:
        return b"A" * 64
    captured = bytes(cpu.memory.read_bytes(privs, 8))
    return overflow_payload(b"eve", pubs - nick, captured)


def _pac_reuse_attack() -> AttackController:
    return AttackController().add("gets", _pac_reuse_payload)


# ---------------------------------------------------------------------------
# Indirect-call operand corruption (control-flow bending)
# ---------------------------------------------------------------------------

_CALL_BEND_SOURCE = r"""
// Control-flow bending via a corrupted dispatch selector: the request
// router picks the handler from route[0], which sits right above the
// input buffer.  The overflow never touches a return address -- it
// bends the *operand* of the dispatch, the non-control-data analogue
// of an indirect-call hijack.
void handle_public(void) { printf("public ok\n"); }
void handle_admin(void)  { printf("CALL-BENT\n"); }
int main() {
    char cmd[8];
    int route[2];
    int i;
    route[0] = 0;
    route[1] = 0;
    for (i = 0; i < 3; i = i + 1) {
        gets(cmd);
        if (route[0] != 0) {
            handle_admin();
            return 1;
        }
        handle_public();
    }
    return 0;
}
"""


def _call_bend_payload(cpu) -> bytes:
    cmd = cpu.stack_slot_address("cmd")
    route = cpu.stack_slot_address("route")
    if None in (cmd, route) or route <= cmd:
        return b"A" * 64
    return overflow_payload(b"ls", route - cmd, (1).to_bytes(8, "little"))


def _call_bend_attack() -> AttackController:
    return AttackController().add("gets", _call_bend_payload)


# ---------------------------------------------------------------------------
# Cross-heap-section confusion
# ---------------------------------------------------------------------------

_HEAP_CROSS_SOURCE = r"""
// Cross-heap-section confusion: the request buffer and the ACL word
// are heap neighbours in the shared section.  Pythia's sectioning
// relocates the vulnerable buffer to the isolated arena, so the
// overflow can no longer reach the ACL -- unless the allocation is
// misrouted back (the campaign's heap.cross fault models exactly
// that, and the secure allocator's section check must then trap).
int main() {
    char *req;
    int *acl;
    req = malloc(16);
    acl = malloc(8);
    *acl = 0;
    gets(req);
    if (*acl != 0) {
        printf("CROSS-SECTION\n");
        return 1;
    }
    printf("sections hold\n");
    return 0;
}
"""


def _heap_cross_attack() -> AttackController:
    # payload(16) + chunk header(16), then 8 bytes land on *acl.
    return AttackController().add(
        "gets", overflow_payload(b"GET /", 32, (1).to_bytes(8, "little"))
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def build_scenarios() -> Dict[str, Scenario]:
    """All attack scenarios, keyed by name."""
    scenarios = [
        Scenario(
            name="privilege_escalation",
            description="Listing 1: gets() overflow flips the admin check",
            source=_LISTING1_SOURCE,
            benign_inputs=[b"hello"],
            make_attack=_listing1_attack,
            success_marker=b"SUPERUSER",
            benign_marker=b"normal user",
        ),
        Scenario(
            name="proftpd_leak",
            description="Listing 2: bound corruption bends the overflow check",
            source=_PROFTPD_SOURCE,
            benign_inputs=[b"CWD /home"],
            make_attack=_proftpd_attack,
            success_marker=b"LEAK:",
            benign_marker=b"request served",
            detected_by=("cpa", "pythia"),  # DFI: field-insensitive miss
        ),
        Scenario(
            name="pointer_dualism",
            description="Listing 3: overflow into the stride misdirects *p",
            source=_DUALISM_SOURCE,
            benign_inputs=[b"1"],
            make_attack=_dualism_attack,
            success_marker=b"PRIVILEGED",
            benign_marker=b"ok",
        ),
        Scenario(
            name="pointer_misdirection",
            description="§3: legal-dataflow pointer misdirection (no overflow)",
            source=_MISDIRECTION_SOURCE,
            benign_inputs=[b"1"],
            make_attack=_misdirection_attack,
            success_marker=b"PRIVILEGED",
            benign_marker=b"ok",
            detected_by=("cpa",),
        ),
        Scenario(
            name="heap_overflow",
            description="adjacent heap chunks: overflow flips the privilege flag",
            source=_HEAP_SOURCE,
            benign_inputs=[b"GET /index"],
            make_attack=_heap_attack,
            success_marker=b"ADMIN",
            benign_marker=b"guest",
            detected_by=("cpa", "dfi"),
            prevented_by=("pythia",),
        ),
        Scenario(
            name="interprocedural",
            description="callee input channel overflows the caller's frame",
            source=_INTERPROC_SOURCE,
            benign_inputs=[b"alice"],
            make_attack=_interproc_attack,
            success_marker=b"ADMIN",
            benign_marker=b"hello",
        ),
        Scenario(
            name="pac_reuse",
            description="signed-pointer reuse: splice a signed value between slots",
            source=_PAC_REUSE_SOURCE,
            benign_inputs=[b"alice"],
            make_attack=_pac_reuse_attack,
            success_marker=b"SUBSTITUTED",
            benign_marker=b"member ok",
        ),
        Scenario(
            name="call_bend",
            description="call bending: overflow corrupts the dispatch selector",
            source=_CALL_BEND_SOURCE,
            benign_inputs=[b"a", b"b", b"c"],
            make_attack=_call_bend_attack,
            success_marker=b"CALL-BENT",
            benign_marker=b"public ok",
        ),
        Scenario(
            name="heap_cross",
            description="cross-section confusion: shared-heap overflow onto the ACL",
            source=_HEAP_CROSS_SOURCE,
            benign_inputs=[b"GET /x"],
            make_attack=_heap_cross_attack,
            success_marker=b"CROSS-SECTION",
            benign_marker=b"sections hold",
            detected_by=("cpa", "dfi"),
            prevented_by=("pythia",),
        ),
    ]
    return {s.name: s for s in scenarios}
