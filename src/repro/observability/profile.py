"""Sampling-free profiler view over the interpreter tiers.

The simulated CPU already retires exact step and cycle counts, so
profiling here is *attribution*, not statistical sampling: the CPU,
when given an :class:`ExecutionProfiler`, reports

- per-function **self and inclusive** steps/cycles (deltas of the
  architectural counters read at call entry/exit -- one pair of reads
  per dynamic call, never per instruction);
- per-basic-block steps/cycles under the block tier, whose driver
  dispatches one generated function per block execution and therefore
  attributes whole blocks in one batched delta (the decoded and
  reference tiers run blocks inside one loop and attribute at function
  granularity only);
- trap events (which defense fired, where the run ended).

Attribution only *reads* the counters the interpreter maintains, so a
profiled run retires bit-identical cycles, steps, and opcode counts to
an unprofiled one -- the golden observability tests pin that down.
Opcode histograms and PAC/DFI dynamic counts come straight from the
:class:`~repro.hardware.cpu.ExecutionResult`.

Recursion caveat: inclusive numbers count a frame's full subtree, so a
recursive function's inclusive total can exceed the program total; self
numbers always add up exactly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Schema tag for serialized profile reports.
PROFILE_SCHEMA = "repro-profile-v1"


class ExecutionProfiler:
    """Collects per-function / per-block attribution for one run."""

    __slots__ = ("functions", "blocks", "traps", "_stack")

    def __init__(self):
        #: name -> [calls, self_steps, self_cycles, incl_steps, incl_cycles]
        self.functions: Dict[str, List[float]] = {}
        #: "function:block" -> [executions, steps, cycles]
        self.blocks: Dict[str, List[float]] = {}
        self.traps: List[Dict[str, str]] = []
        #: open frames: [name, steps_at_entry, cycles_at_entry,
        #:               child_steps, child_cycles]
        self._stack: List[List[float]] = []

    # -- hooks called by the CPU -------------------------------------------

    def enter(self, name: str, steps: int, cycles: float) -> None:
        self._stack.append([name, steps, cycles, 0, 0.0])

    def exit(self, steps: int, cycles: float) -> None:
        name, steps0, cycles0, child_steps, child_cycles = self._stack.pop()
        incl_steps = steps - steps0
        incl_cycles = cycles - cycles0
        record = self.functions.get(name)
        if record is None:
            record = self.functions[name] = [0, 0, 0.0, 0, 0.0]
        record[0] += 1
        record[1] += incl_steps - child_steps
        record[2] += incl_cycles - child_cycles
        record[3] += incl_steps
        record[4] += incl_cycles
        if self._stack:
            parent = self._stack[-1]
            parent[3] += incl_steps
            parent[4] += incl_cycles

    def block(self, label: str, steps: int, cycles: float) -> None:
        record = self.blocks.get(label)
        if record is None:
            self.blocks[label] = [1, steps, cycles]
        else:
            record[0] += 1
            record[1] += steps
            record[2] += cycles

    def trap(self, status: str, detail: str) -> None:
        self.traps.append({"status": status, "detail": detail})

    # -- exports -----------------------------------------------------------

    def block_counts(self) -> Dict[str, float]:
        """Full ``"function:block" -> executions`` map, untruncated.

        This is what the trace tier's region selection consumes
        (``CPU(..., trace_profile=...)`` /
        :func:`repro.hardware.tracec.trace_compile`): the ``blocks``
        list in :meth:`report` keeps only the top-N and so must not be
        used for compilation decisions.
        """
        return {label: record[0] for label, record in self.blocks.items()}

    # -- reporting ---------------------------------------------------------

    def report(self, result: Optional[Any] = None, top: int = 10) -> Dict[str, Any]:
        """JSON-able digest: hottest functions/blocks plus run counters."""
        functions = sorted(
            self.functions.items(), key=lambda item: -item[1][2]
        )[:top]
        blocks = sorted(self.blocks.items(), key=lambda item: -item[1][2])[:top]
        out: Dict[str, Any] = {
            "schema": PROFILE_SCHEMA,
            "functions": [
                {
                    "name": name,
                    "calls": record[0],
                    "self_steps": record[1],
                    "self_cycles": record[2],
                    "inclusive_steps": record[3],
                    "inclusive_cycles": record[4],
                }
                for name, record in functions
            ],
            "blocks": [
                {
                    "label": label,
                    "executions": record[0],
                    "steps": record[1],
                    "cycles": record[2],
                }
                for label, record in blocks
            ],
            "traps": list(self.traps),
            # Untruncated execution counts, so a saved report can feed
            # trace-tier region selection (--profile-out / --profile-in).
            "block_counts": self.block_counts(),
        }
        if result is not None:
            opcodes = sorted(
                result.opcode_counts.items(), key=lambda item: -item[1]
            )[:top]
            out["opcodes"] = [
                {"opcode": name, "count": count} for name, count in opcodes
            ]
            out["totals"] = {
                "steps": result.steps,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "ipc": result.ipc,
                "pac_sign": result.pac_sign_count,
                "pac_auth": result.pac_auth_count,
                "dfi_chkdef": result.opcode_counts.get("dfi.chkdef", 0),
                "status": result.status,
                "interpreter": result.interpreter,
            }
        return out


def hot_block_counts(report: Dict[str, Any]) -> Optional[Dict[str, float]]:
    """Recover the execution-count map from a serialized profile report.

    Prefers the untruncated ``block_counts`` key; reports written before
    it existed fall back to the truncated ``blocks`` list (still usable
    for region selection -- the dropped tail is cold by construction).
    Returns ``None`` when the report carries no block attribution at
    all, e.g. one taken under the decoded or reference tier.
    """
    counts = report.get("block_counts")
    if isinstance(counts, dict) and counts:
        return {
            str(label): float(count)
            for label, count in counts.items()
            if isinstance(count, (int, float))
        }
    blocks = report.get("blocks")
    if isinstance(blocks, list) and blocks:
        out: Dict[str, float] = {}
        for entry in blocks:
            if not isinstance(entry, dict):
                continue
            label = entry.get("label")
            executions = entry.get("executions")
            if isinstance(label, str) and isinstance(executions, (int, float)):
                out[label] = float(executions)
        if out:
            return out
    return None


def _fraction(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole > 0 else "    -"


def format_report(report: Dict[str, Any]) -> List[str]:
    """Render a profile report as the aligned text table the CLI prints."""
    lines: List[str] = []
    totals = report.get("totals") or {}
    total_cycles = float(totals.get("cycles", 0.0))
    total_steps = int(totals.get("steps", 0))
    if totals:
        lines.append(
            f"run: status={totals['status']} interpreter={totals['interpreter']} "
            f"steps={total_steps} cycles={total_cycles:.0f} "
            f"ipc={totals['ipc']:.2f} pa={totals['pac_sign'] + totals['pac_auth']} "
            f"dfi={totals['dfi_chkdef']}"
        )
    functions = report.get("functions") or []
    if functions:
        lines.append("hot functions (by self cycles):")
        lines.append(
            f"  {'function':24s} {'calls':>8s} {'self-steps':>11s} "
            f"{'self-cycles':>12s} {'cyc%':>6s} {'incl-cycles':>12s}"
        )
        for entry in functions:
            lines.append(
                f"  {entry['name']:24s} {entry['calls']:8d} "
                f"{entry['self_steps']:11d} {entry['self_cycles']:12.0f} "
                f"{_fraction(entry['self_cycles'], total_cycles):>6s} "
                f"{entry['inclusive_cycles']:12.0f}"
            )
    blocks = report.get("blocks") or []
    if blocks:
        # Under the trace tier the driver attributes whole regions to
        # their header label, so the table heading says what the rows
        # actually are; every other tier keeps the historical heading.
        if totals.get("interpreter") == "trace":
            lines.append("hot regions (trace tier, by header, by cycles):")
        else:
            lines.append("hot blocks (block tier, by cycles):")
        lines.append(
            f"  {'block':32s} {'execs':>8s} {'steps':>11s} "
            f"{'cycles':>12s} {'cyc%':>6s}"
        )
        for entry in blocks:
            lines.append(
                f"  {entry['label']:32s} {entry['executions']:8d} "
                f"{entry['steps']:11d} {entry['cycles']:12.0f} "
                f"{_fraction(entry['cycles'], total_cycles):>6s}"
            )
    opcodes = report.get("opcodes") or []
    if opcodes:
        lines.append("opcode histogram (top):")
        for entry in opcodes:
            lines.append(
                f"  {entry['opcode']:16s} {entry['count']:12d} "
                f"{_fraction(entry['count'], total_steps):>6s}"
            )
    for trap in report.get("traps") or []:
        lines.append(f"trap: {trap['status']}: {trap['detail']}")
    return lines
