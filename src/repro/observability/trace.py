"""Nested-span tracing with a Chrome trace-event / Perfetto exporter.

One :class:`Tracer` collects **spans** (timed regions: compile phases,
per-scheme executions, suite tasks) and **instants** (point events:
cache hits, fault sites, traps) for one process.  Spans nest through a
context-manager API; timestamps come from :func:`time.perf_counter_ns`
(monotonic, immune to wall-clock steps) and every event carries the
recording process and thread id, so traces gathered in suite worker
processes merge into one coherent timeline (fork shares the monotonic
epoch on the platforms this repo targets).

The disabled path is the common one and must cost nearly nothing: the
process-global tracer defaults to :data:`NULL_TRACER`, whose ``span``
returns one shared no-op context manager -- entering a span when
tracing is off is two trivial method calls and allocates nothing.

Export is the Chrome trace-event JSON array format (wrapped in a
``traceEvents`` object), loadable directly in Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``:

- spans become complete events (``"ph": "X"``) with microsecond
  ``ts``/``dur``;
- instants become ``"ph": "i"`` events with process scope;
- flow start/finish events (``"ph": "s"``/``"f"``) tie spans together
  across processes -- the serve front-end starts a flow under its
  ``serve:op`` span and the worker finishes it inside its own span, so
  Perfetto draws one arrow following a request over the fork boundary;
- per-process metadata events (``"ph": "M"``) name each process.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

#: Top-level schema tag stamped into exported trace files (the
#: observability checker and CI validate against it).
TRACE_SCHEMA = "repro-trace-v1"


class Span:
    """One open span; records itself on the tracer when exited."""

    __slots__ = ("_tracer", "name", "category", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str, args):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self._start = 0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter_ns()
        self._tracer.add_complete(
            self.name, self.category, self._start, end - self._start, self.args
        )


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects trace events for one process.

    Events are stored as plain dicts in Chrome trace-event shape (with
    nanosecond ``ts``/``dur``; the exporter converts to microseconds),
    so worker processes can pickle them back verbatim and
    :func:`chrome_trace` needs no per-event translation beyond units.
    """

    enabled = True

    def __init__(self, process_name: str = "repro"):
        self.process_name = process_name
        self.pid = os.getpid()
        self.events: List[Dict[str, Any]] = []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, category: str = "repro", **args) -> Span:
        """A context manager timing one nested region."""
        return Span(self, name, category, args or None)

    def add_complete(
        self,
        name: str,
        category: str,
        start_ns: int,
        duration_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one finished span (used by :class:`Span` and by the
        phase helper, which measures once and feeds both the timings
        dict and the trace)."""
        event = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": start_ns,
            "dur": duration_ns,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def instant(self, name: str, category: str = "repro", **args) -> None:
        """Record one point event (cache hit, fault site, trap)."""
        event = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "p",
            "ts": time.perf_counter_ns(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def flow(
        self, name: str, flow_id: str, phase: str = "s", category: str = "serve", **args
    ) -> None:
        """Record one flow endpoint (``phase`` ``"s"`` start, ``"f"`` finish).

        Both endpoints of a flow carry the same ``flow_id`` (the serve
        layer uses the request's correlation id), which is how a
        front-end span and the worker span that served it join into
        one arrow in the exported trace.
        """
        if phase not in ("s", "t", "f"):
            raise ValueError(f"flow phase must be 's', 't', or 'f', got {phase!r}")
        event = {
            "name": name,
            "cat": category,
            "ph": phase,
            "id": flow_id,
            "ts": time.perf_counter_ns(),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if phase == "f":
            # Bind the finish to the enclosing slice, not the next one.
            event["bp"] = "e"
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    # -- merging -----------------------------------------------------------

    def adopt(self, events: Sequence[Dict[str, Any]]) -> None:
        """Merge events recorded by another tracer (a worker process)."""
        self.events.extend(events)


class NullTracer:
    """Tracing turned off: every operation is a near-free no-op."""

    enabled = False
    events: List[Dict[str, Any]] = []

    def span(self, name: str, category: str = "repro", **args) -> _NullSpan:
        return _NULL_SPAN

    def add_complete(self, name, category, start_ns, duration_ns, args=None) -> None:
        return None

    def instant(self, name: str, category: str = "repro", **args) -> None:
        return None

    def flow(self, name, flow_id, phase="s", category="serve", **args) -> None:
        return None

    def adopt(self, events) -> None:
        return None


NULL_TRACER = NullTracer()


def chrome_trace(
    events: Sequence[Dict[str, Any]], process_names: Optional[Dict[int, str]] = None
) -> Dict[str, Any]:
    """Convert recorded events to a Chrome trace-event JSON object.

    Timestamps are rebased to the earliest event and converted from
    nanoseconds to the microseconds the format specifies.  Process
    metadata events name each pid (``repro[<pid>]`` by default) so
    Perfetto groups worker tracks legibly.
    """
    base = min((event["ts"] for event in events), default=0)
    out: List[Dict[str, Any]] = []
    pids = sorted({event["pid"] for event in events})
    for pid in pids:
        name = (process_names or {}).get(pid, f"repro[{pid}]")
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for event in events:
        converted = dict(event)
        converted["ts"] = (event["ts"] - base) / 1000.0
        if "dur" in converted:
            converted["dur"] = converted["dur"] / 1000.0
        out.append(converted)
    return {
        "schema": TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": out,
    }


def write_trace(
    path: str,
    events: Sequence[Dict[str, Any]],
    process_names: Optional[Dict[int, str]] = None,
) -> None:
    """Write ``events`` as a Chrome-trace JSON file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events, process_names), handle, indent=2)
        handle.write("\n")
