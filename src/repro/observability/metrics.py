"""Counters, gauges, and histograms with one JSON snapshot format.

A :class:`MetricsRegistry` is a process-local bag of named metrics:

- **counters** -- monotonically increasing integers (cache hits,
  executed PAC instructions, quarantined tasks);
- **gauges** -- last-written values (effective job fan-out, whether the
  compilation cache degraded to off);
- **histograms** -- running ``count/sum/min/max`` summaries of repeated
  observations (compile phase seconds, per-run wall time), plus a
  log-bucketed quantile sketch (see :mod:`.aggregate`) so consumers
  can render p50/p90/p99 from the snapshot alone -- ``serve stats``,
  ``repro top``, and ``loadgen`` all read the same buckets, which is
  what keeps their percentiles one source of truth.

Snapshots serialize to a single schema (:data:`METRICS_SCHEMA`) that
the CLI ``--metrics-out`` flag, the suite failure manifest, and the CI
checker all share, and snapshots from worker processes merge
associatively (counters and histogram summaries add; gauges keep the
incoming write), so a parallel suite aggregates to the same totals a
serial one records directly.

Updates are plain dict operations on the process-global registry, and
every call site sits on a compile/measure boundary rather than in an
interpreter loop, so keeping collection always-on costs nothing
measurable; "disabled" simply means the snapshot is never exported.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Optional

from .aggregate import bucket_index, percentile_from_buckets

#: Schema tag stamped into every snapshot (validated by the checker).
METRICS_SCHEMA = "repro-metrics-v1"


class MetricsRegistry:
    """One process's named counters, gauges, and histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> [count, total, minimum, maximum]
        self.histograms: Dict[str, list] = {}

    # -- updates -----------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        stats = self.histograms.get(name)
        if stats is None:
            self.histograms[name] = [1, value, value, value, {bucket_index(value): 1}]
            return
        stats[0] += 1
        stats[1] += value
        if value < stats[2]:
            stats[2] = value
        if value > stats[3]:
            stats[3] = value
        index = bucket_index(value)
        stats[4][index] = stats[4].get(index, 0) + 1

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The canonical JSON-able snapshot of this registry."""
        histograms = {}
        for name, (count, total, minimum, maximum, buckets) in self.histograms.items():
            histograms[name] = {
                "count": count,
                "sum": total,
                "min": minimum,
                "max": maximum,
                "mean": total / count if count else 0.0,
                "buckets": {str(index): n for index, n in sorted(buckets.items())},
            }
        return {
            "schema": METRICS_SCHEMA,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": histograms,
        }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram summaries add; gauges take the incoming
        value (the merged order is the suite's completion order, and
        gauges record "latest state" by definition).
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.inc(name, value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.set_gauge(name, value)
        for name, stats in (snapshot.get("histograms") or {}).items():
            # Pre-sketch snapshots lack "buckets"; fold what's there.
            incoming = {
                int(index): count
                for index, count in (stats.get("buckets") or {}).items()
            }
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = [
                    stats["count"],
                    stats["sum"],
                    stats["min"],
                    stats["max"],
                    incoming,
                ]
            else:
                mine[0] += stats["count"]
                mine[1] += stats["sum"]
                mine[2] = min(mine[2], stats["min"])
                mine[3] = max(mine[3], stats["max"])
                for index, count in incoming.items():
                    mine[4][index] = mine[4].get(index, 0) + count


def validate_snapshot(snapshot: Any) -> Optional[str]:
    """First problem with a metrics snapshot, or ``None`` when valid.

    Shared by the in-repo tests and ``tools/check_observability.py`` so
    the CI gate and the unit tests cannot drift apart.
    """
    if not isinstance(snapshot, dict):
        return "snapshot is not an object"
    if snapshot.get("schema") != METRICS_SCHEMA:
        return f"schema is {snapshot.get('schema')!r}, expected {METRICS_SCHEMA!r}"
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            return f"{section!r} missing or not an object"
    for name, value in snapshot["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            return f"counter {name!r} is not a non-negative integer: {value!r}"
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return f"gauge {name!r} is not numeric: {value!r}"
        if isinstance(value, float) and not math.isfinite(value):
            return f"gauge {name!r} is not finite: {value!r}"
    for name, stats in snapshot["histograms"].items():
        if not isinstance(stats, dict):
            return f"histogram {name!r} is not an object"
        for key in ("count", "sum", "min", "max", "mean"):
            if not isinstance(stats.get(key), (int, float)):
                return f"histogram {name!r} lacks numeric {key!r}"
        if stats["count"] < 1:
            return f"histogram {name!r} has empty count"
        if stats["min"] > stats["max"]:
            return f"histogram {name!r} has min > max"
        buckets = stats.get("buckets")
        if buckets is not None:
            if not isinstance(buckets, dict):
                return f"histogram {name!r} 'buckets' is not an object"
            for index, count in buckets.items():
                if (
                    not isinstance(count, int)
                    or isinstance(count, bool)
                    or count < 0
                ):
                    return (
                        f"histogram {name!r} bucket {index!r} is not a "
                        f"non-negative integer: {count!r}"
                    )
                try:
                    int(index)
                except (TypeError, ValueError):
                    return f"histogram {name!r} has non-integer bucket key {index!r}"
    return None


def histogram_percentiles(
    stats: Dict[str, Any], scale: float = 1.0
) -> Optional[Dict[str, float]]:
    """p50/p90/p99 of one snapshot histogram, or ``None`` without buckets.

    Estimates come from the sketch buckets but are clamped to the
    exact recorded min/max, then scaled (``1e3`` renders seconds as
    milliseconds).  Consumers that render latency tables -- ``serve
    stats``, ``repro top`` -- all go through here.
    """
    buckets = stats.get("buckets")
    if not buckets:
        return None

    def clamp(value: float) -> float:
        return min(max(value, stats["min"]), stats["max"]) * scale

    return {
        "count": stats["count"],
        "mean": stats["mean"] * scale,
        "p50": clamp(percentile_from_buckets(buckets, 50.0)),
        "p90": clamp(percentile_from_buckets(buckets, 90.0)),
        "p99": clamp(percentile_from_buckets(buckets, 99.0)),
        "max": stats["max"] * scale,
    }


def write_metrics(path: str, snapshot: Dict[str, Any]) -> None:
    """Write one snapshot as JSON at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def publish_execution(registry: MetricsRegistry, result: Any, scheme: str = "") -> None:
    """Fold one execution's architectural counters into ``registry``.

    ``result`` is duck-typed on :class:`repro.hardware.cpu.ExecutionResult`
    so this module stays import-free of the hardware layer.
    """
    counts = result.opcode_counts
    registry.inc("exec.runs")
    registry.inc("exec.steps", result.steps)
    registry.inc("exec.instructions", result.instructions)
    registry.inc("exec.pac_sign", counts.get("pac.sign", 0))
    registry.inc("exec.pac_auth", counts.get("pac.auth", 0))
    registry.inc("exec.dfi_setdef", counts.get("dfi.setdef", 0))
    registry.inc("exec.dfi_chkdef", counts.get("dfi.chkdef", 0))
    registry.inc("exec.sec_assert", counts.get("sec.assert", 0))
    if result.status != "ok":
        registry.inc(f"exec.trap.{result.status}")
    registry.observe("exec.cycles", result.cycles)
    registry.observe("exec.wall_seconds", result.wall_seconds)
    if scheme:
        registry.inc(f"exec.scheme.{scheme}.steps", result.steps)
