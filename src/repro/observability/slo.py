"""Declarative SLO targets with burn-rate evaluation.

An :class:`SloPolicy` names the service levels the serve daemon is
held to -- p99 latency, error rate, and a trap-rate anomaly bound --
and this module turns observations into :class:`SloBreach` records
two ways:

- **online**: the daemon's SLO loop feeds rolling-window summaries
  (:class:`~repro.observability.aggregate.WindowAggregator`) through
  :func:`evaluate_window` every few seconds and emits one
  ``slo-breach`` event per newly burning target;
- **offline**: ``tools/check_slo.py`` feeds a loadgen report (and
  optionally an events file) through :func:`evaluate_report` to gate
  CI -- exit 2 on any breach.

**Burn rate** follows the SRE convention: ``observed / budget``.  A
burn rate of 1.0 consumes the budget exactly as fast as allowed; the
policy's ``burn_threshold`` (default 1.0) says how much faster than
that counts as a breach, so a CI gate can be strict (1.0) while a
paging rule could tolerate short spikes (e.g. 2.0 over a short
window).  Latency burn is ``p99 / max_p99_ms``, error burn is
``error_rate / max_error_rate`` (an ``max_error_rate`` of 0 makes any
error an immediate breach), and trap-rate burn is
``trap_rate / (trap_rate_factor * baseline_trap_rate)`` -- traps are
*expected* under attack replay, so only an anomaly versus the
baseline window is a signal, not the absolute count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Small allowance under which a baseline trap rate is considered
#: "quiet": with no baseline signal, any sustained trap traffic above
#: this absolute rate (traps per request) is anomalous.
QUIET_BASELINE_TRAP_RATE = 0.01


@dataclass(frozen=True)
class SloBreach:
    """One target burning past its threshold."""

    target: str
    observed: float
    budget: float
    burn_rate: float
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "observed": round(self.observed, 6),
            "budget": round(self.budget, 6),
            "burn_rate": round(self.burn_rate, 4),
            "message": self.message,
        }


@dataclass(frozen=True)
class SloPolicy:
    """Declarative targets; ``None`` disables a target."""

    #: p99 latency bound, milliseconds.
    max_p99_ms: Optional[float] = None
    #: failed-request fraction bound (0 means "no errors allowed").
    max_error_rate: Optional[float] = None
    #: trap-rate anomaly bound: current trap rate (traps per request)
    #: may be at most this factor times the baseline window's rate.
    trap_rate_factor: Optional[float] = None
    #: burn rate at or above which a target counts as breached.
    burn_threshold: float = 1.0
    #: seconds of the short (burn) window the online evaluator reads.
    burn_window_s: float = 15.0
    description: str = field(default="", compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_p99_ms": self.max_p99_ms,
            "max_error_rate": self.max_error_rate,
            "trap_rate_factor": self.trap_rate_factor,
            "burn_threshold": self.burn_threshold,
            "burn_window_s": self.burn_window_s,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloPolicy":
        if not isinstance(data, dict):
            raise ValueError("SLO policy is not an object")
        known = {
            "max_p99_ms",
            "max_error_rate",
            "trap_rate_factor",
            "burn_threshold",
            "burn_window_s",
            "description",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SLO policy field(s): {', '.join(sorted(unknown))}"
            )
        for name in known - {"description"}:
            value = data.get(name)
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                raise ValueError(f"SLO policy field {name!r} is not numeric")
        return cls(**data)

    @classmethod
    def from_json_file(cls, path: str) -> "SloPolicy":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid SLO policy JSON in {path}: {exc}") from exc
        return cls.from_dict(data)


def _burn(observed: float, budget: float) -> float:
    """Burn rate with a zero-budget convention: any spend is infinite."""
    if budget <= 0:
        return float("inf") if observed > 0 else 0.0
    return observed / budget


def _check(
    breaches: List[SloBreach],
    threshold: float,
    target: str,
    observed: float,
    budget: float,
    unit: str,
) -> None:
    burn = _burn(observed, budget)
    # Strictly past the (threshold-scaled) budget: sitting exactly at
    # the target is within SLO, and a zero budget forbids any spend.
    if observed > budget * threshold:
        breaches.append(
            SloBreach(
                target=target,
                observed=observed,
                budget=budget,
                burn_rate=burn,
                message=(
                    f"{target}: {observed:.4g}{unit} vs budget "
                    f"{budget:.4g}{unit} (burn rate {burn:.2f})"
                ),
            )
        )


def evaluate_report(
    policy: SloPolicy,
    report: Dict[str, Any],
    trap_count: Optional[int] = None,
    baseline_trap_rate: Optional[float] = None,
) -> List[SloBreach]:
    """Evaluate one loadgen report (``loadgen --report-out`` JSON).

    ``trap_count`` (usually counted from an events file) and
    ``baseline_trap_rate`` arm the trap-anomaly target; without them
    only latency and error rate are checked.
    """
    breaches: List[SloBreach] = []
    requests = int(report.get("requests") or 0)
    if policy.max_p99_ms is not None:
        _check(
            breaches,
            policy.burn_threshold,
            "p99_latency",
            float(report.get("p99_ms") or 0.0),
            policy.max_p99_ms,
            "ms",
        )
    if policy.max_error_rate is not None and requests > 0:
        error_rate = float(report.get("failures") or 0) / requests
        _check(
            breaches,
            policy.burn_threshold,
            "error_rate",
            error_rate,
            policy.max_error_rate,
            "",
        )
    if (
        policy.trap_rate_factor is not None
        and trap_count is not None
        and requests > 0
    ):
        trap_rate = trap_count / requests
        baseline = (
            baseline_trap_rate
            if baseline_trap_rate is not None
            else QUIET_BASELINE_TRAP_RATE
        )
        _check(
            breaches,
            policy.burn_threshold,
            "trap_rate",
            trap_rate,
            policy.trap_rate_factor * baseline,
            "",
        )
    return breaches


def evaluate_window(
    policy: SloPolicy,
    burn_summary: Dict[str, Any],
    baseline_summary: Optional[Dict[str, Any]] = None,
) -> List[SloBreach]:
    """Evaluate a short burn window against the policy (and baseline).

    ``burn_summary``/``baseline_summary`` are
    :meth:`WindowAggregator.summary` dicts; the daemon passes the last
    ``burn_window_s`` seconds as the burn window and the full window
    as the trap-rate baseline.
    """
    breaches: List[SloBreach] = []
    counters = burn_summary.get("counters") or {}
    requests = int(counters.get("requests") or 0)
    if requests == 0:
        return breaches
    if policy.max_p99_ms is not None:
        latency = (burn_summary.get("quantiles") or {}).get("latency") or {}
        p99_ms = float(latency.get("p99") or 0.0) * 1e3
        _check(
            breaches,
            policy.burn_threshold,
            "p99_latency",
            p99_ms,
            policy.max_p99_ms,
            "ms",
        )
    if policy.max_error_rate is not None:
        error_rate = int(counters.get("errors") or 0) / requests
        _check(
            breaches,
            policy.burn_threshold,
            "error_rate",
            error_rate,
            policy.max_error_rate,
            "",
        )
    if policy.trap_rate_factor is not None:
        trap_rate = int(counters.get("traps") or 0) / requests
        base_counters = (baseline_summary or {}).get("counters") or {}
        base_requests = int(base_counters.get("requests") or 0)
        baseline_rate = (
            int(base_counters.get("traps") or 0) / base_requests
            if base_requests
            else 0.0
        )
        baseline_rate = max(baseline_rate, QUIET_BASELINE_TRAP_RATE)
        _check(
            breaches,
            policy.burn_threshold,
            "trap_rate",
            trap_rate,
            policy.trap_rate_factor * baseline_rate,
            "",
        )
    return breaches


def count_traps(events: List[Dict[str, Any]]) -> int:
    """Trap events in a loaded ``repro-events-v1`` record list."""
    return sum(1 for record in events if record.get("type") == "trap")
