"""Rolling-window aggregation: counter rates + quantile sketches.

Two building blocks sit here:

- a **log-bucketed quantile sketch** (:class:`QuantileSketch`): values
  map to geometric buckets (ratio :data:`BUCKET_BASE` per step, ~9%
  relative error), so percentile estimation over millions of latency
  samples costs a small dict instead of the sample list.  The same
  bucketing backs the optional ``buckets`` field of
  ``repro-metrics-v1`` histograms, which is how ``serve stats`` renders
  p50/p90/p99 from the metrics snapshot -- one source of truth with
  ``loadgen`` and ``repro top``;
- a **rolling time-window aggregator** (:class:`WindowAggregator`):
  counters and sketches sliced into fixed time buckets that expire as
  the window slides, yielding req/s, error rates, per-scheme trap
  rates, and latency percentiles over "the last N seconds" -- the live
  view ``repro top`` polls and the signal the SLO burn-rate evaluator
  (:mod:`.slo`) watches.

Stdlib-only; time is injectable (``now=``) so every behavior is
deterministic under test.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional, Tuple

#: Geometric ratio between adjacent bucket upper bounds.  2**(1/8)
#: keeps worst-case relative error under ~4.5% (half a bucket) while a
#: nanosecond..hour range still fits in ~350 buckets.
BUCKET_BASE = 2.0 ** 0.125

_LOG_BASE = math.log(BUCKET_BASE)

#: Bucket index reserved for zero and negative values.
ZERO_BUCKET = -(10 ** 6)


def bucket_index(value: float) -> int:
    """The sketch bucket holding ``value`` (seconds, bytes, ...)."""
    if value <= 0.0:
        return ZERO_BUCKET
    return int(math.ceil(math.log(value) / _LOG_BASE - 1e-9))


def bucket_value(index: int) -> float:
    """A representative value for one bucket (geometric midpoint)."""
    if index == ZERO_BUCKET:
        return 0.0
    upper = BUCKET_BASE ** index
    return upper / math.sqrt(BUCKET_BASE)


def percentile_from_buckets(buckets: Dict[Any, int], q: float) -> float:
    """Estimate the ``q``-th percentile (0..100) from bucket counts.

    Accepts int or string bucket keys (JSON round-trips dict keys to
    strings), so it can read sketches straight out of a
    ``repro-metrics-v1`` snapshot.
    """
    total = 0
    pairs: List[Tuple[int, int]] = []
    for key, count in buckets.items():
        index = int(key)
        count = int(count)
        if count <= 0:
            continue
        pairs.append((index, count))
        total += count
    if total == 0:
        return 0.0
    pairs.sort()
    rank = max(1, math.ceil((q / 100.0) * total))
    seen = 0
    for index, count in pairs:
        seen += count
        if seen >= rank:
            return bucket_value(index)
    return bucket_value(pairs[-1][0])


class QuantileSketch:
    """Mergeable log-bucketed histogram with percentile queries."""

    __slots__ = ("buckets", "count", "total", "minimum", "maximum")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "QuantileSketch") -> None:
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (0..100); exact min/max at the edges."""
        if self.count == 0:
            return 0.0
        if q <= 0:
            return self.minimum
        if q >= 100:
            return self.maximum
        estimate = percentile_from_buckets(self.buckets, q)
        # The sketch cannot know more than the true extremes.
        return min(max(estimate, self.minimum), self.maximum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(50.0),
            "p90": self.quantile(90.0),
            "p99": self.quantile(99.0),
            "max": self.maximum if self.count else 0.0,
        }


class WindowAggregator:
    """Counters and sketches over a sliding time window.

    The window is ``buckets`` fixed slices of ``window_s / buckets``
    seconds each, keyed by monotonic time; recording into the current
    slice is O(1) and expiry is implicit (old slices fall out of the
    considered range at read time, and are pruned on write).  Reads
    merge the live slices, optionally restricted to a shorter horizon
    -- which is what lets the SLO evaluator compare a short burn
    window against the longer baseline window without keeping two
    aggregators in lockstep.
    """

    def __init__(self, window_s: float = 60.0, buckets: int = 12):
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.window_s = window_s
        self.bucket_s = window_s / buckets
        self._slices: Dict[int, Dict[str, Any]] = {}
        self.started_at = time.monotonic()

    # -- recording ---------------------------------------------------------

    def _slice(self, now: Optional[float]) -> Dict[str, Any]:
        if now is None:
            now = time.monotonic()
        key = int(now // self.bucket_s)
        current = self._slices.get(key)
        if current is None:
            current = self._slices[key] = {"counters": {}, "sketches": {}}
            horizon = key - int(self.window_s // self.bucket_s) - 1
            for stale in [k for k in self._slices if k < horizon]:
                del self._slices[stale]
        return current

    def inc(self, name: str, value: int = 1, now: Optional[float] = None) -> None:
        counters = self._slice(now)["counters"]
        counters[name] = counters.get(name, 0) + value

    def observe(self, name: str, value: float, now: Optional[float] = None) -> None:
        sketches = self._slice(now)["sketches"]
        sketch = sketches.get(name)
        if sketch is None:
            sketch = sketches[name] = QuantileSketch()
        sketch.add(value)

    # -- reads -------------------------------------------------------------

    def _live_keys(self, now: float, horizon_s: Optional[float]) -> List[int]:
        span = self.window_s if horizon_s is None else min(horizon_s, self.window_s)
        newest = int(now // self.bucket_s)
        oldest = int((now - span) // self.bucket_s)
        return [k for k in self._slices if oldest <= k <= newest]

    def totals(
        self, horizon_s: Optional[float] = None, now: Optional[float] = None
    ) -> Tuple[Dict[str, int], Dict[str, QuantileSketch], float]:
        """``(counters, sketches, elapsed_s)`` over the live window.

        ``elapsed_s`` is the effective observation span -- the window
        length capped by how long the aggregator has existed -- so
        rates computed from a young aggregator are not diluted.
        """
        if now is None:
            now = time.monotonic()
        counters: Dict[str, int] = {}
        sketches: Dict[str, QuantileSketch] = {}
        for key in self._live_keys(now, horizon_s):
            data = self._slices[key]
            for name, value in data["counters"].items():
                counters[name] = counters.get(name, 0) + value
            for name, sketch in data["sketches"].items():
                mine = sketches.get(name)
                if mine is None:
                    mine = sketches[name] = QuantileSketch()
                mine.merge(sketch)
        span = self.window_s if horizon_s is None else min(horizon_s, self.window_s)
        elapsed = max(min(span, now - self.started_at), 1e-9)
        return counters, sketches, elapsed

    def summary(
        self, horizon_s: Optional[float] = None, now: Optional[float] = None
    ) -> Dict[str, Any]:
        """JSON-able window digest: totals, per-second rates, quantiles."""
        counters, sketches, elapsed = self.totals(horizon_s, now)
        return {
            "window_s": round(elapsed, 3),
            "counters": dict(sorted(counters.items())),
            "rates": {
                name: round(value / elapsed, 4)
                for name, value in sorted(counters.items())
            },
            "quantiles": {
                name: {
                    key: round(value, 6) for key, value in sketch.summary().items()
                }
                for name, sketch in sorted(sketches.items())
            },
        }


# -- the `repro top` dashboard -------------------------------------------------


def _rate(stats: Dict[str, Any], name: str) -> float:
    return float(((stats.get("window") or {}).get("rates") or {}).get(name, 0.0))


def render_dashboard(stats: Dict[str, Any]) -> List[str]:
    """Render one ``repro top`` frame from an enriched ``stats`` result.

    Pure formatting over the ``stats`` op's JSON -- the dashboard never
    computes its own aggregates, so it can never disagree with
    ``--metrics-out`` or ``loadgen`` (they all read the same snapshot).
    """
    lines: List[str] = []
    window = stats.get("window") or {}
    counters = window.get("counters") or {}
    requests = counters.get("requests", 0)
    errors = counters.get("errors", 0)
    error_rate = (errors / requests) if requests else 0.0
    lines.append(
        f"repro serve @ {stats.get('endpoint', '?')} -- "
        f"up {stats.get('uptime_s', 0):.0f}s, "
        f"{stats.get('workers', 0)} worker(s), "
        f"{stats.get('worker_restarts', 0)} restart(s), "
        f"{stats.get('inflight', 0)} in flight"
    )
    lines.append(
        f"window {window.get('window_s', 0):.0f}s: "
        f"{_rate(stats, 'requests'):6.1f} req/s  "
        f"errors {100 * error_rate:5.1f}%  "
        f"coalesced {counters.get('coalesced', 0)}  "
        f"traps {counters.get('traps', 0)}"
    )
    latency = stats.get("latency_ms") or {}
    if latency:
        lines.append(f"  {'op':10s} {'n':>7s} {'p50ms':>9s} {'p90ms':>9s} {'p99ms':>9s}")
        for op in sorted(latency):
            row = latency[op]
            lines.append(
                f"  {op:10s} {row.get('count', 0):7d} "
                f"{row.get('p50', 0.0):9.1f} {row.get('p90', 0.0):9.1f} "
                f"{row.get('p99', 0.0):9.1f}"
            )
    trap_rows = sorted(
        (name[len("traps."):], value)
        for name, value in counters.items()
        if name.startswith("traps.")
    )
    if trap_rows:
        rendered = "  ".join(f"{scheme}={count}" for scheme, count in trap_rows)
        lines.append(f"  traps/scheme: {rendered}")
    events = stats.get("events") or {}
    if events:
        lines.append(
            f"  events: {events.get('emitted', 0)} emitted, "
            f"{events.get('buffered', 0)} buffered, "
            f"{events.get('dropped', 0)} dropped"
        )
    return lines
