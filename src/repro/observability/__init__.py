"""Unified tracing, metrics, and profiling (`repro.observability`).

One subsystem replaces the repo's bespoke reporting paths:

- :mod:`repro.observability.trace` -- nested spans + instants with a
  Chrome trace-event / Perfetto JSON exporter (``--trace-out``);
- :mod:`repro.observability.metrics` -- counters / gauges / histograms
  with one snapshot schema (``--metrics-out``, suite manifests, CI);
- :mod:`repro.observability.profile` -- per-function / per-block
  step-and-cycle attribution over the interpreter tiers
  (``python -m repro profile``).

The module keeps one process-global tracer and one process-global
metrics registry.  Tracing defaults to :data:`NULL_TRACER` (disabled,
near-zero cost); metrics collection is always on because its call
sites sit on compile/measure boundaries, and "disabled" just means the
snapshot is never exported.  Suite workers install fresh local
instances per task so parent-side merging never double-counts
(see ``perf/runner.py``).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    publish_execution,
    validate_snapshot,
    write_metrics,
)
from .profile import (
    PROFILE_SCHEMA,
    ExecutionProfiler,
    format_report,
    hot_block_counts,
)
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Tracer,
    chrome_trace,
    write_trace,
)

__all__ = [
    "METRICS_SCHEMA",
    "PROFILE_SCHEMA",
    "TRACE_SCHEMA",
    "ExecutionProfiler",
    "MetricsRegistry",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "format_report",
    "get_metrics",
    "hot_block_counts",
    "install_metrics",
    "install_tracer",
    "phase_span",
    "publish_execution",
    "reset_metrics",
    "validate_snapshot",
    "write_metrics",
    "write_trace",
]

_tracer: "Tracer | NullTracer" = NULL_TRACER
_metrics = MetricsRegistry()


def current_tracer() -> "Tracer | NullTracer":
    """The process-global tracer (:data:`NULL_TRACER` when disabled)."""
    return _tracer


def install_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Swap in ``tracer`` globally; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing(process_name: str = "repro") -> Tracer:
    """Install (and return) a fresh live tracer."""
    tracer = Tracer(process_name)
    install_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Return to the no-op tracer."""
    install_tracer(NULL_TRACER)


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _metrics


def install_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap in ``registry`` globally; returns the previous one."""
    global _metrics
    previous = _metrics
    _metrics = registry
    return previous


def reset_metrics() -> MetricsRegistry:
    """Install (and return) an empty registry."""
    return_value = MetricsRegistry()
    install_metrics(return_value)
    return return_value


class phase_span:
    """Time one pipeline phase into *both* a timings dict and the trace.

    The clock is read exactly once at entry and once at exit, and the
    same delta feeds ``timings[key]``, the ``compile.phase.<name>``
    histogram, and the emitted span -- which is what lets ``--timings``
    stderr output and ``--metrics-out`` JSON never disagree (they are
    two views of one measurement).  ``key`` defaults to ``name`` but
    may differ: ``PassManager.timings`` keys bare pass names while the
    span (and the metric) is named ``pass:<name>``, matching the keys
    :class:`repro.core.framework.ProtectionResult.timings` reports.
    """

    __slots__ = ("name", "timings", "key", "category", "_start")

    def __init__(
        self,
        name: str,
        timings: Optional[Dict[str, float]] = None,
        key: Optional[str] = None,
        category: str = "compile",
    ):
        self.name = name
        self.timings = timings
        self.key = key if key is not None else name
        self.category = category
        self._start = 0

    def __enter__(self) -> "phase_span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration_ns = time.perf_counter_ns() - self._start
        seconds = duration_ns / 1e9
        if self.timings is not None:
            self.timings[self.key] = self.timings.get(self.key, 0.0) + seconds
        _metrics.observe(f"compile.phase.{self.name}", seconds)
        _tracer.add_complete(self.name, self.category, self._start, duration_ns)
