"""Unified tracing, metrics, events, and profiling (`repro.observability`).

One subsystem replaces the repo's bespoke reporting paths:

- :mod:`repro.observability.trace` -- nested spans + instants + flow
  events with a Chrome trace-event / Perfetto JSON exporter
  (``--trace-out``);
- :mod:`repro.observability.metrics` -- counters / gauges / histograms
  with one snapshot schema (``--metrics-out``, suite manifests, CI);
- :mod:`repro.observability.events` -- ring-buffered security-event
  pipeline in the ``repro-events-v1`` JSON-lines schema
  (``--events-out``, the serve daemon's ``events`` op);
- :mod:`repro.observability.aggregate` -- rolling-window counter rates
  and quantile sketches (the ``repro top`` dashboard, SLO windows);
- :mod:`repro.observability.slo` -- declarative SLO targets with
  burn-rate evaluation (``tools/check_slo.py``, ``serve --slo``);
- :mod:`repro.observability.audit` -- offline security summaries over
  exported events files (``python -m repro audit``);
- :mod:`repro.observability.profile` -- per-function / per-block
  step-and-cycle attribution over the interpreter tiers
  (``python -m repro profile``).

The module keeps one process-global tracer, one process-global metrics
registry, and one process-global event log.  Tracing defaults to
:data:`NULL_TRACER` (disabled, near-zero cost); metrics and event
collection are always on because their call sites sit on
compile/measure/trap boundaries, and "disabled" just means nothing is
ever exported.  Suite and serve workers install fresh local instances
per task so parent-side merging never double-counts
(see ``perf/runner.py`` and ``serve/worker.py``).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .aggregate import (
    QuantileSketch,
    WindowAggregator,
    bucket_index,
    percentile_from_buckets,
    render_dashboard,
)
from .audit import audit_events, render_audit
from .events import (
    EVENT_TYPES,
    EVENTS_SCHEMA,
    EventLog,
    make_event,
    read_events,
    validate_event,
    write_events,
)
from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    histogram_percentiles,
    publish_execution,
    validate_snapshot,
    write_metrics,
)
from .slo import (
    SloBreach,
    SloPolicy,
    count_traps,
    evaluate_report,
    evaluate_window,
)
from .profile import (
    PROFILE_SCHEMA,
    ExecutionProfiler,
    format_report,
    hot_block_counts,
)
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Tracer,
    chrome_trace,
    write_trace,
)

__all__ = [
    "EVENT_TYPES",
    "EVENTS_SCHEMA",
    "METRICS_SCHEMA",
    "PROFILE_SCHEMA",
    "TRACE_SCHEMA",
    "EventLog",
    "ExecutionProfiler",
    "MetricsRegistry",
    "NullTracer",
    "NULL_TRACER",
    "QuantileSketch",
    "SloBreach",
    "SloPolicy",
    "Tracer",
    "WindowAggregator",
    "audit_events",
    "bucket_index",
    "chrome_trace",
    "count_traps",
    "current_tracer",
    "disable_tracing",
    "enable_tracing",
    "evaluate_report",
    "evaluate_window",
    "format_report",
    "get_event_log",
    "get_metrics",
    "histogram_percentiles",
    "hot_block_counts",
    "install_event_log",
    "install_metrics",
    "install_tracer",
    "make_event",
    "percentile_from_buckets",
    "phase_span",
    "publish_execution",
    "read_events",
    "render_audit",
    "render_dashboard",
    "reset_event_log",
    "reset_metrics",
    "validate_event",
    "validate_snapshot",
    "write_events",
    "write_metrics",
    "write_trace",
]

_tracer: "Tracer | NullTracer" = NULL_TRACER
_metrics = MetricsRegistry()


def current_tracer() -> "Tracer | NullTracer":
    """The process-global tracer (:data:`NULL_TRACER` when disabled)."""
    return _tracer


def install_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Swap in ``tracer`` globally; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def enable_tracing(process_name: str = "repro") -> Tracer:
    """Install (and return) a fresh live tracer."""
    tracer = Tracer(process_name)
    install_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Return to the no-op tracer."""
    install_tracer(NULL_TRACER)


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _metrics


def install_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap in ``registry`` globally; returns the previous one."""
    global _metrics
    previous = _metrics
    _metrics = registry
    return previous


def reset_metrics() -> MetricsRegistry:
    """Install (and return) an empty registry."""
    return_value = MetricsRegistry()
    install_metrics(return_value)
    return return_value


_event_log = EventLog()


def get_event_log() -> EventLog:
    """The process-global security-event log."""
    return _event_log


def install_event_log(log: EventLog) -> EventLog:
    """Swap in ``log`` globally; returns the previous one."""
    global _event_log
    previous = _event_log
    _event_log = log
    return previous


def reset_event_log() -> EventLog:
    """Install (and return) an empty event log."""
    return_value = EventLog()
    install_event_log(return_value)
    return return_value


class phase_span:
    """Time one pipeline phase into *both* a timings dict and the trace.

    The clock is read exactly once at entry and once at exit, and the
    same delta feeds ``timings[key]``, the ``compile.phase.<name>``
    histogram, and the emitted span -- which is what lets ``--timings``
    stderr output and ``--metrics-out`` JSON never disagree (they are
    two views of one measurement).  ``key`` defaults to ``name`` but
    may differ: ``PassManager.timings`` keys bare pass names while the
    span (and the metric) is named ``pass:<name>``, matching the keys
    :class:`repro.core.framework.ProtectionResult.timings` reports.
    """

    __slots__ = ("name", "timings", "key", "category", "_start")

    def __init__(
        self,
        name: str,
        timings: Optional[Dict[str, float]] = None,
        key: Optional[str] = None,
        category: str = "compile",
    ):
        self.name = name
        self.timings = timings
        self.key = key if key is not None else name
        self.category = category
        self._start = 0

    def __enter__(self) -> "phase_span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration_ns = time.perf_counter_ns() - self._start
        seconds = duration_ns / 1e9
        if self.timings is not None:
            self.timings[self.key] = self.timings.get(self.key, 0.0) + seconds
        _metrics.observe(f"compile.phase.{self.name}", seconds)
        _tracer.add_complete(self.name, self.category, self._start, duration_ns)
