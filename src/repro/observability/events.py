"""Security-event pipeline: schema-versioned JSON-lines records.

Pythia's whole point is *detecting* non-control-data attacks, but a
detection that only surfaces as a per-request error code is not an
audit trail.  This module gives every defense activation -- and every
operational incident around one -- a durable, queryable record:

- ``trap``                     a defense fired (pac_trap, dfi_trap,
                               section_trap, canary, ...);
- ``fault-injected``           the chaos/campaign layer armed a fault
                               and it triggered at a concrete site;
- ``cache-corrupt-recompile``  the compilation cache rejected a rotten
                               entry and silently recompiled;
- ``worker-crash``             a serve worker died mid-request;
- ``worker-timeout``           a serve request outran its deadline;
- ``worker-restart``           the pool respawned a shard cold;
- ``dedup-coalesce``           a follower shared a leader's in-flight
                               computation (correlates the two rids);
- ``slo-breach``               an SLO target's burn rate crossed its
                               threshold (see :mod:`.slo`).

Every record is one JSON object per line (the ``repro-events-v1``
schema), stamped with wall-clock *and* monotonic time, the recording
pid, and -- when known -- the originating request id (the caller's
``id``), the daemon-assigned correlation id (``rid``), the module
digest, the defense scheme, and the interpreter tier.  That tuple is
what lets an operator join an events file against a Chrome trace and a
loadgen report: the same ``rid`` names the same request in all three.

The :class:`EventLog` is ring-buffered (oldest records drop first) so
a long-lived daemon holds a bounded recent window; ``--events-out`` on
serve/run/suite/chaos/campaign exports the buffer, the daemon's
``events`` op serves it live, and ``python -m repro audit`` summarizes
an exported file offline.

Stdlib-only on purpose, like the rest of the observability layer.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

#: Schema tag carried by every record (validated by the checker, the
#: ``audit`` subcommand, and ``tools/check_slo.py``).
EVENTS_SCHEMA = "repro-events-v1"

#: The closed set of event types.
EVENT_TYPES = (
    "trap",
    "fault-injected",
    "cache-corrupt-recompile",
    "worker-crash",
    "worker-timeout",
    "worker-restart",
    "dedup-coalesce",
    "slo-breach",
)

#: Fields every record must carry (beyond the optional correlation
#: fields, which may be null).
_REQUIRED_FIELDS = ("schema", "type", "ts_wall", "ts_mono_ns", "pid")

#: Optional correlation fields; null when unknown.
_CORRELATION_FIELDS = ("request_id", "rid", "module_digest", "scheme", "tier")


def make_event(
    event_type: str,
    request_id: Any = None,
    rid: Optional[str] = None,
    module_digest: Optional[str] = None,
    scheme: Optional[str] = None,
    tier: Optional[str] = None,
    **detail: Any,
) -> Dict[str, Any]:
    """One ``repro-events-v1`` record, stamped with both clocks."""
    if event_type not in EVENT_TYPES:
        raise ValueError(
            f"unknown event type {event_type!r}; try: {', '.join(EVENT_TYPES)}"
        )
    return {
        "schema": EVENTS_SCHEMA,
        "type": event_type,
        "ts_wall": time.time(),
        "ts_mono_ns": time.perf_counter_ns(),
        "pid": os.getpid(),
        "request_id": request_id,
        "rid": rid,
        "module_digest": module_digest,
        "scheme": scheme,
        "tier": tier,
        "detail": detail,
    }


class EventLog:
    """Ring-buffered security-event recorder for one process.

    Always on, like the metrics registry: an ``emit`` is one dict
    build and one deque append, and the ring bound (``capacity``)
    keeps a long-lived daemon's memory flat -- ``dropped`` counts what
    the ring already forgot, so exports are honest about truncation.
    """

    __slots__ = ("events", "emitted", "capacity")

    def __init__(self, capacity: int = 16384):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.events: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self.emitted = 0

    @property
    def dropped(self) -> int:
        """Records the ring has already forgotten."""
        return self.emitted - len(self.events)

    def emit(
        self,
        event_type: str,
        request_id: Any = None,
        rid: Optional[str] = None,
        module_digest: Optional[str] = None,
        scheme: Optional[str] = None,
        tier: Optional[str] = None,
        **detail: Any,
    ) -> Dict[str, Any]:
        """Record (and return) one event."""
        event = make_event(
            event_type,
            request_id=request_id,
            rid=rid,
            module_digest=module_digest,
            scheme=scheme,
            tier=tier,
            **detail,
        )
        self.events.append(event)
        self.emitted += 1
        return event

    def adopt(self, records: Iterable[Dict[str, Any]]) -> None:
        """Merge records emitted by another process (a serve worker).

        Records keep their original pid/timestamps -- adoption is how a
        worker-side trap lands in the daemon's ring with its true
        origin intact.
        """
        for record in records:
            self.events.append(record)
            self.emitted += 1

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The newest ``limit`` records (all, when ``limit`` is None)."""
        if limit is None or limit >= len(self.events):
            return list(self.events)
        if limit <= 0:
            return []
        return list(self.events)[-limit:]


def validate_event(record: Any) -> Optional[str]:
    """First problem with one record, or ``None`` when valid.

    Shared by the tests, ``tools/check_observability.py``, and the
    ``audit`` loader so the CI gate and the offline tooling cannot
    drift apart.
    """
    if not isinstance(record, dict):
        return "record is not an object"
    if record.get("schema") != EVENTS_SCHEMA:
        return f"schema is {record.get('schema')!r}, expected {EVENTS_SCHEMA!r}"
    for field in _REQUIRED_FIELDS:
        if field not in record:
            return f"record lacks {field!r}"
    if record["type"] not in EVENT_TYPES:
        return f"unknown event type {record['type']!r}"
    if not isinstance(record["ts_wall"], (int, float)):
        return "'ts_wall' is not numeric"
    if not isinstance(record["ts_mono_ns"], int) or isinstance(
        record["ts_mono_ns"], bool
    ):
        return "'ts_mono_ns' is not an integer"
    if not isinstance(record["pid"], int) or isinstance(record["pid"], bool):
        return "'pid' is not an integer"
    for field in ("rid", "module_digest", "scheme", "tier"):
        value = record.get(field)
        if value is not None and not isinstance(value, str):
            return f"{field!r} is neither null nor a string"
    detail = record.get("detail")
    if detail is not None and not isinstance(detail, dict):
        return "'detail' is neither null nor an object"
    return None


def write_events(path: str, events: Iterable[Dict[str, Any]]) -> int:
    """Write records as JSON lines at ``path``; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in events:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_events(path: str) -> List[Dict[str, Any]]:
    """Load (and validate) a ``repro-events-v1`` JSON-lines file.

    Raises ``ValueError`` naming the first offending line, so the CLI
    can turn a rotten file into a one-line exit-3 diagnostic.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{number}: not JSON: {exc}") from exc
            problem = validate_event(record)
            if problem is not None:
                raise ValueError(f"{path}:{number}: {problem}")
            records.append(record)
    return records
