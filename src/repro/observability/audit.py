"""Offline security audit over a ``repro-events-v1`` events file.

``python -m repro audit events.jsonl`` answers the questions an
operator asks after the fact: *which defenses fired, against what,
how often, and when?*  The report groups trap events by scheme and by
attack family/status, ranks the module digests that drew the most
traps, summarizes operational incidents (worker crashes, timeouts,
SLO breaches, corrupt-cache recompiles), and renders a coarse attack
timeline -- closing the loop with the campaign fuzzer's coverage
matrix: the matrix says what *would* be caught, the audit says what
*was*.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Timeline resolution: the span between the first and last event is
#: sliced into this many equal slots.
TIMELINE_SLOTS = 24


def audit_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The JSON-able audit digest of a validated event-record list."""
    by_type: Dict[str, int] = {}
    traps_by_scheme: Dict[str, int] = {}
    traps_by_family: Dict[str, int] = {}
    traps_by_status: Dict[str, int] = {}
    traps_by_digest: Dict[str, int] = {}
    correlated = 0
    trap_times: List[float] = []
    for record in events:
        kind = record["type"]
        by_type[kind] = by_type.get(kind, 0) + 1
        if kind != "trap":
            continue
        detail = record.get("detail") or {}
        scheme = record.get("scheme") or "?"
        traps_by_scheme[scheme] = traps_by_scheme.get(scheme, 0) + 1
        family = detail.get("scenario") or detail.get("family") or detail.get("kind")
        if family:
            traps_by_family[family] = traps_by_family.get(family, 0) + 1
        status = detail.get("status") or "?"
        traps_by_status[status] = traps_by_status.get(status, 0) + 1
        digest = record.get("module_digest")
        if digest:
            traps_by_digest[digest] = traps_by_digest.get(digest, 0) + 1
        if record.get("request_id") is not None or record.get("rid") is not None:
            correlated += 1
        trap_times.append(float(record["ts_wall"]))

    timeline: List[int] = []
    span = (0.0, 0.0)
    if trap_times:
        start, end = min(trap_times), max(trap_times)
        span = (start, end)
        width = max(end - start, 1e-9)
        timeline = [0] * TIMELINE_SLOTS
        for ts in trap_times:
            slot = min(int((ts - start) / width * TIMELINE_SLOTS), TIMELINE_SLOTS - 1)
            timeline[slot] += 1

    total_traps = sum(traps_by_scheme.values())
    return {
        "events": len(events),
        "by_type": dict(sorted(by_type.items())),
        "traps": {
            "total": total_traps,
            "correlated": correlated,
            "by_scheme": dict(sorted(traps_by_scheme.items())),
            "by_family": dict(sorted(traps_by_family.items())),
            "by_status": dict(sorted(traps_by_status.items())),
            "top_modules": sorted(
                traps_by_digest.items(), key=lambda item: (-item[1], item[0])
            )[:10],
        },
        "timeline": {
            "start_wall": span[0],
            "end_wall": span[1],
            "slots": timeline,
        },
    }


_SPARKS = " .:-=+*#%@"


def _spark(counts: List[int]) -> str:
    peak = max(counts) if counts else 0
    if peak == 0:
        return ""
    levels = len(_SPARKS) - 1
    return "".join(
        _SPARKS[min(levels, (count * levels + peak - 1) // peak)] for count in counts
    )


def render_audit(report: Dict[str, Any], path: Optional[str] = None) -> List[str]:
    """Human-readable audit summary (the ``repro audit`` output)."""
    lines: List[str] = []
    header = f"{report['events']} event(s)"
    if path:
        header = f"{path}: " + header
    by_type = report["by_type"]
    if by_type:
        header += " -- " + ", ".join(
            f"{count} {kind}" for kind, count in by_type.items()
        )
    lines.append(header)
    traps = report["traps"]
    if not traps["total"]:
        lines.append("no defense traps recorded")
        return lines
    lines.append(
        f"traps: {traps['total']} total, "
        f"{traps['correlated']} carrying a request id"
    )
    lines.append("  per scheme:")
    for scheme, count in traps["by_scheme"].items():
        lines.append(f"    {scheme:10s} {count:6d}")
    if traps["by_family"]:
        lines.append("  per attack family:")
        for family, count in traps["by_family"].items():
            lines.append(f"    {family:22s} {count:6d}")
    lines.append("  per trap status:")
    for status, count in traps["by_status"].items():
        lines.append(f"    {status:14s} {count:6d}")
    if traps["top_modules"]:
        lines.append("  top offending module digests:")
        for digest, count in traps["top_modules"]:
            lines.append(f"    {digest[:16]:18s} {count:6d}")
    timeline = report["timeline"]
    if timeline["slots"]:
        duration = timeline["end_wall"] - timeline["start_wall"]
        lines.append(
            f"  attack timeline ({duration:.1f}s span, "
            f"{len(timeline['slots'])} slots): |{_spark(timeline['slots'])}|"
        )
    return lines
