"""Byte-addressable memory for the simulated machine.

The 40-bit virtual address space is split into fixed segments:

=============  =====================  ==========================================
segment        base address           contents
=============  =====================  ==========================================
``globals``    ``0x01_0000_0000``     module globals and string literals
``stack``      ``0x02_0000_0000``     call frames (growing towards higher
                                      addresses, so buffer overflows run
                                      "down" the frame into later variables)
``heap``       ``0x03_0000_0000``     the *shared* heap section
``isolated``   ``0x04_0000_0000``     Pythia's *isolated* heap section
=============  =====================  ==========================================

Memory is deliberately *flat within a segment*: writing past the end of
a buffer silently corrupts whatever is adjacent, which is precisely the
vulnerability class the paper attacks and defends.  Faults are only
raised for addresses outside any mapped segment.
"""

from __future__ import annotations

from struct import Struct
from typing import Dict, List, Optional, Tuple

from .errors import ReproError

# Pre-compiled codecs for the power-of-two access sizes the interpreter
# issues: they pack/unpack against the segment bytearray in place, so
# the hot load/store path allocates no intermediate ``bytes`` object.
_U16 = Struct("<H")
_U32 = Struct("<I")
_U64 = Struct("<Q")
_unpack_u16 = _U16.unpack_from
_unpack_u32 = _U32.unpack_from
_unpack_u64 = _U64.unpack_from
_pack_u16 = _U16.pack_into
_pack_u32 = _U32.pack_into
_pack_u64 = _U64.pack_into

GLOBAL_BASE = 0x01_0000_0000
STACK_BASE = 0x02_0000_0000
HEAP_SHARED_BASE = 0x03_0000_0000
HEAP_ISOLATED_BASE = 0x04_0000_0000

#: Default segment capacity (16 MiB each is ample for generated workloads).
SEGMENT_SIZE = 16 * 1024 * 1024


class MemoryFault(ReproError):
    """Access to an unmapped address -- the simulated SIGSEGV/bus error."""

    def __init__(self, address: int, size: int = 1, kind: str = "access"):
        super().__init__(f"memory fault: {kind} of {size} byte(s) at {address:#x}")
        self.address = address
        self.size = size
        self.kind = kind


class Segment:
    """A contiguous mapped region backed by a lazily grown bytearray."""

    def __init__(self, name: str, base: int, capacity: int = SEGMENT_SIZE):
        self.name = name
        self.base = base
        self.capacity = capacity
        self.data = bytearray()

    def contains(self, address: int, size: int = 1) -> bool:
        return self.base <= address and address + size <= self.base + self.capacity

    def _ensure(self, offset: int) -> None:
        if offset > len(self.data):
            self.data.extend(b"\x00" * (offset - len(self.data)))

    def read(self, address: int, size: int) -> bytes:
        offset = address - self.base
        self._ensure(offset + size)
        return bytes(self.data[offset : offset + size])

    def write(self, address: int, payload: bytes) -> None:
        offset = address - self.base
        self._ensure(offset + len(payload))
        self.data[offset : offset + len(payload)] = payload


class Memory:
    """The machine's memory: four segments plus typed access helpers."""

    def __init__(self, segment_size: int = SEGMENT_SIZE):
        self.segments: List[Segment] = [
            Segment("globals", GLOBAL_BASE, segment_size),
            Segment("stack", STACK_BASE, segment_size),
            Segment("heap", HEAP_SHARED_BASE, segment_size),
            Segment("isolated", HEAP_ISOLATED_BASE, segment_size),
        ]
        self.reads = 0
        self.writes = 0
        #: optional fault injector (see :mod:`repro.robustness.faults`);
        #: when set, every write's payload passes through
        #: ``fault_hook.on_memory_write(address, payload)`` so chaos
        #: runs can flip bits in stored data deterministically
        self.fault_hook = None
        # segment bases sit on 4 GiB boundaries, so the high 32 address
        # bits identify the segment without scanning
        self._window: Dict[int, Segment] = {
            segment.base >> 32: segment for segment in self.segments
        }

    def segment_for(self, address: int, size: int = 1, kind: str = "access") -> Segment:
        segment = self._window.get(address >> 32)
        if segment is not None and segment.contains(address, size):
            return segment
        for segment in self.segments:
            if segment.contains(address, size):
                return segment
        raise MemoryFault(address, size, kind)

    def segment_named(self, name: str) -> Segment:
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise KeyError(f"no segment named {name!r}")

    # -- raw access -----------------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        if size == 0:
            return b""
        self.reads += 1
        return self.segment_for(address, size, "read").read(address, size)

    def write_bytes(self, address: int, payload: bytes) -> None:
        if not payload:
            return
        self.writes += 1
        if self.fault_hook is not None:
            payload = self.fault_hook.on_memory_write(address, payload)
        self.segment_for(address, len(payload), "write").write(address, payload)

    # -- typed access -----------------------------------------------------------

    def read_int(self, address: int, size: int) -> int:
        """Read a little-endian unsigned integer of ``size`` bytes.

        This is the interpreter's ``load`` path, so the segment lookup
        and bounds handling are inlined rather than routed through
        :meth:`read_bytes` (which stays the general byte-string path).
        """
        self.reads += 1
        segment = self._window.get(address >> 32)
        if segment is None:
            segment = self.segment_for(address, size, "read")
        # Segment bases sit exactly on 4 GiB boundaries, so a window hit
        # guarantees offset >= 0; only the upper bound needs checking.
        offset = address - segment.base
        end = offset + size
        if end > segment.capacity:
            segment = self.segment_for(address, size, "read")
            offset = address - segment.base
            end = offset + size
        data = segment.data
        if end > len(data):
            segment._ensure(end)
        if size == 8:
            return _unpack_u64(data, offset)[0]
        if size == 4:
            return _unpack_u32(data, offset)[0]
        if size == 1:
            return data[offset]
        if size == 2:
            return _unpack_u16(data, offset)[0]
        return int.from_bytes(data[offset:end], "little")

    # Sized fast paths: the block/trace tiers emit these when the access
    # width is a compile-time constant, skipping read_int's size
    # dispatch and one argument per call.  The guard (window hit and the
    # span already materialised) implies the access is in bounds, so any
    # miss -- unmapped address, segment boundary, lazily grown tail --
    # falls through to the generic path and faults or grows there with
    # byte-identical behaviour.

    def read_u64(self, address: int) -> int:
        segment = self._window.get(address >> 32)
        if segment is not None:
            offset = address - segment.base
            data = segment.data
            if offset + 8 <= len(data):
                self.reads += 1
                return _unpack_u64(data, offset)[0]
        return self.read_int(address, 8)

    def read_u32(self, address: int) -> int:
        segment = self._window.get(address >> 32)
        if segment is not None:
            offset = address - segment.base
            data = segment.data
            if offset + 4 <= len(data):
                self.reads += 1
                return _unpack_u32(data, offset)[0]
        return self.read_int(address, 4)

    def read_u16(self, address: int) -> int:
        segment = self._window.get(address >> 32)
        if segment is not None:
            offset = address - segment.base
            data = segment.data
            if offset + 2 <= len(data):
                self.reads += 1
                return _unpack_u16(data, offset)[0]
        return self.read_int(address, 2)

    def read_u8(self, address: int) -> int:
        segment = self._window.get(address >> 32)
        if segment is not None:
            offset = address - segment.base
            data = segment.data
            if offset < len(data):
                self.reads += 1
                return data[offset]
        return self.read_int(address, 1)

    def write_u64(self, address: int, value: int) -> None:
        if self.fault_hook is None:
            segment = self._window.get(address >> 32)
            if segment is not None:
                offset = address - segment.base
                data = segment.data
                if offset + 8 <= len(data):
                    self.writes += 1
                    _pack_u64(data, offset, value & 0xFFFFFFFFFFFFFFFF)
                    return
        self.write_int(address, value, 8)

    def write_u32(self, address: int, value: int) -> None:
        if self.fault_hook is None:
            segment = self._window.get(address >> 32)
            if segment is not None:
                offset = address - segment.base
                data = segment.data
                if offset + 4 <= len(data):
                    self.writes += 1
                    _pack_u32(data, offset, value & 0xFFFFFFFF)
                    return
        self.write_int(address, value, 4)

    def write_u16(self, address: int, value: int) -> None:
        if self.fault_hook is None:
            segment = self._window.get(address >> 32)
            if segment is not None:
                offset = address - segment.base
                data = segment.data
                if offset + 2 <= len(data):
                    self.writes += 1
                    _pack_u16(data, offset, value & 0xFFFF)
                    return
        self.write_int(address, value, 2)

    def write_u8(self, address: int, value: int) -> None:
        if self.fault_hook is None:
            segment = self._window.get(address >> 32)
            if segment is not None:
                offset = address - segment.base
                data = segment.data
                if offset < len(data):
                    self.writes += 1
                    data[offset] = value & 0xFF
                    return
        self.write_int(address, value, 1)

    def write_int(self, address: int, value: int, size: int) -> None:
        """Write a little-endian unsigned integer of ``size`` bytes."""
        self.writes += 1
        segment = self._window.get(address >> 32)
        if segment is None:
            segment = self.segment_for(address, size, "write")
        offset = address - segment.base
        end = offset + size
        if end > segment.capacity:
            segment = self.segment_for(address, size, "write")
            offset = address - segment.base
            end = offset + size
        data = segment.data
        if end > len(data):
            segment._ensure(end)
        if self.fault_hook is None:
            # Fast path: pack straight into the segment bytearray.  The
            # fault-hook path below keeps materialising a ``bytes``
            # payload so chaos runs see the exact same write sites.
            if size == 8:
                _pack_u64(data, offset, value & 0xFFFFFFFFFFFFFFFF)
                return
            if size == 4:
                _pack_u32(data, offset, value & 0xFFFFFFFF)
                return
            if size == 1:
                data[offset] = value & 0xFF
                return
            if size == 2:
                _pack_u16(data, offset, value & 0xFFFF)
                return
        mask = (1 << (8 * size)) - 1
        payload = (value & mask).to_bytes(size, "little")
        if self.fault_hook is not None:
            payload = self.fault_hook.on_memory_write(address, payload)
        data[offset:end] = payload

    # -- C string helpers ---------------------------------------------------------

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated string (without the terminator).

        Scans the segment bytearray with ``find`` instead of reading one
        byte at a time.  Bytes beyond the materialised data are zeros,
        so the string implicitly terminates at the data's edge -- unless
        that edge is the segment boundary, which faults exactly like the
        byte-at-a-time walk did.
        """
        segment = self.segment_for(address, 1, "read")
        data = segment.data
        start = address - segment.base
        stop = min(len(data), start + limit, segment.capacity)
        nul = data.find(0, start, stop)
        if nul >= 0:
            return bytes(data[start:nul])
        scanned = stop - start
        if scanned >= limit:
            return bytes(data[start : start + limit])
        if stop >= segment.capacity:
            raise MemoryFault(segment.base + segment.capacity, 1, "read")
        # Ran off the end of materialised data: implicit NUL there.
        return bytes(data[start:stop])

    def write_cstring(self, address: int, text: bytes) -> None:
        """Write ``text`` followed by a NUL terminator."""
        self.write_bytes(address, text + b"\x00")
