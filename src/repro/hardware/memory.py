"""Byte-addressable memory for the simulated machine.

The 40-bit virtual address space is split into fixed segments:

=============  =====================  ==========================================
segment        base address           contents
=============  =====================  ==========================================
``globals``    ``0x01_0000_0000``     module globals and string literals
``stack``      ``0x02_0000_0000``     call frames (growing towards higher
                                      addresses, so buffer overflows run
                                      "down" the frame into later variables)
``heap``       ``0x03_0000_0000``     the *shared* heap section
``isolated``   ``0x04_0000_0000``     Pythia's *isolated* heap section
=============  =====================  ==========================================

Memory is deliberately *flat within a segment*: writing past the end of
a buffer silently corrupts whatever is adjacent, which is precisely the
vulnerability class the paper attacks and defends.  Faults are only
raised for addresses outside any mapped segment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .errors import ReproError

GLOBAL_BASE = 0x01_0000_0000
STACK_BASE = 0x02_0000_0000
HEAP_SHARED_BASE = 0x03_0000_0000
HEAP_ISOLATED_BASE = 0x04_0000_0000

#: Default segment capacity (16 MiB each is ample for generated workloads).
SEGMENT_SIZE = 16 * 1024 * 1024


class MemoryFault(ReproError):
    """Access to an unmapped address -- the simulated SIGSEGV/bus error."""

    def __init__(self, address: int, size: int = 1, kind: str = "access"):
        super().__init__(f"memory fault: {kind} of {size} byte(s) at {address:#x}")
        self.address = address
        self.size = size
        self.kind = kind


class Segment:
    """A contiguous mapped region backed by a lazily grown bytearray."""

    def __init__(self, name: str, base: int, capacity: int = SEGMENT_SIZE):
        self.name = name
        self.base = base
        self.capacity = capacity
        self.data = bytearray()

    def contains(self, address: int, size: int = 1) -> bool:
        return self.base <= address and address + size <= self.base + self.capacity

    def _ensure(self, offset: int) -> None:
        if offset > len(self.data):
            self.data.extend(b"\x00" * (offset - len(self.data)))

    def read(self, address: int, size: int) -> bytes:
        offset = address - self.base
        self._ensure(offset + size)
        return bytes(self.data[offset : offset + size])

    def write(self, address: int, payload: bytes) -> None:
        offset = address - self.base
        self._ensure(offset + len(payload))
        self.data[offset : offset + len(payload)] = payload


class Memory:
    """The machine's memory: four segments plus typed access helpers."""

    def __init__(self, segment_size: int = SEGMENT_SIZE):
        self.segments: List[Segment] = [
            Segment("globals", GLOBAL_BASE, segment_size),
            Segment("stack", STACK_BASE, segment_size),
            Segment("heap", HEAP_SHARED_BASE, segment_size),
            Segment("isolated", HEAP_ISOLATED_BASE, segment_size),
        ]
        self.reads = 0
        self.writes = 0
        #: optional fault injector (see :mod:`repro.robustness.faults`);
        #: when set, every write's payload passes through
        #: ``fault_hook.on_memory_write(address, payload)`` so chaos
        #: runs can flip bits in stored data deterministically
        self.fault_hook = None
        # segment bases sit on 4 GiB boundaries, so the high 32 address
        # bits identify the segment without scanning
        self._window: Dict[int, Segment] = {
            segment.base >> 32: segment for segment in self.segments
        }

    def segment_for(self, address: int, size: int = 1, kind: str = "access") -> Segment:
        segment = self._window.get(address >> 32)
        if segment is not None and segment.contains(address, size):
            return segment
        for segment in self.segments:
            if segment.contains(address, size):
                return segment
        raise MemoryFault(address, size, kind)

    def segment_named(self, name: str) -> Segment:
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise KeyError(f"no segment named {name!r}")

    # -- raw access -----------------------------------------------------------

    def read_bytes(self, address: int, size: int) -> bytes:
        if size == 0:
            return b""
        self.reads += 1
        return self.segment_for(address, size, "read").read(address, size)

    def write_bytes(self, address: int, payload: bytes) -> None:
        if not payload:
            return
        self.writes += 1
        if self.fault_hook is not None:
            payload = self.fault_hook.on_memory_write(address, payload)
        self.segment_for(address, len(payload), "write").write(address, payload)

    # -- typed access -----------------------------------------------------------

    def read_int(self, address: int, size: int) -> int:
        """Read a little-endian unsigned integer of ``size`` bytes.

        This is the interpreter's ``load`` path, so the segment lookup
        and bounds handling are inlined rather than routed through
        :meth:`read_bytes` (which stays the general byte-string path).
        """
        self.reads += 1
        segment = self._window.get(address >> 32)
        if segment is None or not segment.contains(address, size):
            segment = self.segment_for(address, size, "read")
        offset = address - segment.base
        data = segment.data
        end = offset + size
        if end > len(data):
            segment._ensure(end)
        return int.from_bytes(data[offset:end], "little")

    def write_int(self, address: int, value: int, size: int) -> None:
        """Write a little-endian unsigned integer of ``size`` bytes."""
        self.writes += 1
        segment = self._window.get(address >> 32)
        if segment is None or not segment.contains(address, size):
            segment = self.segment_for(address, size, "write")
        offset = address - segment.base
        data = segment.data
        end = offset + size
        if end > len(data):
            segment._ensure(end)
        mask = (1 << (8 * size)) - 1
        payload = (value & mask).to_bytes(size, "little")
        if self.fault_hook is not None:
            payload = self.fault_hook.on_memory_write(address, payload)
        data[offset:end] = payload

    # -- C string helpers ---------------------------------------------------------

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated string (without the terminator)."""
        segment = self.segment_for(address, 1, "read")
        out = bytearray()
        cursor = address
        while len(out) < limit:
            if not segment.contains(cursor, 1):
                raise MemoryFault(cursor, 1, "read")
            byte = segment.read(cursor, 1)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1
        return bytes(out)

    def write_cstring(self, address: int, text: bytes) -> None:
        """Write ``text`` followed by a NUL terminator."""
        self.write_bytes(address, text + b"\x00")
