"""Deterministic random number generation for canaries.

The paper populates stack canaries "with C++ random number generator
with a library call at each invocation of the function, and right
before the input channel".  This module models that library: a fast
xorshift64* generator with an invocation counter, so benchmarks can
charge the library-call cost for every re-randomisation.

Determinism matters: the whole simulation is reproducible from a seed,
which the test suite relies on.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class CanaryRng:
    """xorshift64* PRNG used to (re-)randomise canary values."""

    def __init__(self, seed: int = 0xC0FFEE):
        # xorshift state must be non-zero.
        self._state = (seed & _MASK64) or 0x9E3779B97F4A7C15
        self.calls = 0

    def next_u64(self) -> int:
        """Return the next 64-bit random value (one library call)."""
        self.calls += 1
        x = self._state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x & _MASK64
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def next_canary(self) -> int:
        """A canary value: 64-bit random with a guaranteed NUL byte.

        Real canaries keep a zero low byte so string functions cannot
        leak them via unterminated reads; we keep the convention.
        """
        return self.next_u64() & ~0xFF
