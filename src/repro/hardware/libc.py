"""Models of the C library functions the simulated programs call.

Each model is a Python callable ``handler(cpu, args) -> Optional[int]``
operating directly on the CPU's memory.  Input-channel functions
(Definition 2.1 of the paper) are tagged with their category --
``print``, ``scan``, ``movecopy``, ``get``, ``put``, ``map`` -- which is
what :mod:`repro.analysis.input_channels` keys on.

Two behaviours matter for the reproduction:

1. **Unchecked writes.**  ``gets``, ``strcpy``, ``scanf %s`` and friends
   write however many bytes the source provides.  Memory is flat within
   a segment, so oversized payloads silently corrupt adjacent variables
   -- the buffer overflows of §2.2 and §3.
2. **Attack hooks.**  Before reading external input (or, for copies,
   the source bytes), the CPU consults its attack controller, which may
   substitute a malicious payload.  Without a controller, benign input
   comes from ``cpu.input_queue``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..ir.types import FunctionType, I64, I8, PointerType, VOID, pointer
from .timing import RNG_CALL_CYCLES

if TYPE_CHECKING:  # pragma: no cover
    from .cpu import CPU

Handler = Callable[["CPU", Sequence[int]], Optional[int]]


class LibFunction:
    """A modelled external function: IR signature + semantics + IC tag.

    ``writes_args`` lists the positions of pointer arguments the
    function writes through (the overflow-exposed destinations);
    ``writes_varargs`` marks scanf-style functions that write through
    every vararg; ``writes_return`` marks map-style functions whose
    returned region holds external data.  The slicing analyses use this
    effect summary to connect input channels to program variables.
    """

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        handler: Handler,
        ic_kind: Optional[str] = None,
        writes_args: Sequence[int] = (),
        writes_varargs: bool = False,
        writes_return: bool = False,
        reads_args: Sequence[int] = (),
        reads_varargs: bool = False,
    ):
        self.name = name
        self.function_type = function_type
        self.handler = handler
        self.ic_kind = ic_kind
        self.writes_args = tuple(writes_args)
        self.writes_varargs = writes_varargs
        self.writes_return = writes_return
        self.reads_args = tuple(reads_args)
        self.reads_varargs = reads_varargs


LIBRARY: Dict[str, LibFunction] = {}

_CHAR_PTR = pointer(I8)


def _register(
    name: str,
    function_type: FunctionType,
    ic_kind: Optional[str] = None,
    writes_args: Sequence[int] = (),
    writes_varargs: bool = False,
    writes_return: bool = False,
    reads_args: Sequence[int] = (),
    reads_varargs: bool = False,
) -> Callable[[Handler], Handler]:
    def decorator(handler: Handler) -> Handler:
        LIBRARY[name] = LibFunction(
            name,
            function_type,
            handler,
            ic_kind,
            writes_args,
            writes_varargs,
            writes_return,
            reads_args,
            reads_varargs,
        )
        return handler

    return decorator


def declare_library(module, names: Optional[Sequence[str]] = None) -> None:
    """Declare (a subset of) the modelled library in ``module``."""
    for name in names if names is not None else LIBRARY:
        lib = LIBRARY[name]
        module.declare_function(name, lib.function_type, input_channel_kind=lib.ic_kind)


# ---------------------------------------------------------------------------
# put: string copies with no bounds checking
# ---------------------------------------------------------------------------


@_register("strcpy", FunctionType(_CHAR_PTR, [_CHAR_PTR, _CHAR_PTR]), ic_kind="put", writes_args=(0,), reads_args=(1,))
def _strcpy(cpu: "CPU", args: Sequence[int]) -> int:
    dst, src = args[0], args[1]
    data = cpu.attack_payload("strcpy", args)
    if data is None:
        data = cpu.memory.read_cstring(src)
    cpu.external_write(dst, data + b"\x00")
    cpu.timing.charge_libcall(len(data), "lib.strcpy")
    return dst


@_register(
    "strncpy",
    FunctionType(_CHAR_PTR, [_CHAR_PTR, _CHAR_PTR, I64]),
    ic_kind="put",
    writes_args=(0,), reads_args=(1,),
)
def _strncpy(cpu: "CPU", args: Sequence[int]) -> int:
    dst, src, limit = args[0], args[1], args[2]
    data = cpu.attack_payload("strncpy", args)
    if data is None:
        data = cpu.memory.read_cstring(src)
    data = data[:limit]
    payload = data + b"\x00" * max(0, limit - len(data))
    cpu.external_write(dst, payload)
    cpu.timing.charge_libcall(len(payload), "lib.strncpy")
    return dst


@_register(
    "sstrncpy",
    FunctionType(_CHAR_PTR, [_CHAR_PTR, _CHAR_PTR, I64]),
    ic_kind="put",
    writes_args=(0,), reads_args=(1,),
)
def _sstrncpy(cpu: "CPU", args: Sequence[int]) -> int:
    """ProFTPd's "safe" strncpy -- NUL-terminates but still trusts ``limit``.

    When the attacker has corrupted ``limit`` (the ProFTPd attack of
    Listing 2), this overflows exactly like ``strcpy``.
    """
    dst, src, limit = args[0], args[1], args[2]
    data = cpu.attack_payload("sstrncpy", args)
    if data is None:
        data = cpu.memory.read_cstring(src)
    data = data[: max(0, limit - 1)]
    cpu.external_write(dst, data + b"\x00")
    cpu.timing.charge_libcall(len(data), "lib.sstrncpy")
    return dst


@_register("strcat", FunctionType(_CHAR_PTR, [_CHAR_PTR, _CHAR_PTR]), ic_kind="put", writes_args=(0,), reads_args=(1,))
def _strcat(cpu: "CPU", args: Sequence[int]) -> int:
    dst, src = args[0], args[1]
    existing = cpu.memory.read_cstring(dst)
    data = cpu.attack_payload("strcat", args)
    if data is None:
        data = cpu.memory.read_cstring(src)
    cpu.external_write(dst + len(existing), data + b"\x00")
    cpu.timing.charge_libcall(len(data), "lib.strcat")
    return dst


# ---------------------------------------------------------------------------
# move/copy: raw memory movement
# ---------------------------------------------------------------------------


@_register(
    "memcpy",
    FunctionType(_CHAR_PTR, [_CHAR_PTR, _CHAR_PTR, I64]),
    ic_kind="movecopy",
    writes_args=(0,), reads_args=(1,),
)
def _memcpy(cpu: "CPU", args: Sequence[int]) -> int:
    dst, src, count = args[0], args[1], args[2]
    data = cpu.attack_payload("memcpy", args)
    if data is None:
        data = cpu.memory.read_bytes(src, count)
    cpu.external_write(dst, data)
    cpu.timing.charge_libcall(len(data), "lib.memcpy")
    return dst


@_register(
    "memmove",
    FunctionType(_CHAR_PTR, [_CHAR_PTR, _CHAR_PTR, I64]),
    ic_kind="movecopy",
    writes_args=(0,), reads_args=(1,),
)
def _memmove(cpu: "CPU", args: Sequence[int]) -> int:
    return _memcpy(cpu, args)


@_register(
    "memset",
    FunctionType(_CHAR_PTR, [_CHAR_PTR, I64, I64]),
    ic_kind="movecopy",
    writes_args=(0,),
)
def _memset(cpu: "CPU", args: Sequence[int]) -> int:
    dst, byte, count = args[0], args[1] & 0xFF, args[2]
    cpu.external_write(dst, bytes([byte]) * count)
    cpu.timing.charge_libcall(count, "lib.memset")
    return dst


# ---------------------------------------------------------------------------
# get: reading external input (gets/fgets/read)
# ---------------------------------------------------------------------------


@_register("gets", FunctionType(_CHAR_PTR, [_CHAR_PTR]), ic_kind="get", writes_args=(0,))
def _gets(cpu: "CPU", args: Sequence[int]) -> int:
    dst = args[0]
    data = cpu.take_input("gets", args)
    cpu.external_write(dst, data + b"\x00")
    cpu.timing.charge_libcall(len(data), "lib.gets")
    return dst


@_register("fgets", FunctionType(_CHAR_PTR, [_CHAR_PTR, I64, _CHAR_PTR]), ic_kind="get", writes_args=(0,))
def _fgets(cpu: "CPU", args: Sequence[int]) -> int:
    dst, limit = args[0], args[1]
    data = cpu.take_input("fgets", args)[: max(0, limit - 1)]
    cpu.external_write(dst, data + b"\x00")
    cpu.timing.charge_libcall(len(data), "lib.fgets")
    return dst


@_register("read", FunctionType(I64, [I64, _CHAR_PTR, I64]), ic_kind="get", writes_args=(1,))
def _read(cpu: "CPU", args: Sequence[int]) -> int:
    dst, count = args[1], args[2]
    data = cpu.take_input("read", args)[:count]
    cpu.external_write(dst, data)
    cpu.timing.charge_libcall(len(data), "lib.read")
    return len(data)


# ---------------------------------------------------------------------------
# scan: formatted input
# ---------------------------------------------------------------------------


@_register("scanf", FunctionType(I64, [_CHAR_PTR], varargs=True), ic_kind="scan", writes_varargs=True)
def _scanf(cpu: "CPU", args: Sequence[int]) -> int:
    """Minimal scanf: supports ``%d`` and ``%s`` conversions.

    ``%s`` writes however many bytes the input provides -- the classic
    overflow of Listing 3 (``scanf("%d", &k)`` becomes dangerous when
    the attacker instead drives a ``%s`` path or corrupts the length).
    """
    fmt = cpu.memory.read_cstring(args[0]).decode("latin1")
    out_args = list(args[1:])
    converted = 0
    i = 0
    while i < len(fmt) and out_args:
        if fmt[i] == "%" and i + 1 < len(fmt):
            spec = fmt[i + 1]
            target = out_args.pop(0)
            data = cpu.take_input(f"scanf%{spec}", args)
            if spec == "d":
                try:
                    value = int(data.split()[0]) if data.split() else 0
                except ValueError:
                    value = 0
                cpu.external_write(target, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))
            else:  # %s and anything else treated as a raw string write
                cpu.external_write(target, data + b"\x00")
            converted += 1
            i += 2
        else:
            i += 1
    cpu.timing.charge_libcall(8, "lib.scanf")
    return converted


# ---------------------------------------------------------------------------
# print: output formatting
# ---------------------------------------------------------------------------


def _format(cpu: "CPU", fmt: bytes, varargs: Sequence[int]) -> bytes:
    out = bytearray()
    args = list(varargs)
    text = fmt.decode("latin1")
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "%" and i + 1 < len(text):
            spec = text[i + 1]
            if spec == "%":
                out.append(ord("%"))
            elif spec in ("d", "u", "x"):
                value = args.pop(0) if args else 0
                if spec == "d" and value >= 1 << 63:
                    value -= 1 << 64
                out.extend(format(value, "x" if spec == "x" else "d").encode())
            elif spec == "s":
                address = args.pop(0) if args else 0
                out.extend(cpu.memory.read_cstring(address) if address else b"(null)")
            elif spec == "c":
                value = args.pop(0) if args else 0
                out.append(value & 0xFF)
            else:
                out.extend(("%" + spec).encode())
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


@_register("printf", FunctionType(I64, [_CHAR_PTR], varargs=True), ic_kind="print", reads_args=(0,), reads_varargs=True)
def _printf(cpu: "CPU", args: Sequence[int]) -> int:
    fmt = cpu.memory.read_cstring(args[0])
    rendered = _format(cpu, fmt, args[1:])
    cpu.output.append(rendered)
    cpu.timing.charge_libcall(len(rendered), "lib.printf")
    return len(rendered)


@_register("puts", FunctionType(I64, [_CHAR_PTR]), ic_kind="print", reads_args=(0,))
def _puts(cpu: "CPU", args: Sequence[int]) -> int:
    data = cpu.memory.read_cstring(args[0])
    cpu.output.append(data + b"\n")
    cpu.timing.charge_libcall(len(data), "lib.puts")
    return len(data) + 1


@_register(
    "sprintf",
    FunctionType(I64, [_CHAR_PTR, _CHAR_PTR], varargs=True),
    ic_kind="print",
    writes_args=(0,),
    reads_args=(1,),
    reads_varargs=True,
)
def _sprintf(cpu: "CPU", args: Sequence[int]) -> int:
    """sprintf *writes to memory* -- a print-category input channel that
    can overflow its destination, which is why the paper treats print
    functions as input channels at all."""
    fmt = cpu.memory.read_cstring(args[1])
    rendered = _format(cpu, fmt, args[2:])
    cpu.external_write(args[0], rendered + b"\x00")
    cpu.timing.charge_libcall(len(rendered), "lib.sprintf")
    return len(rendered)


# ---------------------------------------------------------------------------
# map: mapping external data into the address space
# ---------------------------------------------------------------------------


@_register("mmap", FunctionType(_CHAR_PTR, [I64]), ic_kind="map", writes_return=True)
def _mmap(cpu: "CPU", args: Sequence[int]) -> int:
    """Simplified mmap(length): map a file-backed region filled with
    external (attacker-influencable) bytes."""
    length = max(1, args[0])
    address = cpu.heap.malloc(length)
    data = cpu.take_input("mmap", args)[:length]
    # Fresh mappings are zero-filled (like real anonymous/short file
    # mmaps), so the region never exposes stale heap bytes.
    cpu.external_write(address, data + b"\x00" * (length - len(data)))
    cpu.timing.charge_libcall(length, "lib.mmap")
    return address


# ---------------------------------------------------------------------------
# heap management
# ---------------------------------------------------------------------------


@_register("malloc", FunctionType(_CHAR_PTR, [I64]))
def _malloc(cpu: "CPU", args: Sequence[int]) -> int:
    cpu.timing.charge_libcall(0, "lib.malloc")
    return cpu.heap.malloc(args[0])


@_register("calloc", FunctionType(_CHAR_PTR, [I64, I64]))
def _calloc(cpu: "CPU", args: Sequence[int]) -> int:
    size = args[0] * args[1]
    address = cpu.heap.malloc(size)
    cpu.memory.write_bytes(address, b"\x00" * size)
    cpu.timing.charge_libcall(size, "lib.calloc")
    return address


@_register("free", FunctionType(VOID, [_CHAR_PTR]))
def _free(cpu: "CPU", args: Sequence[int]) -> None:
    if args[0]:
        cpu.heap.free(args[0])
    cpu.timing.charge_libcall(0, "lib.free")
    return None


@_register("pythia_secure_malloc", FunctionType(_CHAR_PTR, [I64]))
def _secure_malloc(cpu: "CPU", args: Sequence[int]) -> int:
    """Pythia's custom allocator: allocate from the *isolated* section.

    Charges the heap-sectioning overhead the paper measures (~23 ns).
    The returned chunk must actually live in the isolated arena; a
    misrouted allocation (cross-heap-section confusion) trips a
    :class:`~repro.hardware.errors.SectionTrap`, modelling the runtime
    section check of the hardened allocator.
    """
    from .errors import SectionTrap
    from .timing import HEAP_SECTIONING_CYCLES

    cpu.timing.charge_cycles(HEAP_SECTIONING_CYCLES, "lib.secure_malloc")
    address = cpu.heap.malloc(args[0], isolated=True)
    if cpu.heap.section_of(address) != "isolated":
        raise SectionTrap(
            f"secure allocation at {address:#x} landed in the "
            f"{cpu.heap.section_of(address)} section"
        )
    return address


# ---------------------------------------------------------------------------
# string utilities (not input channels)
# ---------------------------------------------------------------------------


@_register("strlen", FunctionType(I64, [_CHAR_PTR]), reads_args=(0,))
def _strlen(cpu: "CPU", args: Sequence[int]) -> int:
    data = cpu.memory.read_cstring(args[0])
    cpu.timing.charge_libcall(len(data), "lib.strlen")
    return len(data)


@_register("strcmp", FunctionType(I64, [_CHAR_PTR, _CHAR_PTR]), reads_args=(0, 1))
def _strcmp(cpu: "CPU", args: Sequence[int]) -> int:
    a = cpu.memory.read_cstring(args[0])
    b = cpu.memory.read_cstring(args[1])
    cpu.timing.charge_libcall(min(len(a), len(b)), "lib.strcmp")
    return ((a > b) - (a < b)) & 0xFFFFFFFFFFFFFFFF


@_register("strncmp", FunctionType(I64, [_CHAR_PTR, _CHAR_PTR, I64]), reads_args=(0, 1))
def _strncmp(cpu: "CPU", args: Sequence[int]) -> int:
    n = args[2]
    a = cpu.memory.read_cstring(args[0])[:n]
    b = cpu.memory.read_cstring(args[1])[:n]
    cpu.timing.charge_libcall(min(len(a), len(b)), "lib.strncmp")
    return ((a > b) - (a < b)) & 0xFFFFFFFFFFFFFFFF


@_register("atoi", FunctionType(I64, [_CHAR_PTR]), reads_args=(0,))
def _atoi(cpu: "CPU", args: Sequence[int]) -> int:
    data = cpu.memory.read_cstring(args[0]).decode("latin1").strip()
    cpu.timing.charge_libcall(len(data), "lib.atoi")
    try:
        return int(data or "0") & 0xFFFFFFFFFFFFFFFF
    except ValueError:
        return 0


# ---------------------------------------------------------------------------
# runtime support
# ---------------------------------------------------------------------------


@_register("pythia_random", FunctionType(I64, []))
def _pythia_random(cpu: "CPU", args: Sequence[int]) -> int:
    """The canary RNG library call (one per (re-)randomisation)."""
    cpu.timing.charge_cycles(RNG_CALL_CYCLES, "lib.pythia_random")
    return cpu.rng.next_canary()


@_register("exit", FunctionType(VOID, [I64]))
def _exit(cpu: "CPU", args: Sequence[int]) -> None:
    from .cpu import ProgramExit

    raise ProgramExit(args[0])


@_register("abort", FunctionType(VOID, []))
def _abort(cpu: "CPU", args: Sequence[int]) -> None:
    from .cpu import ProgramExit

    raise ProgramExit(134)
