"""Cycle-level timing model for the simulated CPU.

The evaluation's performance numbers (runtime overhead, IPC
degradation) are *ratios* between instrumented and vanilla executions,
so what matters is a consistent, plausible per-instruction cost model
rather than absolute fidelity to the M1 Pro.

Costs are loosely based on published ARMv8 latencies: PA instructions
(``PACIA``/``AUTIA``) cost ~4-5 cycles on Apple silicon; loads hit the
L1 most of the time; the canary RNG is a library call; heap sectioning
adds a fixed per-allocation overhead (~23 ns in the paper, ~70 cycles
at 3.2 GHz).

The IPC model is a simple bounded-width issue model: each instruction
contributes latency cycles, but up to ``issue_width`` single-cycle ops
can retire per cycle, so instrumented code with many independent cheap
ops degrades IPC less than its instruction count suggests -- matching
the paper's observation that "the IPC does not suffer radically since
ARM-PA directly leverages hardware support".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict


#: Cycles charged per executed IR opcode.
DEFAULT_COSTS: Dict[str, int] = {
    "alloca": 0,  # frame space is reserved at function entry
    "load": 4,
    "store": 1,
    "getelementptr": 1,
    "add": 1,
    "sub": 1,
    "mul": 3,
    "sdiv": 12,
    "srem": 12,
    "and": 1,
    "or": 1,
    "xor": 1,
    "shl": 1,
    "ashr": 1,
    "lshr": 1,
    "icmp": 1,
    "trunc": 1,
    "zext": 1,
    "sext": 1,
    "ptrtoint": 1,
    "inttoptr": 1,
    "bitcast": 0,
    "select": 1,
    "br": 1,
    "ret": 1,
    "call": 2,
    "phi": 0,
    # security intrinsics
    "pac.sign": 4,
    "pac.auth": 4,
    "sec.assert": 1,
    # software DFI is expensive: a hash-table update / membership test
    "dfi.setdef": 7,
    "dfi.chkdef": 9,
}

#: Cycles for the canary RNG library call (one per re-randomisation).
RNG_CALL_CYCLES = 12
#: Extra cycles per allocation routed to the isolated heap section
#: (~23 ns at 3.2 GHz in the paper's measurements).
HEAP_SECTIONING_CYCLES = 70
#: Base cost of any modelled library call (call/ret + PLT).
LIBCALL_BASE_CYCLES = 10
#: Cost per byte moved by string/memory library functions.
LIBCALL_BYTE_CYCLES = 0.25


@dataclass(slots=True)
class TimingModel:
    """Accumulates cycles and instruction counts for one execution.

    ``slots=True`` matters: the interpreter updates these counters once
    per dynamic instruction, and slot access is measurably cheaper than
    a ``__dict__`` probe on that path.
    """

    costs: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_COSTS))
    issue_width: int = 4

    cycles: float = 0.0
    instructions: int = 0
    #: a defaultdict so hot paths can use ``counts[op] += n`` without a
    #: ``.get`` probe; ExecutionResult copies it into a plain dict
    opcode_counts: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: single-cycle ops eligible for multi-issue this "window"
    _cheap_run: int = 0

    def charge(self, opcode: str) -> None:
        """Charge one dynamic instruction of ``opcode``."""
        cost = self.costs.get(opcode, 1)
        self.instructions += 1
        self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + 1
        if cost <= 1:
            # Up to issue_width cheap ops retire per cycle.
            self._cheap_run += 1
            if self._cheap_run >= self.issue_width:
                self.cycles += 1
                self._cheap_run = 0
        else:
            self.cycles += cost
            self._cheap_run = 0

    def charge_cycles(self, cycles: float, label: str = "lib") -> None:
        """Charge raw cycles (library calls, allocator overheads)."""
        self.cycles += cycles
        self.opcode_counts[label] = self.opcode_counts.get(label, 0) + 1

    def charge_libcall(self, bytes_moved: int = 0, label: str = "libcall") -> None:
        self.charge_cycles(
            LIBCALL_BASE_CYCLES + LIBCALL_BYTE_CYCLES * bytes_moved, label
        )

    @property
    def ipc(self) -> float:
        """Instructions per cycle for the execution so far."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    def snapshot(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
        }
