"""Traps and runtime errors raised by the simulated CPU.

These live in their own module so that both interpreter backends -- the
reference interpreter in :mod:`repro.hardware.cpu` and the pre-decoded
dispatch engine in :mod:`repro.hardware.decoder` -- can raise the exact
same exception types without a circular import.  Everything here is
re-exported from :mod:`repro.hardware.cpu` for backwards compatibility.
"""

from __future__ import annotations

#: Shadow value for memory last written by an external (library) writer.
DFI_EXTERNAL_WRITER = 0


class SecurityTrap(Exception):
    """Base class of defense-triggered traps."""

    kind = "security"


class CanaryTrap(SecurityTrap):
    """A ``sec.assert`` canary check failed: overflow detected."""

    kind = "canary"


class DfiTrap(SecurityTrap):
    """A ``dfi.chkdef`` found an unexpected last writer."""

    kind = "dfi"

    def __init__(self, address: int, writer: int, allowed: frozenset):
        super().__init__(
            f"DFI violation at {address:#x}: writer {writer} not in {sorted(allowed)}"
        )
        self.address = address
        self.writer = writer
        self.allowed = allowed


class NullPointerTrap(Exception):
    """Dereference of a null pointer."""


class StepLimitExceeded(Exception):
    """The execution ran past the configured dynamic step budget."""


class ProgramExit(Exception):
    """Raised by the ``exit``/``abort`` library models."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class UnknownExternalError(Exception):
    """Call to a declaration with no library model."""
