"""Traps and runtime errors raised by the simulated CPU.

These live in their own module so that both interpreter backends -- the
reference interpreter in :mod:`repro.hardware.cpu` and the pre-decoded
dispatch engine in :mod:`repro.hardware.decoder` -- can raise the exact
same exception types without a circular import.  Everything here is
re-exported from :mod:`repro.hardware.cpu` for backwards compatibility.
"""

from __future__ import annotations

#: Shadow value for memory last written by an external (library) writer.
DFI_EXTERNAL_WRITER = 0


class ReproError(Exception):
    """Root of every typed error the framework raises on purpose.

    The hierarchy gives the CLI (and the chaos triage pipeline) a single
    catch point that still distinguishes *expected* failures -- traps,
    user mistakes, resource exhaustion -- from genuine bugs, which
    surface as exceptions outside this tree and land in a triage bucket.
    ``exit_code`` is the process exit status ``python -m repro`` uses
    when the error reaches the top level.
    """

    exit_code = 1


class SecurityTrap(ReproError):
    """Base class of defense-triggered traps."""

    kind = "security"
    exit_code = 2


class CanaryTrap(SecurityTrap):
    """A ``sec.assert`` canary check failed: overflow detected."""

    kind = "canary"


class SectionTrap(SecurityTrap):
    """A heap-isolation invariant failed: a secure allocation landed
    outside the isolated section (cross-heap-section confusion)."""

    kind = "section"


class DfiTrap(SecurityTrap):
    """A ``dfi.chkdef`` found an unexpected last writer."""

    kind = "dfi"

    def __init__(self, address: int, writer: int, allowed: frozenset):
        super().__init__(
            f"DFI violation at {address:#x}: writer {writer} not in {sorted(allowed)}"
        )
        self.address = address
        self.writer = writer
        self.allowed = allowed


class NullPointerTrap(ReproError):
    """Dereference of a null pointer."""


class StepLimitExceeded(ReproError):
    """The execution ran past the configured dynamic step budget."""


class ProgramExit(Exception):
    """Raised by the ``exit``/``abort`` library models."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class UnknownExternalError(ReproError):
    """Call to a declaration with no library model."""


class UnknownInterpreterError(ReproError, ValueError):
    """An interpreter name outside :data:`repro.hardware.INTERPRETERS`.

    Doubles as a ``ValueError`` for API callers probing with
    ``except ValueError`` while routing through the CLI's ``ReproError``
    handler, so a typo in ``--interpreter``/``REPRO_INTERPRETER`` prints
    a one-line diagnostic (usage exit code 2) instead of a traceback.
    """

    exit_code = 2
