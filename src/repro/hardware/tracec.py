"""Trace/superblock execution engine: tier 4 ("trace") of the stack.

The block tier (:mod:`repro.hardware.blockc`) fused each basic block
into one generated function but still pays a driver round-trip -- one
Python call, one step-limit guard, two tuple indexings -- per dynamic
*block*.  This module fuses whole **regions**: natural loops (plus the
superblock chains hanging off their headers) and, for small functions,
the entire function body, selected with the per-block hot-spot counts
an :class:`~repro.observability.ExecutionProfiler` collected under the
block tier (or statically, when no profile is given).  One generated
function per region

- inlines every member block's handler statements, so a loop iteration
  runs without leaving the generated code;
- keeps SSA values whose every read sits inside the region in Python
  *locals* instead of ``frame`` dict slots, including loop-carried
  header phis (pre-loaded from the frame at region entry, routed
  between locals on the back edge);
- loads loop-invariant operands into locals once, in the region
  preamble (the frame copy stays authoritative: nothing re-writes it
  while the region runs);
- routes internal CFG edges with inline parallel assignments and a
  small ``_n`` chain dispatch (direct branches between fused chains
  never return to the driver);
- hoists provably loop-invariant ``dfi.chkdef`` runs into a single
  :meth:`DfiShadow.check_batch` at region entry -- legal only when the
  region contains no ``dfi.setdef``, no calls and no fallback handlers
  (the shadow is frozen for the whole invocation) and each hoisted
  pointer is region-invariant and set on every path to the header; a
  failing entry check *deopts* the whole invocation to the decoded
  tier before any charge is applied, so trap sites and counters stay
  bit-identical;
- memoizes loop-invariant PAC ``sign``/``auth`` results keyed on
  :attr:`PointerAuthentication.key_epoch`: ``corrupt_key``/``rekey``
  bump the epoch, so the memo can never replay a stale MAC, and both
  the hit test and the store require ``pac.fault_hook is None`` so
  chaos injection always sees the real call.

Side exits fall back exactly like the block tier: a block whose
execution could cross the step limit first spills its live region
locals back to the frame, then delegates the rest of the call to the
decoded loop, which raises ``StepLimitExceeded`` at precisely the
right op.  Batched accounting and the traceback-line trap fixup are
shared with the block tier (:func:`blockc._trap_fixup`); a region
carries one :class:`blockc._BlockMeta` whose op table concatenates all
member blocks, so the existing fixup repairs a trapping chunk no
matter which fused block it came from.

Region selection is profile-guided: ``trace_compile(module, profile)``
takes the ``"function:block" -> executions`` map exported by
:func:`repro.observability.profile.hot_block_counts` and skips cold
functions and cold loops; chains are laid out hottest-successor-first.
Compiled programs are cached on the module keyed on the structural
fingerprint *and* a digest of the profile
(:func:`repro.perf.regions.profile_digest`), and dropped by
:func:`repro.hardware.decoder.invalidate_decode_cache`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from ..ir.cfg import DominatorTree
from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    DfiChkDef,
    DfiSetDef,
    Instruction,
    Load,
    PacAuth,
    PacSign,
    Phi,
    Store,
)
from ..ir.module import Module
from ..ir.values import Argument
from .blockc import (
    BLOCK_ISSUE_WIDTH,
    BLOCK_RET,
    BlockCode,
    _BlockMeta,
    _FnGen,
    _body_instructions,
    _classify,
    _emit_op,
    _gen_block,
    _gen_dfi_chk_batch,
    _plan_locals,
    _simulate,
    _trap_fixup,
)
from .decoder import (
    DecodedBlock,
    _DECODED_MODULES,
    _fingerprint,
    _spec,
    decode_module,
)
from .errors import CanaryTrap, DfiTrap, NullPointerTrap
from .memory import MemoryFault
from .pac import ADDR_MASK, PAC_BITS, VA_BITS
from .timing import DEFAULT_COSTS

#: Attribute under which a module carries its cached trace compile.
_TRACE_ATTR = "_trace_program"

#: Hard cap on blocks fused into one region; oversized loops are left
#: to the per-block functions rather than truncated (truncation would
#: break the single-entry property region codegen relies on).
MAX_REGION_BLOCKS = 48

#: Functions at or below this many blocks compile as one whole-function
#: region (header = entry), subsuming their loops entirely.
WHOLE_FUNCTION_BLOCKS = 24


class RegionCode:
    """One region (superblock set) compiled to a fused function.

    Mirrors :class:`blockc.BlockCode` slot-for-slot so the existing
    block drivers (:meth:`CPU._interpret_block` and its profiled twin)
    dispatch regions without modification: ``nsteps`` is the *header*
    block's step count (the driver's entry guard; every fused block
    repeats the same guard inside the generated function), ``dblock``
    is the header's decoded twin (the deopt target), and ``self_pair``
    is what side exits of other code hand the driver.
    """

    __slots__ = ("fn", "dblock", "nsteps", "meta", "self_pair", "label", "blocks")

    def __init__(self, dblock: DecodedBlock, nsteps: int, label: str = "",
                 blocks: int = 1):
        self.fn = None
        self.dblock = dblock
        self.nsteps = nsteps
        self.meta: Optional[_BlockMeta] = None
        self.self_pair = (self, None)
        #: header's ``function:block`` tag, so a trace-tier profile can
        #: be fed back into region selection (which keys on the header)
        self.label = label
        #: number of basic blocks fused into this region
        self.blocks = blocks


class TraceProgram:
    """All defined functions of one module, trace-compiled."""

    __slots__ = (
        "functions",
        "fingerprint",
        "profile_digest",
        "compile_seconds",
        "issue_width",
        "sources",
        "region_count",
        "fused_blocks",
    )

    def __init__(self, fingerprint: tuple, profile_digest: Optional[str]):
        #: Function -> entry code (RegionCode or BlockCode)
        self.functions: Dict[Function, object] = {}
        self.fingerprint = fingerprint
        self.profile_digest = profile_digest
        self.compile_seconds = 0.0
        self.issue_width = BLOCK_ISSUE_WIDTH
        #: Function -> generated source, kept for debugging
        self.sources: Dict[Function, str] = {}
        self.region_count = 0
        self.fused_blocks = 0


class _Region:
    """One selected region before code generation."""

    __slots__ = ("header", "blocks", "ids", "chains", "head_index")

    def __init__(self, header: DecodedBlock, blocks: List[DecodedBlock]):
        self.header = header
        self.blocks = blocks
        self.ids: Set[int] = {id(b) for b in blocks}
        #: superblock chains; chain 0 starts at the header
        self.chains: List[List[DecodedBlock]] = []
        #: id(chain head) -> chain number, the ``_n`` dispatch table
        self.head_index: Dict[int, int] = {}


class _RegionPlan:
    """Per-region analysis results consumed by the generator."""

    __slots__ = (
        "locals_map",
        "spill",
        "invariants",
        "header_phis",
        "dfi_specs",
        "dfi_skip",
        "pac_sites",
        "has_loop",
    )

    def __init__(self):
        #: id(value) -> Python local name (region locals + invariants)
        self.locals_map: Dict[int, str] = {}
        #: (value, local name) pairs flushed to the frame before a deopt
        self.spill: List[Tuple[object, str]] = []
        #: (value, local name) preamble loads of loop-invariant operands
        self.invariants: List[Tuple[object, str]] = []
        #: (phi, local name) preamble loads of localized header phis
        self.header_phis: List[Tuple[Phi, str]] = []
        #: hoisted dfi.chkdef specs, check_batch format (deduplicated)
        self.dfi_specs: List[tuple] = []
        #: (id(dblock), body index) of hoisted sites (skipped inline)
        self.dfi_skip: Set[Tuple[int, int]] = set()
        #: (id(dblock), body index) -> memo index for PAC sign/auth
        self.pac_sites: Dict[Tuple[int, int], int] = {}
        self.has_loop = False


def _successors(dblock: DecodedBlock) -> tuple:
    term = dblock.term
    if term[0] == "jump":
        return (term[1],)
    if term[0] == "br":
        return (term[2], term[3])
    return ()


def _function_order(entry: DecodedBlock) -> List[DecodedBlock]:
    """Reachable decoded blocks, BFS from the entry (stable order)."""
    order: List[DecodedBlock] = []
    seen = {id(entry)}
    worklist = [entry]
    while worklist:
        dblock = worklist.pop(0)
        order.append(dblock)
        for successor in _successors(dblock):
            if id(successor) not in seen:
                seen.add(id(successor))
                worklist.append(successor)
    return order


def _block_steps(dblock: DecodedBlock) -> int:
    return len(dblock.ops) + (0 if dblock.term[0] == "fall" else 1)


# ---------------------------------------------------------------------------
# Region selection
# ---------------------------------------------------------------------------


def _natural_loops(
    order: List[DecodedBlock], dom: DominatorTree
) -> List[Tuple[DecodedBlock, Dict[int, DecodedBlock]]]:
    """Natural loops over the decoded CFG, merged per header.

    A back edge is ``X -> H`` with ``H.source`` dominating ``X.source``;
    the loop body is every block that reaches ``X`` backwards without
    passing ``H``.  Natural loops are single-entry: every predecessor
    of a non-header member is itself a member, which is exactly the
    property region codegen needs (outside code can only ever jump to
    the header).
    """
    preds: Dict[int, List[DecodedBlock]] = {}
    for dblock in order:
        for successor in _successors(dblock):
            preds.setdefault(id(successor), []).append(dblock)
    loops: Dict[int, Tuple[DecodedBlock, Dict[int, DecodedBlock]]] = {}
    for dblock in order:
        for successor in _successors(dblock):
            if not dom.dominates(successor.source, dblock.source):
                continue
            header = successor
            entry = loops.get(id(header))
            if entry is None:
                entry = loops[id(header)] = (header, {id(header): header})
            body = entry[1]
            stack = [dblock]
            while stack:
                member = stack.pop()
                if id(member) in body:
                    continue
                body[id(member)] = member
                stack.extend(preds.get(id(member), ()))
    return list(loops.values())


def _select_regions(
    function: Function,
    order: List[DecodedBlock],
    dom: DominatorTree,
    counts: Optional[Dict[str, float]],
) -> List[_Region]:
    def execs(dblock: DecodedBlock) -> float:
        if counts is None:
            return 0.0
        return counts.get(f"{function.name}:{dblock.source.name}", 0.0)

    if len(order) <= WHOLE_FUNCTION_BLOCKS:
        # Small function: one region covering everything, rooted at the
        # entry block.  With a profile, skip functions that never ran.
        if counts is not None and execs(order[0]) <= 0:
            return []
        return [_Region(order[0], list(order))]

    pos = {id(d): i for i, d in enumerate(order)}
    candidates: List[_Region] = []
    for header, body in _natural_loops(order, dom):
        if len(body) > MAX_REGION_BLOCKS:
            continue
        if counts is not None and execs(header) <= 0:
            continue
        blocks = sorted(body.values(), key=lambda d: pos[id(d)])
        candidates.append(_Region(header, blocks))
    # Outermost loops first; nested/overlapping ones are dropped so the
    # chosen regions stay disjoint (single-entry is per region).
    candidates.sort(key=lambda r: (-len(r.blocks), pos[id(r.header)]))
    chosen: List[_Region] = []
    taken: Set[int] = set()
    for region in candidates:
        if region.ids & taken:
            continue
        taken |= region.ids
        chosen.append(region)
    return chosen


#: Largest block (in decoded ops) tail duplication may copy into a chain.
DUPLICATE_OPS = 12

#: Emitted-ops growth factor tail duplication may cost per region.
DUPLICATE_GROWTH = 2


def _build_chains(region: _Region, hotness, pos: Dict[int, int]) -> None:
    """Greedy superblock layout: fall-through chains, hot successor first.

    A block extends a chain when it is internal, not the header, and
    either unplaced with exactly one internal in-edge, or small enough
    for *tail duplication*: join blocks (several in-edges) are copied
    into each predecessor's chain instead of forcing a trip through the
    ``_n`` dispatch ladder, so a loop iteration spanning an if/else
    diamond fuses into one straight-line segment per path.  Duplication
    is exact -- every copy retires the same ops and resolves its phi
    routes against its actual static predecessor -- and is bounded by
    :data:`DUPLICATE_OPS` per block, :data:`DUPLICATE_GROWTH` per
    region, and a no-revisit rule per chain (which also breaks cycles;
    the back edge to the header always ends the chain).  Chains whose
    head no emitted edge can reach anymore (every predecessor
    duplicated its own copy) are dropped.
    """
    ids = region.ids
    edge_count: Dict[int, int] = {id(b): 0 for b in region.blocks}
    for dblock in region.blocks:
        for successor in _successors(dblock):
            if id(successor) in ids:
                edge_count[id(successor)] += 1

    placed: Set[int] = set()
    budget = DUPLICATE_GROWTH * sum(
        _block_steps(dblock) for dblock in region.blocks
    )

    def eligible(successor: DecodedBlock, chain_ids: Set[int]) -> bool:
        if id(successor) not in ids or successor is region.header:
            return False
        if id(successor) in chain_ids:
            return False  # no revisits: breaks cycles not through the header
        if edge_count[id(successor)] == 1 and id(successor) not in placed:
            return True
        return (
            len(successor.ops) <= DUPLICATE_OPS
            and successor.term[0] != "fall"
            and budget - _block_steps(successor) >= 0
        )

    def fallthrough(
        current: DecodedBlock, chain_ids: Set[int]
    ) -> Optional[DecodedBlock]:
        term = current.term
        if term[0] == "jump":
            targets = [term[1]]
        elif term[0] == "br":
            constant, payload = term[1]
            if constant:
                targets = [term[2] if payload & 1 else term[3]]
            else:
                # hotter arm becomes the fall-through; false arm on ties
                targets = sorted(
                    (term[3], term[2]), key=lambda s: (-hotness(s), pos[id(s)])
                )
        else:
            return None
        for target in targets:
            if eligible(target, chain_ids):
                return target
        return None

    def goto_targets(
        dblock: DecodedBlock, nxt: Optional[DecodedBlock]
    ) -> List[DecodedBlock]:
        """Internal successors the emitted code dispatches to by goto.

        Mirrors :func:`_emit_region_term`: static transfers (jump /
        constant branch / degenerate branch) reference only their one
        target; the fall-through into the next chain position is not a
        goto at all.
        """
        target = _static_target(dblock)
        if target is not None:
            succs = [target]
        elif dblock.term[0] == "br":
            succs = [dblock.term[2], dblock.term[3]]
        else:
            return []
        return [s for s in succs if s is not nxt and id(s) in ids]

    chains: List[List[DecodedBlock]] = []

    def build_chain(seed: DecodedBlock) -> None:
        chain = [seed]
        chain_ids = {id(seed)}
        placed.add(id(seed))
        current = seed
        while True:
            nxt = fallthrough(current, chain_ids)
            if nxt is None:
                break
            if edge_count[id(nxt)] == 1 and id(nxt) not in placed:
                placed.add(id(nxt))
            else:
                nonlocal budget
                budget -= _block_steps(nxt)
            chain.append(nxt)
            chain_ids.add(id(nxt))
            current = nxt
        chains.append(chain)

    seeds = [region.header] + sorted(
        (b for b in region.blocks if b is not region.header),
        key=lambda b: (-hotness(b), pos[id(b)]),
    )
    for seed in seeds:
        if id(seed) not in placed:
            build_chain(seed)

    # Duplication can leave a goto dangling: a copied predecessor may
    # branch to a single-in-edge block that sits mid-chain elsewhere and
    # so heads no chain.  Seed forced chains (correctness beats budget)
    # until every emitted goto target is dispatchable.
    while True:
        head_ids = {id(chain[0]) for chain in chains}
        missing: Optional[DecodedBlock] = None
        for chain in chains:
            for position, dblock in enumerate(chain):
                nxt = (
                    chain[position + 1] if position + 1 < len(chain) else None
                )
                for successor in goto_targets(dblock, nxt):
                    if id(successor) not in head_ids:
                        missing = successor
                        break
                if missing is not None:
                    break
            if missing is not None:
                break
        if missing is None:
            break
        build_chain(missing)

    # Drop chains nothing dispatches to anymore: once every predecessor
    # carries its own duplicated copy of a join block, the join's own
    # chain (seeded because duplication never marks a block placed) is
    # dead weight in the dispatch ladder.
    head_of = {id(chain[0]): index for index, chain in enumerate(chains)}
    adjacency: List[Set[int]] = []
    for chain in chains:
        targets: Set[int] = set()
        for position, dblock in enumerate(chain):
            nxt = chain[position + 1] if position + 1 < len(chain) else None
            for successor in goto_targets(dblock, nxt):
                index = head_of.get(id(successor))
                if index is not None:
                    targets.add(index)
        adjacency.append(targets)
    keep = {0}
    worklist = [0]
    while worklist:
        for index in adjacency[worklist.pop()]:
            if index not in keep:
                keep.add(index)
                worklist.append(index)
    region.chains = [chain for i, chain in enumerate(chains) if i in keep]
    region.head_index = {
        id(chain[0]): i for i, chain in enumerate(region.chains)
    }


# ---------------------------------------------------------------------------
# Region analysis: locals, invariants, hoisting, memoization
# ---------------------------------------------------------------------------


def _function_reads(
    order: List[DecodedBlock],
) -> Tuple[Set[int], Dict[int, Set[int]]]:
    """(pinned ids, value id -> reader block ids) over a whole function.

    Readers cover body operands, terminator payloads, and the phi
    routes a block applies on its *outgoing* edges (routing runs in the
    predecessor's generated code).  ``pinned`` values are read through
    the frame dict at runtime (fallback handlers, batched DFI checks)
    and can never live in a Python local.
    """
    pinned: Set[int] = set()
    read_in: Dict[int, Set[int]] = {}

    for dblock in order:
        bid = id(dblock)

        def read(value, via_frame=False, bid=bid):
            read_in.setdefault(id(value), set()).add(bid)
            if via_frame:
                pinned.add(id(value))

        body = _body_instructions(dblock)
        for i, inst in enumerate(body):
            impure = dblock.ops[i][2]
            _, reads, via_frame = _classify(inst, impure)
            for value in reads:
                read(value, via_frame)
        term = dblock.term
        if term[0] == "ret":
            spec = term[1]
            if spec is not None and not spec[0]:
                read(spec[1])
        elif term[0] == "br" and not term[1][0]:
            read(term[1][1])
        for successor in _successors(dblock):
            route = successor.phi_routes.get(dblock)
            if isinstance(route, tuple):
                for _, constant, payload in route:
                    if not constant:
                        read(payload)
    return pinned, read_in


def _make_spiller(slots: Tuple[Tuple[object, str], ...]):
    """Closure flushing bound region locals back into the frame dict.

    Called right before a mid-region deopt to the decoded tier; locals
    not yet bound on this path are simply absent from ``locals()`` and
    skipped.
    """

    def _spill(frame, loc):
        for value, name in slots:
            bound = loc.get(name)
            if bound is not None:
                frame[value] = bound

    return _spill


def _plan_region(
    function: Function,
    order: List[DecodedBlock],
    region: _Region,
    dom: DominatorTree,
    layout,
) -> _RegionPlan:
    plan = _RegionPlan()
    by_id = {id(d): d for d in order}
    pinned, read_in = _function_reads(order)
    header_source = region.header.source

    backedge_sources = [
        dblock
        for dblock in region.blocks
        for successor in _successors(dblock)
        if id(successor) in region.ids
        and dom.dominates(successor.source, dblock.source)
    ]
    plan.has_loop = bool(backedge_sources)

    # Everything a region invocation may (re)define: body results --
    # def_ok or not, since fallback handlers write their result through
    # the frame mid-region -- plus the region's own phis.  Allocas are
    # exempt: their frame slot is assigned once at call layout and the
    # generated code never writes it.
    region_defined: Set[int] = set()
    region_bodies: Dict[int, List[object]] = {}
    for dblock in region.blocks:
        body = _body_instructions(dblock)
        region_bodies[id(dblock)] = body
        for inst in body:
            if not isinstance(inst, Alloca):
                region_defined.add(id(inst))
        for phi in dblock.source.phis:
            region_defined.add(id(phi))

    def always_set_at_entry(value) -> bool:
        """Frame slot guaranteed bound whenever the region is entered."""
        if isinstance(value, (Argument, Alloca)):
            return True
        if isinstance(value, Instruction) and value.parent is not None:
            return dom.dominates(value.parent, header_source)
        return False

    # -- region locals ------------------------------------------------------
    def consider(value, dblock) -> None:
        if id(value) in pinned or id(value) in plan.locals_map:
            return
        readers = read_in.get(id(value), set())
        if not readers <= region.ids:
            return
        # SSA guarantees def-dominates-use; checking it keeps malformed
        # IR on the (accepted) divergence path instead of silently
        # reading a stale local from a previous iteration.
        if not all(
            dom.dominates(dblock.source, by_id[r].source) for r in readers
        ):
            return
        name = f"_l{len(plan.spill)}"
        plan.locals_map[id(value)] = name
        plan.spill.append((value, name))
        if isinstance(value, Phi) and dblock is region.header:
            plan.header_phis.append((value, name))

    for dblock in region.blocks:
        for phi in dblock.source.phis:
            consider(phi, dblock)
        body = region_bodies[id(dblock)]
        for i, inst in enumerate(body):
            impure = dblock.ops[i][2]
            def_ok, _, _ = _classify(inst, impure)
            if def_ok:
                consider(inst, dblock)

    region_pure = True
    for dblock in region.blocks:
        for i, inst in enumerate(region_bodies[id(dblock)]):
            if dblock.ops[i][2] or isinstance(inst, DfiSetDef):
                region_pure = False
                break
        if not region_pure:
            break

    if not plan.has_loop:
        return plan

    # -- loop-invariant operand loads ---------------------------------------
    def invariant(value) -> bool:
        return id(value) not in region_defined and always_set_at_entry(value)

    seen_inv: Set[int] = set()
    for dblock in region.blocks:
        body = region_bodies[id(dblock)]
        sources: List[object] = []
        for i, inst in enumerate(body):
            impure = dblock.ops[i][2]
            _, reads, via_frame = _classify(inst, impure)
            if not via_frame:
                sources.extend(reads)
        term = dblock.term
        if term[0] == "ret" and term[1] is not None and not term[1][0]:
            sources.append(term[1][1])
        elif term[0] == "br" and not term[1][0]:
            sources.append(term[1][1])
        for successor in _successors(dblock):
            route = successor.phi_routes.get(dblock)
            if isinstance(route, tuple):
                for _, constant, payload in route:
                    if not constant:
                        sources.append(payload)
        for value in sources:
            if id(value) in seen_inv or id(value) in plan.locals_map:
                continue
            seen_inv.add(id(value))
            if _spec(value, layout)[0]:
                continue  # folds to a literal anyway
            if not invariant(value):
                continue
            name = f"_i{len(plan.invariants)}"
            plan.invariants.append((value, name))
            plan.locals_map[id(value)] = name

    # -- hoisted DFI checks -------------------------------------------------
    if region_pure:
        seen_specs: Set[tuple] = set()
        for dblock in region.blocks:
            # Only sites that run on every completed iteration (their
            # block dominates a back edge) are worth hoisting; others
            # would risk deopting on checks the program never executes.
            if not any(
                dom.dominates(dblock.source, x.source) for x in backedge_sources
            ):
                continue
            body = region_bodies[id(dblock)]
            for i, inst in enumerate(body):
                if not isinstance(inst, DfiChkDef) or dblock.ops[i][2]:
                    continue
                constant, pointer = _spec(inst.pointer, layout)
                if not constant and not invariant(pointer):
                    continue
                plan.dfi_skip.add((id(dblock), i))
                key = (
                    constant,
                    pointer if constant else id(pointer),
                    inst.size,
                    inst.allowed,
                )
                if key in seen_specs:
                    continue
                seen_specs.add(key)
                plan.dfi_specs.append(
                    (constant, pointer, inst.size, inst.allowed)
                )

    # -- PAC sign/auth memoization ------------------------------------------
    for dblock in region.blocks:
        body = region_bodies[id(dblock)]
        for i, inst in enumerate(body):
            if not isinstance(inst, (PacSign, PacAuth)) or dblock.ops[i][2]:
                continue
            vconst, vvalue = _spec(inst.value, layout)
            mconst, mvalue = _spec(inst.modifier, layout)
            if not vconst and id(vvalue) in region_defined:
                continue
            if not mconst and id(mvalue) in region_defined:
                continue
            plan.pac_sites[(id(dblock), i)] = len(plan.pac_sites)

    return plan


# ---------------------------------------------------------------------------
# Region code generation
# ---------------------------------------------------------------------------


def _emit_region_phi_edge(gen: _FnGen, route, indent: int) -> bool:
    """Inline phi routing for one region edge; targets may be locals.

    Charges go to the region's local accumulators (``_cy``/``_in``/
    ``_cr``), not to ``timing`` -- region code flushes those at every
    exit (see _gen_region).
    """
    if isinstance(route, str):
        gen.emit(f"raise KeyError({route!r})", indent=indent)
        return True
    n = len(route)
    gen.emit(f"_in += {n}", indent=indent)
    gen.emit(f"counts['phi'] += {n}", indent=indent)
    gen.emit(f"_pr = _cr + {n}", indent=indent)
    gen.emit(f"_cy += _pr // {BLOCK_ISSUE_WIDTH}", indent=indent)
    gen.emit(f"_cr = _pr % {BLOCK_ISSUE_WIDTH}", indent=indent)
    targets = ", ".join(gen.target(phi) for phi, _, _ in route)
    values = ", ".join(
        gen.operand((constant, payload)) for _, constant, payload in route
    )
    gen.emit(f"{targets} = {values}", indent=indent)
    return False


def _emit_region_goto(
    gen: _FnGen,
    region: _Region,
    dblock: DecodedBlock,
    target: DecodedBlock,
    k: int,
    indent: int,
    next_block: Optional[DecodedBlock],
    codes: Dict[int, object],
    merged: bool,
    flush,
) -> None:
    route = target.phi_routes.get(dblock)
    if route is not None:
        if merged:
            # The edge's charges ride in the op stream as 'phi'
            # pseudo-ops; only the parallel register moves remain.
            targets = ", ".join(gen.target(phi) for phi, _, _ in route)
            values = ", ".join(
                gen.operand((constant, payload))
                for _, constant, payload in route
            )
            gen.emit(f"{targets} = {values}", indent=indent)
        elif _emit_region_phi_edge(gen, route, indent):
            return
    if id(target) in region.ids:
        if target is next_block:
            return  # fall through into the next fused block
        if len(region.chains) > 1:
            gen.emit(f"_n = {region.head_index[id(target)]}", indent=indent)
        gen.emit("continue", indent=indent, op=k)
    else:
        pair = gen.bind(codes[id(target)].self_pair, "S")
        flush(indent)
        gen.emit(f"return {pair}", indent=indent, op=k)


def _emit_region_term(
    gen: _FnGen,
    region: _Region,
    dblock: DecodedBlock,
    k: int,
    d: int,
    next_block: Optional[DecodedBlock],
    codes: Dict[int, object],
    static_merged: bool,
    fall_merged: bool,
    flush,
) -> None:
    term = dblock.term
    kind = term[0]
    if kind == "ret":
        spec = term[1]
        flush(d)
        if spec is None:
            gen.emit(f"return {gen.bind((BLOCK_RET, None), 'R')}", indent=d, op=k)
        elif spec[0]:
            gen.emit(
                f"return {gen.bind((BLOCK_RET, spec[1]), 'R')}", indent=d, op=k
            )
        else:
            gen.emit(f"return (_RET, {gen.operand(spec)})", indent=d, op=k)
        return
    if kind == "jump":
        _emit_region_goto(
            gen, region, dblock, term[1], k, d, next_block, codes,
            static_merged, flush,
        )
        return
    constant, payload = term[1]
    t_true, t_false = term[2], term[3]
    if constant:
        target = t_true if payload & 1 else t_false
        _emit_region_goto(
            gen, region, dblock, target, k, d, next_block, codes,
            static_merged, flush,
        )
        return
    if t_true is t_false:
        # Degenerate branch: both arms coincide, so the transfer is
        # static (see _static_target) and the pure condition operand
        # need not be evaluated.
        _emit_region_goto(
            gen, region, dblock, t_true, k, d, next_block, codes,
            static_merged, flush,
        )
        return
    cond = gen.operand(term[1])
    if t_false is next_block and t_true is not next_block:
        gen.emit(f"if (({cond}) & 1):", indent=d, op=k)
        _emit_region_goto(
            gen, region, dblock, t_true, k, d + 1, None, codes, False, flush
        )
        _emit_region_goto(
            gen, region, dblock, t_false, k, d, next_block, codes,
            fall_merged, flush,
        )
    elif t_true is next_block and t_false is not next_block:
        gen.emit(f"if not (({cond}) & 1):", indent=d, op=k)
        _emit_region_goto(
            gen, region, dblock, t_false, k, d + 1, None, codes, False, flush
        )
        _emit_region_goto(
            gen, region, dblock, t_true, k, d, next_block, codes,
            fall_merged, flush,
        )
    else:
        gen.emit(f"if (({cond}) & 1):", indent=d, op=k)
        _emit_region_goto(
            gen, region, dblock, t_true, k, d + 1, None, codes, False, flush
        )
        _emit_region_goto(
            gen, region, dblock, t_false, k, d, None, codes, False, flush
        )


def _emit_pac_memo(
    gen: _FnGen, inst, layout, k: int, d: int, memo: int
) -> None:
    value = gen.operand(_spec(inst.value, layout))
    modifier = gen.operand(_spec(inst.modifier, layout))
    target = gen.target(inst)
    method = "sign" if isinstance(inst, PacSign) else "auth"
    gen.emit(
        f"if _pe{memo} == pac.key_epoch and pac.fault_hook is None:", indent=d
    )
    gen.emit(f"    pac.{method}_count += 1", indent=d)
    gen.emit(f"    {target} = _pv{memo}", indent=d)
    gen.emit("else:", indent=d)
    gen.emit(
        f"    _t = pac.{method}({value}, {modifier}, {inst.key_id!r})",
        indent=d,
        op=k,
    )
    gen.emit(f"    {target} = _t", indent=d)
    gen.emit("    if pac.fault_hook is None:", indent=d)
    gen.emit(f"        _pe{memo} = pac.key_epoch", indent=d)
    gen.emit(f"        _pv{memo} = _t", indent=d)


_PAC_FIELD = (1 << PAC_BITS) - 1
_U64_MASK = (1 << 64) - 1


def _emit_pac_inline_auth(gen: _FnGen, inst, layout, k: int, d: int) -> None:
    """Open-code the MAC-memo probe of :meth:`PointerAuthentication.auth`.

    Sites whose operands vary across iterations cannot use the
    loop-invariant memo slot, but the authenticated value is often
    dynamically stable, so the shared ``_pac_cache`` usually holds the
    expected PAC already.  The probe replicates auth's own hit path --
    same key tuple, same counter bump, same strip -- and any miss or
    mismatch defers to the real method, which recomputes, stores, and
    raises exactly as before.  Like the sign twin, the probe stands down
    whenever a fault hook is installed: auth routes substitution faults
    (``on_pac_auth``) through the full method, so chaos runs must never
    short-circuit an auth site.
    """
    value = gen.operand(_spec(inst.value, layout))
    modifier = gen.operand(_spec(inst.modifier, layout))
    target = gen.target(inst)
    gen.emit(
        f"_t = None if pac.fault_hook is not None else "
        f"_pg(({inst.key_id!r}, ({value}) & {ADDR_MASK}, "
        f"({modifier}) & {_U64_MASK}, pac.key_epoch))",
        indent=d,
        op=k,
    )
    gen.emit(
        f"if _t is not None and ((({value}) >> {VA_BITS}) & {_PAC_FIELD}) == _t:",
        indent=d,
    )
    gen.emit("    pac.auth_count += 1", indent=d)
    gen.emit(f"    {target} = ({value}) & {ADDR_MASK}", indent=d)
    gen.emit("else:", indent=d)
    gen.emit(
        f"    {target} = _pa({value}, {modifier}, {inst.key_id!r})",
        indent=d,
        op=k,
    )


def _emit_pac_inline_sign(gen: _FnGen, inst, layout, k: int, d: int) -> None:
    """Open-code the MAC-memo probe of ``sign``; see the auth twin.

    Sign additionally routes through the fault hook when one is
    installed, so the probe only fires for hook-free runs -- chaos runs
    take the full method call at every site.
    """
    value = gen.operand(_spec(inst.value, layout))
    modifier = gen.operand(_spec(inst.modifier, layout))
    target = gen.target(inst)
    gen.emit(
        f"_t = None if pac.fault_hook is not None else "
        f"_pg(({inst.key_id!r}, ({value}) & {ADDR_MASK}, "
        f"({modifier}) & {_U64_MASK}, pac.key_epoch))",
        indent=d,
        op=k,
    )
    gen.emit("if _t is None:", indent=d)
    gen.emit(
        f"    {target} = _ps({value}, {modifier}, {inst.key_id!r})",
        indent=d,
        op=k,
    )
    gen.emit("else:", indent=d)
    gen.emit("    pac.sign_count += 1", indent=d)
    gen.emit(
        f"    {target} = (({value}) & {ADDR_MASK}) | (_t << {VA_BITS})",
        indent=d,
    )


def _chain_segments(chain: List[DecodedBlock]) -> List[Tuple[int, int]]:
    """Split a chain into guard segments at call-carrying blocks.

    Returns ``(start, end)`` position ranges.  A segment is the unit of
    step-limit guarding: one check at the segment head covers every
    step its fused chunks charge.  A block whose ops include an impure
    op (a call) ends its segment, because the callee retires an unknown
    number of steps -- the next block must re-check against
    ``max_steps`` before charging anything, which is exactly where the
    block tier's per-block guard would re-check.  A triggered guard
    deopts the whole segment to the decoded oracle from the segment
    head, whose replay retires bit-identical state to running the fused
    blocks one tier down.
    """
    segments: List[Tuple[int, int]] = []
    start = 0
    for position, dblock in enumerate(chain):
        if any(op[2] for op in dblock.ops):
            segments.append((start, position + 1))
            start = position + 1
    if start < len(chain):
        segments.append((start, len(chain)))
    return segments


def _static_target(dblock: DecodedBlock) -> Optional[DecodedBlock]:
    """The successor an emitted block reaches unconditionally, if any.

    Jumps, constant-condition branches, and degenerate branches whose
    arms coincide all transfer control to one statically-known block;
    their outgoing phi routing can therefore charge inside the
    preceding chunk (the condition operand of a degenerate branch is
    pure, so not evaluating it is unobservable).
    """
    term = dblock.term
    if term[0] == "jump":
        return term[1]
    if term[0] == "br":
        constant, payload = term[1]
        if constant:
            return term[2] if payload & 1 else term[3]
        if term[2] is term[3]:
            return term[2]
    return None


def _chunk_tables(all_info, s: int, e: int) -> Tuple[tuple, tuple]:
    costs = [all_info[i][1] for i in range(s, e)]
    cycles_table = tuple(
        _simulate(costs, BLOCK_ISSUE_WIDTH, r)[0]
        for r in range(BLOCK_ISSUE_WIDTH)
    )
    cheap_table = tuple(
        _simulate(costs, BLOCK_ISSUE_WIDTH, r)[1]
        for r in range(BLOCK_ISSUE_WIDTH)
    )
    return cycles_table, cheap_table


def _emit_chunk_charges(
    gen: _FnGen, all_info, s: int, e: int, kvar: str
) -> None:
    """Batched retirement for one (possibly cross-block) pure chunk.

    A chunk may span every block fused between two impure ops or
    conditional branches, plus the 'phi' pseudo-ops of statically-taken
    edges inside that span.  All charges land in the region's local
    accumulators (``_cy`` cycles, ``_cr`` issue residue, ``_in``
    instructions, ``_st`` steps -- phi routing retires instructions and
    issue slots but no steps) plus one execution counter per chunk
    (``kvar``), from which exits reconstruct the opcode histogram; only
    the chunk-entry residue ``_r0`` stays materialised because the trap
    fixup reads it from the frame.
    """
    cycles_table, cheap_table = _chunk_tables(all_info, s, e)
    n = e - s
    nsteps = sum(1 for i in range(s, e) if all_info[i][0] != "phi")
    gen.emit("_r0 = _cr")
    parts = [
        f"_cy += {gen.bind(cycles_table, 'T')}[_r0]",
        f"_cr = {gen.bind(cheap_table, 'T')}[_r0]",
        f"_in += {n}",
    ]
    if nsteps:
        parts.append(f"_st += {nsteps}")
    parts.append(f"{kvar} += 1")
    gen.emit("; ".join(parts))


def _emit_impure_charges(gen: _FnGen, all_info, s: int) -> None:
    """Flush-and-charge for an impure single-op chunk.

    The callee (or fallback handler) reads and charges ``cpu.steps``,
    ``timing.cycles`` and ``timing._cheap_run`` itself, so the pending
    local accumulators for those must flush *before* re-entry -- this
    is also what keeps a step-limit or trap raised inside the callee
    bit-identical to the block tier.  Pending instructions and opcode
    tallies stay local: the callee only ever adds to them, so the sums
    commute, and every region exit (including the exception handler)
    flushes them.  The caller emits the op statement itself, then
    re-reads ``_cr`` (the callee moved the residue).
    """
    name = all_info[s][0]
    cycles_table, cheap_table = _chunk_tables(all_info, s, s + 1)
    gen.emit(f"timing.cycles += _cy + {gen.bind(cycles_table, 'T')}[_cr]")
    gen.emit(f"timing._cheap_run = {gen.bind(cheap_table, 'T')}[_cr]")
    gen.emit("_cy = 0")
    gen.emit("cpu.steps += _st + 1; _st = 0")
    gen.emit("_in += 1")
    gen.emit(f"counts[{name!r}] += 1")


def _gen_region(
    gen: _FnGen,
    fn_name: str,
    region: _Region,
    layout,
    meta: _BlockMeta,
    codes: Dict[int, object],
    plan: _RegionPlan,
) -> None:
    phi_cost = DEFAULT_COSTS["phi"]

    # -- superblock charge planning -------------------------------------
    # Chains split into guard segments (see _chain_segments); within a
    # segment the charges of consecutive fused blocks merge into
    # cross-block chunks, splitting only at impure ops (their own chunk,
    # as in the block tier) and *after* an unresolved conditional branch
    # (ops beyond it are path-dependent).  Phi routing on edges whose
    # traversal is certain once a chunk runs -- the static (jump /
    # constant-branch) edge out of a block, or the conditional
    # fall-through into the next fused block of the same segment --
    # charges as 'phi' pseudo-ops inside the op stream, leaving only the
    # parallel register moves at the edge itself.  A conditional
    # fall-through crossing a segment boundary keeps the full inline
    # edge: its charges must land *before* the next segment's guard can
    # deopt to the decoded oracle, which replays from the target block
    # and would never re-charge the already-traversed edge.
    # Tail duplication means one block may be emitted several times, so
    # every per-emission structure below keys on the *position*
    # (chain index, index within the chain), never on the block object.
    chains_segments = [_chain_segments(chain) for chain in region.chains]
    seg_steps: Dict[Tuple[int, int], int] = {}  # (ci, start pos) -> steps
    for ci, segments in enumerate(chains_segments):
        chain = region.chains[ci]
        for start, end in segments:
            seg_steps[(ci, start)] = sum(
                _block_steps(chain[p]) for p in range(start, end)
            )

    trailing_merge: Dict[Tuple[int, int], object] = {}  # static-edge route
    leading_merge: Dict[Tuple[int, int], object] = {}  # fall-in route
    for ci, chain in enumerate(region.chains):
        for position, dblock in enumerate(chain):
            next_block = (
                chain[position + 1] if position + 1 < len(chain) else None
            )
            target = _static_target(dblock)
            if target is not None:
                route = target.phi_routes.get(dblock)
                if route is not None and not isinstance(route, str) and route:
                    trailing_merge[(ci, position)] = route
                continue
            if (
                dblock.term[0] == "br"
                and next_block is not None
                and not any(op[2] for op in dblock.ops)
            ):
                route = next_block.phi_routes.get(dblock)
                if route is not None and not isinstance(route, str) and route:
                    leading_merge[(ci, position + 1)] = route

    # Concatenated op metadata: merged leading phis, body ops, one
    # terminator pseudo-op per block (br/jump/ret), merged trailing
    # phis -- with *global* indices and chunk bounds so the shared trap
    # fixup replays the right chunk wherever it trapped.  Every emission
    # of a duplicated block gets its own index range and chunk bounds.
    infos = []
    all_info: List[List[object]] = []
    info_by_pos: Dict[Tuple[int, int], tuple] = {}
    base = 0
    for ci, chain in enumerate(region.chains):
        for position, dblock in enumerate(chain):
            body = _body_instructions(dblock)
            lead = leading_merge.get((ci, position))
            nlead = len(lead) if lead else 0
            op_info: List[List[object]] = [
                ["phi", phi_cost, False] for _ in range(nlead)
            ]
            op_info.extend(
                [opcode, cost, impure]
                for opcode, cost, impure, _ in dblock.ops
            )
            term = dblock.term
            if term[0] == "ret":
                op_info.append(["ret", DEFAULT_COSTS["ret"], False])
            elif term[0] in ("jump", "br"):
                op_info.append(["br", DEFAULT_COSTS["br"], False])
            trail = trailing_merge.get((ci, position))
            op_info.extend(
                ["phi", phi_cost, False]
                for _ in range(len(trail) if trail else 0)
            )
            item = (dblock, body, op_info, base, nlead, len(body))
            infos.append(item)
            info_by_pos[(ci, position)] = item
            all_info.extend(op_info)
            base += len(op_info)

    chunk_at: Dict[int, Tuple[int, int]] = {}  # chunk start -> (s, e)
    chunk_of: Dict[int, Tuple[int, int]] = {}  # any op index -> its chunk
    for ci, segments in enumerate(chains_segments):
        chain = region.chains[ci]
        for start, end in segments:
            first = info_by_pos[(ci, start)]
            last = info_by_pos[(ci, end - 1)]
            s0 = first[3]
            e0 = last[3] + len(last[2])
            splits: Set[int] = set()
            for p in range(start, end):
                term = chain[p].term
                if (
                    term[0] == "br"
                    and not term[1][0]
                    and term[2] is not term[3]
                ):
                    item = info_by_pos[(ci, p)]
                    splits.add(item[3] + item[4] + item[5])
            chunks: List[Tuple[int, int]] = []
            start = s0
            for g in range(s0, e0):
                if all_info[g][2]:
                    if g > start:
                        chunks.append((start, g))
                    chunks.append((g, g + 1))
                    start = g + 1
                elif g in splits:
                    chunks.append((start, g + 1))
                    start = g + 1
            if start < e0:
                chunks.append((start, e0))
            for s, e in chunks:
                chunk_at[s] = (s, e)
                for g in range(s, e):
                    chunk_of[g] = (s, e)
    meta.ops = tuple(
        (info[0], info[1], info[2]) + chunk_of[g]
        for g, info in enumerate(all_info)
    )

    # One local execution counter per pure chunk; exits rebuild the
    # opcode histogram as counts[name] += sum(counter * multiplicity).
    chunk_no: Dict[int, str] = {}
    tally_terms: Dict[str, List[str]] = {}
    for s in sorted(chunk_at):
        e = chunk_at[s][1]
        if all_info[s][2]:
            continue  # impure chunks charge counts directly
        kvar = f"_k{len(chunk_no)}"
        chunk_no[s] = kvar
        tallies: Dict[str, int] = {}
        for i in range(s, e):
            name = all_info[i][0]
            tallies[name] = tallies.get(name, 0) + 1
        for name, count in tallies.items():
            tally_terms.setdefault(name, []).append(
                kvar if count == 1 else f"{kvar}*{count}"
            )
    tally_flush = [
        (name, " + ".join(terms)) for name, terms in tally_terms.items()
    ]

    uses_mem = uses_pac = uses_dfi = False
    for _, body, _, _, _, _ in infos:
        for inst in body:
            if isinstance(inst, (Load, Store)):
                uses_mem = True
            elif isinstance(inst, (PacSign, PacAuth)):
                uses_pac = True
            elif isinstance(inst, (DfiSetDef, DfiChkDef)):
                uses_dfi = True
    if plan.dfi_specs:
        uses_dfi = True

    spill_name = None
    if plan.spill:
        spill_name = gen.bind(_make_spiller(tuple(plan.spill)), "P")

    meta_name = gen.bind(meta, "M")
    gen.fn_names.append(fn_name)
    gen.current_map = meta.line_map
    gen.block_locals = plan.locals_map
    gen.emit(f"def {fn_name}(cpu, frame, timing, counts):", indent=1)
    gen.emit("try:", indent=2)
    # Local accounting accumulators (initialised before anything that
    # can raise -- the except clause flushes them unconditionally):
    # _cy cycles, _in instructions, _st steps, _cr issue residue, _kN
    # per-chunk execution counters.  Hot-loop chunks touch only these
    # locals; attribute and dict traffic happens once per region exit.
    gen.emit("_cy = 0; _in = 0; _st = 0", indent=3)
    kvars = list(chunk_no.values())
    for at in range(0, len(kvars), 20):
        gen.emit(" = ".join(kvars[at:at + 20]) + " = 0", indent=3)
    gen.emit("_cr = timing._cheap_run", indent=3)

    def flush(indent: int) -> None:
        gen.emit("timing.cycles += _cy", indent=indent)
        gen.emit("timing.instructions += _in", indent=indent)
        gen.emit("cpu.steps += _st", indent=indent)
        gen.emit("timing._cheap_run = _cr", indent=indent)
        for name, expr in tally_flush:
            gen.emit(f"counts[{name!r}] += {expr}", indent=indent)

    # Loop-invariant aliases: generated op bodies are rewritten (see
    # emit_default below) to call these pre-bound methods instead of
    # chasing cpu.memory / cpu.pac / cpu.dfi_shadow attributes on every
    # hot-loop iteration.  Fault hooks and key epochs stay live -- they
    # are read inside the bound methods, not captured here.
    if uses_mem:
        gen.emit("mem = cpu.memory", indent=3)
        gen.emit("_mr = mem.read_int; _mw = mem.write_int", indent=3)
        gen.emit(
            "_mr8 = mem.read_u64; _mr4 = mem.read_u32; "
            "_mr2 = mem.read_u16; _mr1 = mem.read_u8",
            indent=3,
        )
        gen.emit(
            "_mw8 = mem.write_u64; _mw4 = mem.write_u32; "
            "_mw2 = mem.write_u16; _mw1 = mem.write_u8",
            indent=3,
        )
        gen.emit("_ch = cpu.cache is not None; _ca = cpu._cache_access", indent=3)
    if uses_pac:
        gen.emit("pac = cpu.pac", indent=3)
        gen.emit("_ps = pac.sign; _pa = pac.auth", indent=3)
        # _pac_cache survives corrupt_key/rekey (they clear() in place,
        # never rebind), so a bound .get stays valid across epochs; the
        # epoch lives in the lookup key, read live at each site.
        gen.emit("_pg = pac._pac_cache.get", indent=3)
    if uses_dfi:
        gen.emit("dfi = cpu.dfi_shadow", indent=3)
        gen.emit(
            "_ds = dfi.set_range; _dr = dfi.check_range; _db = dfi.check_batch",
            indent=3,
        )
    gen.emit("_ms = cpu.max_steps", indent=3)
    if plan.dfi_specs:
        # Entry check for every hoisted site; a violation deopts the
        # whole invocation to the decoded oracle *before any charge*,
        # which then traps at the exact site (or completes clean when
        # the violating site turns out to be unreachable this call).
        specs = gen.bind(tuple(plan.dfi_specs), "B")
        header_name = gen.bind(region.header, "D")
        gen.emit(f"_v = dfi.check_batch({specs}, frame)", indent=3)
        gen.emit("if _v is not None:", indent=3)
        gen.emit(
            f"    return (_RET, cpu._interpret_decoded({header_name}, frame))",
            indent=3,
        )
    for value, name in plan.invariants:
        gen.emit(f"{name} = frame[{gen.bind(value, 'V')}]", indent=3)
    for phi, name in plan.header_phis:
        gen.emit(f"{name} = frame[{gen.bind(phi, 'V')}]", indent=3)
    for memo in range(len(plan.pac_sites)):
        gen.emit(f"_pe{memo} = -1", indent=3)
    multi = len(region.chains) > 1
    if multi:
        gen.emit("_n = 0", indent=3)
    gen.emit("while True:", indent=3)

    old_emit = gen.emit
    for ci, chain in enumerate(region.chains):
        if multi:
            keyword = "if" if ci == 0 else "elif"
            old_emit(f"{keyword} _n == {ci}:", indent=4)
            d = 5
        else:
            d = 4

        def emit_default(text, indent=d, op=None):
            if "(" in text:
                text = (
                    text.replace("mem.read_int(", "_mr(")
                    .replace("mem.write_int(", "_mw(")
                    .replace("mem.read_u64(", "_mr8(")
                    .replace("mem.read_u32(", "_mr4(")
                    .replace("mem.read_u16(", "_mr2(")
                    .replace("mem.read_u8(", "_mr1(")
                    .replace("mem.write_u64(", "_mw8(")
                    .replace("mem.write_u32(", "_mw4(")
                    .replace("mem.write_u16(", "_mw2(")
                    .replace("mem.write_u8(", "_mw1(")
                    .replace(
                        "if cpu.cache is not None: cpu._cache_access(",
                        "if _ch: _ca(",
                    )
                    .replace("pac.sign(", "_ps(")
                    .replace("pac.auth(", "_pa(")
                    .replace("dfi.set_range(", "_ds(")
                    .replace("dfi.check_range(", "_dr(")
                    .replace("dfi.check_batch(", "_db(")
                )
            old_emit(text, indent=indent, op=op)

        gen.emit = emit_default  # type: ignore[method-assign]
        try:
            for position, dblock in enumerate(chain):
                next_block = (
                    chain[position + 1] if position + 1 < len(chain) else None
                )
                _, body, op_info, bbase, nlead, nbody = info_by_pos[
                    (ci, position)
                ]
                nsteps = seg_steps.get((ci, position))
                if nsteps is not None:
                    # Deopt: flush what the decoded oracle reads and
                    # charges itself (cycles, steps, residue) *before*
                    # replay; instructions and opcode tallies commute,
                    # so they flush after -- or, if the replay raises,
                    # in the except clause.
                    gen.emit(f"if cpu.steps + _st + {nsteps} > _ms:")
                    if spill_name is not None:
                        gen.emit(f"    {spill_name}(frame, locals())")
                    gen.emit("    timing.cycles += _cy; _cy = 0")
                    gen.emit("    cpu.steps += _st; _st = 0")
                    gen.emit("    timing._cheap_run = _cr")
                    gen.emit(
                        "    _t = cpu._interpret_decoded("
                        f"{gen.bind(dblock, 'D')}, frame)"
                    )
                    gen.emit("    timing.instructions += _in")
                    for name, expr in tally_flush:
                        gen.emit(f"    counts[{name!r}] += {expr}")
                    gen.emit("    return (_RET, _t)")
                tidx = (
                    nlead + nbody if dblock.term[0] != "fall" else len(op_info)
                )
                j = 0
                nops = len(op_info)
                while j < nops:
                    g = bbase + j
                    bounds = chunk_at.get(g)
                    if bounds is not None:
                        if all_info[g][2]:
                            _emit_impure_charges(gen, all_info, g)
                        else:
                            _emit_chunk_charges(
                                gen, all_info, bounds[0], bounds[1],
                                chunk_no[g],
                            )
                    if j < nlead or j > tidx:
                        j += 1  # 'phi' pseudo-op: charge-only
                        continue
                    if j == tidx:
                        _emit_region_term(
                            gen,
                            region,
                            dblock,
                            g,
                            d,
                            next_block,
                            codes,
                            (ci, position) in trailing_merge,
                            (ci, position + 1) in leading_merge,
                            flush,
                        )
                        j += 1
                        continue
                    i = j - nlead
                    inst = body[i]
                    if (id(dblock), i) in plan.dfi_skip:
                        j += 1  # checked once, at region entry
                        continue
                    if isinstance(inst, DfiChkDef):
                        run = [(g, inst)]
                        nxt = i + 1
                        while (
                            nxt < nbody
                            and isinstance(body[nxt], DfiChkDef)
                            and (id(dblock), nxt) not in plan.dfi_skip
                            and chunk_of[bbase + nlead + nxt] == chunk_of[g]
                        ):
                            run.append((bbase + nlead + nxt, body[nxt]))
                            nxt += 1
                        if len(run) >= 2:
                            _gen_dfi_chk_batch(gen, run, layout)
                            j = nlead + nxt
                            continue
                    memo = plan.pac_sites.get((id(dblock), i))
                    if memo is not None:
                        _emit_pac_memo(gen, inst, layout, g, d, memo)
                        j += 1
                        continue
                    if isinstance(inst, PacAuth) and not dblock.ops[i][2]:
                        _emit_pac_inline_auth(gen, inst, layout, g, d)
                        j += 1
                        continue
                    if isinstance(inst, PacSign) and not dblock.ops[i][2]:
                        _emit_pac_inline_sign(gen, inst, layout, g, d)
                        j += 1
                        continue
                    _emit_op(gen, inst, dblock.ops[i], layout, g)
                    if dblock.ops[i][2]:
                        # The callee moved the issue residue; re-seed
                        # the local before the next chunk charges.
                        gen.emit("_cr = timing._cheap_run")
                    j += 1
                if dblock.term[0] == "fall":
                    source = dblock.source
                    owner = (
                        source.parent.name if source.parent is not None else "?"
                    )
                    message = f"block %{source.name} in @{owner} fell through"
                    gen.emit(f"raise RuntimeError({message!r})")
        finally:
            gen.emit = old_emit  # type: ignore[method-assign]
    gen.emit("except BaseException as _exc:", indent=2)
    # Flush pending local charges so the trap fixup reconciles against
    # complete totals.  The issue residue is deliberately NOT flushed:
    # for a trap at a fused op the fixup recomputes it exactly (from
    # the _r0 frame local), and for an exception out of a callee or a
    # decoded deopt replay, timing._cheap_run is already live (the
    # local _cr is the stale pre-call value).
    gen.emit("    timing.cycles += _cy", indent=2)
    gen.emit("    timing.instructions += _in", indent=2)
    gen.emit("    cpu.steps += _st", indent=2)
    for name, expr in tally_flush:
        gen.emit(f"    counts[{name!r}] += {expr}", indent=2)
    gen.emit(f"    _FIX(cpu, timing, counts, {meta_name}, _exc)", indent=2)
    gen.emit("    raise", indent=2)
    gen.current_map = None
    gen.block_locals = {}


# ---------------------------------------------------------------------------
# Function / module compilation
# ---------------------------------------------------------------------------


def _compile_function_trace(
    function: Function,
    entry: DecodedBlock,
    layout,
    counts: Optional[Dict[str, float]],
) -> Tuple[object, str, int, int]:
    order = _function_order(entry)
    dom = DominatorTree(function)
    regions = _select_regions(function, order, dom, counts)
    pos = {id(d): i for i, d in enumerate(order)}

    def hotness(dblock: DecodedBlock) -> float:
        if counts is None:
            return 0.0
        return counts.get(f"{function.name}:{dblock.source.name}", 0.0)

    region_of: Dict[int, _Region] = {}
    for region in regions:
        _build_chains(region, hotness, pos)
        for dblock in region.blocks:
            region_of[id(dblock)] = region

    outside = [d for d in order if id(d) not in region_of]

    codes: Dict[int, object] = {}
    for dblock in outside:
        codes[id(dblock)] = BlockCode(
            dblock,
            _block_steps(dblock),
            f"{function.name}:{dblock.source.name}",
        )
    for region in regions:
        header = region.header
        codes[id(header)] = RegionCode(
            header,
            _block_steps(header),
            f"{function.name}:{header.source.name}",
            len(region.blocks),
        )

    gen = _FnGen(f"<tracec:{function.name}>")
    gen.lines.append("def _make_blocks(_C):")
    gen.lines.append("")  # placeholder: unpack of _C, patched below

    for helper, name in (
        (_trap_fixup, "_FIX"),
        (BLOCK_RET, "_RET"),
        (NullPointerTrap, "_NPT"),
        (CanaryTrap, "_CT"),
        (DfiTrap, "_DT"),
        (MemoryFault, "_MF"),
    ):
        gen.consts.append(helper)
        gen.const_names.append(name)
        gen._by_id[id(helper)] = name

    # Successor pairs and routes for the non-region blocks, which reuse
    # the block tier's generator unchanged.  Regions are single-entry,
    # so an outside block's successor is always an outside block or a
    # region *header* -- both have codes.
    pairs: Dict[tuple, str] = {}
    routes: Dict[tuple, object] = {}
    ret_pairs: Dict[DecodedBlock, str] = {}
    for dblock in outside:
        term = dblock.term
        if term[0] == "ret":
            spec = term[1]
            if spec is None:
                ret_pairs[dblock] = gen.bind((BLOCK_RET, None), "R")
            elif spec[0]:
                ret_pairs[dblock] = gen.bind((BLOCK_RET, spec[1]), "R")
            continue
        for slot, successor in enumerate(_successors(dblock)):
            route = successor.phi_routes.get(dblock)
            if route is not None:
                routes[(dblock, slot)] = route
            pairs[(dblock, slot)] = gen.bind(codes[id(successor)].self_pair, "S")

    local_plan = _plan_locals(order)
    targets: List[object] = []
    for index, dblock in enumerate(outside):
        meta = _BlockMeta()
        code = codes[id(dblock)]
        code.meta = meta
        _gen_block(
            gen,
            f"_b{index}",
            dblock,
            layout,
            meta,
            pairs,
            routes,
            ret_pairs,
            local_plan[id(dblock)],
        )
        targets.append(code)
    for index, region in enumerate(regions):
        meta = _BlockMeta()
        code = codes[id(region.header)]
        code.meta = meta
        plan = _plan_region(function, order, region, dom, layout)
        _gen_region(gen, f"_t{index}", region, layout, meta, codes, plan)
        targets.append(code)

    gen.emit(f"return ({', '.join(gen.fn_names)},)", indent=1)
    gen.lines[1] = "    ({},) = _C".format(", ".join(gen.const_names))

    source = "\n".join(gen.lines)
    namespace: Dict[str, object] = {}
    exec(compile(source, gen.filename, "exec"), namespace)
    functions = namespace["_make_blocks"](tuple(gen.consts))
    for target, fn in zip(targets, functions):
        target.fn = fn

    fused = sum(len(region.blocks) for region in regions)
    return codes[id(entry)], source, len(regions), fused


def trace_compile(
    module: Module, profile: Optional[Dict[str, float]] = None
) -> Tuple[TraceProgram, float]:
    """Trace-compile ``module`` (or return the cached program).

    ``profile`` is the ``"function:block" -> executions`` map from a
    warmup run (:func:`repro.observability.profile.hot_block_counts`);
    ``None`` selects regions statically (every loop plus every small
    function).  Returns ``(program, seconds)`` where ``seconds`` is the
    compile time spent by *this* call -- ``0.0`` on a cache hit.  The
    cache key is the module's structural fingerprint plus the profile
    digest, so recompiling with a different profile reselects regions.
    """
    digest = None
    if profile is not None:
        # Deliberately lazy: repro.perf owns the digest format, but the
        # perf package imports the hardware layer at module load.
        from ..perf.regions import profile_digest

        digest = profile_digest(profile)
    fingerprint = _fingerprint(module)
    cached = getattr(module, _TRACE_ATTR, None)
    if (
        cached is not None
        and cached.fingerprint == fingerprint
        and cached.profile_digest == digest
    ):
        return cached, 0.0
    start = time.perf_counter()
    decoded, _ = decode_module(module)
    program = TraceProgram(fingerprint, digest)
    for function, entry in decoded.functions.items():
        code, source, nregions, fused = _compile_function_trace(
            function, entry, decoded.global_layout, profile
        )
        program.functions[function] = code
        program.sources[function] = source
        program.region_count += nregions
        program.fused_blocks += fused
    elapsed = time.perf_counter() - start
    program.compile_seconds = elapsed
    setattr(module, _TRACE_ATTR, program)
    _DECODED_MODULES.add(module)
    return program, elapsed
