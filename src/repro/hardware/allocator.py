"""Heap allocation: a glibc-flavoured free-list allocator, sectioned.

Pythia's heap defense (Algorithm 4) requires two independently managed
heap regions: the *shared* section, where ordinary allocations live,
and the *isolated* section, which only receives the vulnerable
dynamically allocated variables.  Both use the same bin-based allocator
(:class:`HeapAllocator`); :class:`SectionedHeap` routes requests.

The allocator mimics glibc malloc at the level the paper cares about:

- chunks carry a 16-byte header (size word + padding, keeping payloads
  16-byte aligned like glibc);
- freed chunks go to size-class bins and are reused first-fit;
- adjacent free chunks are coalesced via a boundary map;
- allocation from the isolated section costs extra cycles (the paper
  measures ~23 ns per sectioning library call).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import ReproError
from .memory import HEAP_ISOLATED_BASE, HEAP_SHARED_BASE, Memory, MemoryFault

_ALIGN = 16
_HEADER = 16

#: Size-class boundaries for the small bins (bytes of user payload).
_BIN_CLASSES = (16, 32, 48, 64, 96, 128, 192, 256, 512, 1024, 4096)


class OutOfMemoryError(ReproError):
    """The section's arena is exhausted."""


def _align_up(n: int, alignment: int = _ALIGN) -> int:
    return (n + alignment - 1) // alignment * alignment


def _bin_index(size: int) -> int:
    for i, limit in enumerate(_BIN_CLASSES):
        if size <= limit:
            return i
    return len(_BIN_CLASSES)  # large bin


class HeapAllocator:
    """A single heap arena with size-class bins and coalescing."""

    def __init__(self, memory: Memory, base: int, capacity: int, name: str = "heap"):
        self.memory = memory
        self.base = base
        self.capacity = capacity
        self.name = name
        self.top = base  # bump pointer for fresh chunks
        self.bins: List[List[int]] = [[] for _ in range(len(_BIN_CLASSES) + 1)]
        #: chunk start -> payload size for live chunks
        self.live: Dict[int, int] = {}
        #: chunk start -> payload size for free chunks (for coalescing)
        self.free_chunks: Dict[int, int] = {}
        #: optional fault injector (see :mod:`repro.robustness.faults`);
        #: when set, ``fault_hook.on_malloc(self, address, payload)``
        #: runs after each allocation and may tamper chunk metadata
        self.fault_hook = None
        # statistics
        self.malloc_calls = 0
        self.free_calls = 0
        self.bytes_in_use = 0
        self.peak_bytes = 0

    # -- public API ----------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the payload address."""
        if size <= 0:
            size = 1
        self.malloc_calls += 1
        payload = _align_up(size)
        address = self._take_from_bin(payload)
        if address is None:
            address = self._bump(payload)
        self.live[address] = payload
        self._write_header(address, payload)
        # Zero-fill every chunk: program behaviour must not depend on
        # stale bytes of reused chunks (the attack classes modelled here
        # are overflows, not uninitialised reads), and identical
        # programs must behave identically whichever *section* serves
        # the allocation.
        self.memory.write_bytes(address, b"\x00" * payload)
        self.bytes_in_use += payload
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
        if self.fault_hook is not None:
            self.fault_hook.on_malloc(self, address, payload)
        return address

    def free(self, address: int) -> None:
        """Release a payload address previously returned by :meth:`malloc`."""
        self.free_calls += 1
        payload = self.live.pop(address, None)
        if payload is None:
            raise MemoryFault(address, 1, "invalid free")
        self.bytes_in_use -= payload
        address, payload = self._coalesce(address, payload)
        self.free_chunks[address] = payload
        self.bins[_bin_index(payload)].append(address)

    def owns(self, address: int) -> bool:
        """True when ``address`` lies inside this arena."""
        return self.base <= address < self.base + self.capacity

    def chunk_size(self, address: int) -> Optional[int]:
        """Payload size of the live chunk at ``address``, if any."""
        return self.live.get(address)

    # -- internals ------------------------------------------------------------

    def _write_header(self, payload_address: int, size: int) -> None:
        self.memory.write_int(payload_address - _HEADER, size, 8)

    def _take_from_bin(self, payload: int) -> Optional[int]:
        index = _bin_index(payload)
        for i in range(index, len(self.bins)):
            bin_ = self.bins[i]
            for slot, address in enumerate(bin_):
                chunk = self.free_chunks.get(address)
                if chunk is not None and chunk >= payload:
                    del bin_[slot]
                    del self.free_chunks[address]
                    self._maybe_split(address, chunk, payload)
                    return address
        return None

    def _maybe_split(self, address: int, chunk: int, payload: int) -> None:
        remainder = chunk - payload
        if remainder >= _ALIGN + _HEADER:
            tail = address + payload + _HEADER
            tail_payload = remainder - _HEADER
            self.free_chunks[tail] = tail_payload
            self.bins[_bin_index(tail_payload)].append(tail)

    def _bump(self, payload: int) -> int:
        address = self.top + _HEADER
        new_top = address + payload
        if new_top > self.base + self.capacity:
            raise OutOfMemoryError(
                f"{self.name} section exhausted ({self.capacity} bytes)"
            )
        self.top = new_top
        return address

    def _coalesce(self, address: int, payload: int) -> "tuple[int, int]":
        # Merge with an immediately following free chunk.
        next_start = address + payload + _HEADER
        next_payload = self.free_chunks.pop(next_start, None)
        if next_payload is not None:
            self._unbin(next_start)
            payload += _HEADER + next_payload
        # Merge with an immediately preceding free chunk.
        for prev_start, prev_payload in list(self.free_chunks.items()):
            if prev_start + prev_payload + _HEADER == address:
                self._unbin(prev_start)
                del self.free_chunks[prev_start]
                address = prev_start
                payload += _HEADER + prev_payload
                break
        return address, payload

    def _unbin(self, address: int) -> None:
        for bin_ in self.bins:
            if address in bin_:
                bin_.remove(address)
                return


class SectionedHeap:
    """Pythia's heap sectioning: a shared and an isolated arena.

    ``malloc(size, isolated=True)`` models the custom allocator the
    paper links in at compile time; every isolated call is counted so
    the timing model can charge the sectioning overhead.
    """

    def __init__(self, memory: Memory, capacity: int = 8 * 1024 * 1024):
        self.shared = HeapAllocator(memory, HEAP_SHARED_BASE, capacity, "shared")
        self.isolated = HeapAllocator(memory, HEAP_ISOLATED_BASE, capacity, "isolated")
        self.isolated_calls = 0
        #: optional fault injector; when set,
        #: ``fault_hook.on_heap_route(self, size, isolated)`` runs for
        #: every isolated request and may return ``False`` to misroute
        #: the allocation into the shared arena (cross-heap-section
        #: confusion).  The call counter is bumped *before* routing so
        #: the event stream matches the timing model's charge.
        self.fault_hook = None

    def malloc(self, size: int, isolated: bool = False) -> int:
        if isolated:
            self.isolated_calls += 1
            if self.fault_hook is not None:
                isolated = self.fault_hook.on_heap_route(self, size, True)
            if not isolated:
                return self.shared.malloc(size)
            return self.isolated.malloc(size)
        return self.shared.malloc(size)

    def free(self, address: int) -> None:
        if self.isolated.owns(address):
            self.isolated.free(address)
        else:
            self.shared.free(address)

    def section_of(self, address: int) -> str:
        """Which section an address belongs to (``shared``/``isolated``)."""
        if self.isolated.owns(address):
            return "isolated"
        if self.shared.owns(address):
            return "shared"
        raise MemoryFault(address, 1, "not a heap address")
