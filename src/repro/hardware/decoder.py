"""Pre-decoded interpreter dispatch: compile IR once, execute many times.

The reference interpreter in :mod:`repro.hardware.cpu` resolves every
dynamic step through a long ``isinstance`` chain and re-resolves every
operand (constant? global? frame slot?) on each execution.  For the
evaluation pipeline -- 16 benchmarks x 4 schemes, plus brute-force
attack campaigns that re-execute one module thousands of times -- that
dispatch is the dominant cost of the whole reproduction.

This module performs that resolution *once per module*:

- every instruction is compiled to a bound handler closure
  ``handler(cpu, frame)`` specialised on its opcode and operand kinds;
- constant and global operands are pre-folded to plain integers
  (the global segment layout is a pure function of the module);
- ``getelementptr`` strides for constant indices are pre-resolved into
  a single constant offset plus a short list of dynamic (slot, stride)
  terms;
- phi routing is precomputed per CFG edge, and the first-non-phi index
  disappears entirely (decoded blocks simply begin after the phis);
- terminators are decoded into direct links between decoded blocks.

The decoded program is cached per :class:`~repro.ir.module.Module` (a
weak-key cache) and invalidated whenever a transform pipeline runs; a
structural fingerprint guards against stale entries for modules mutated
outside the pass manager.

Decoded execution is semantically bit-identical to the reference
interpreter for well-formed modules: the same traps, the same timing
charges in the same order, the same ``ExecutionResult`` counters.  (The
one deliberate difference: using a value that was never computed --
malformed, unverified IR -- surfaces as a ``KeyError`` rather than the
reference interpreter's ``RuntimeError``.)
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple, Union
from weakref import WeakSet

from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CondBranch,
    DfiChkDef,
    DfiSetDef,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    PacAuth,
    PacSign,
    Phi,
    Ret,
    SecAssert,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import ArrayType, I64, IntType, StructType
from ..ir.values import Constant, GlobalVariable, UndefValue, Value
from .errors import CanaryTrap, DfiTrap, NullPointerTrap
from .memory import GLOBAL_BASE, MemoryFault
from .timing import DEFAULT_COSTS

_MASK64 = (1 << 64) - 1
_to_signed64 = I64.to_signed

#: An operand spec: ``(True, folded_int)`` or ``(False, frame_key)``.
OperandSpec = Tuple[bool, Union[int, Value]]
#: A decoded non-terminator step: ``(opcode, default_cost, impure, handler)``.
Handler = Callable[["object", Dict[Value, int]], None]


def compute_global_layout(module: Module) -> Dict[str, int]:
    """Address of every global -- a pure function of the module.

    This is the single source of truth for the global segment layout;
    :meth:`CPU._layout_globals` uses it too, which is what lets the
    decoder pre-fold global operands into plain integers.
    """
    layout: Dict[str, int] = {}
    cursor = GLOBAL_BASE + 16
    for gvar in module.globals.values():
        alignment = max(1, gvar.value_type.alignment)
        cursor = (cursor + alignment - 1) // alignment * alignment
        layout[gvar.name] = cursor
        cursor += max(1, gvar.value_type.size)
    return layout


def _spec(value: Value, layout: Dict[str, int]) -> OperandSpec:
    """Fold an operand to an int where possible, else keep the frame key."""
    if isinstance(value, Constant):
        return True, value.value & _MASK64
    if isinstance(value, GlobalVariable):
        return True, layout[value.name]
    if isinstance(value, UndefValue):
        return True, 0
    return False, value


# ---------------------------------------------------------------------------
# Decoded containers
# ---------------------------------------------------------------------------


class DecodedBlock:
    """One basic block compiled to handler closures plus a terminator."""

    __slots__ = ("source", "ops", "term", "phi_routes")

    def __init__(self, source: BasicBlock):
        self.source = source
        #: tuple of (opcode, default_cost, impure, handler) entries for
        #: the straight-line body; the cost is pre-resolved from
        #: DEFAULT_COSTS and only trusted when the CPU's timing model
        #: still uses the default cost table, and ``impure`` flags
        #: handlers that may re-enter an interpreter loop (calls and
        #: fallbacks)
        self.ops: Tuple[Tuple[str, int, bool, Handler], ...] = ()
        #: ("ret", spec|None) | ("jump", block) | ("br", spec, t, f) | ("fall",)
        self.term: tuple = ("fall",)
        #: predecessor DecodedBlock -> phi routing for that edge; a route
        #: is a tuple of (phi, is_const, payload) triples, or an error
        #: message string when a phi has no incoming for the edge.
        self.phi_routes: Dict["DecodedBlock", object] = {}


class DecodedProgram:
    """All defined functions of one module, decoded."""

    __slots__ = ("functions", "global_layout", "fingerprint", "decode_seconds")

    def __init__(
        self,
        functions: Dict[Function, DecodedBlock],
        global_layout: Dict[str, int],
        fingerprint: tuple,
    ):
        #: Function -> entry DecodedBlock
        self.functions = functions
        self.global_layout = global_layout
        self.fingerprint = fingerprint
        #: wall seconds spent building this decode (set by decode_module)
        self.decode_seconds = 0.0


# ---------------------------------------------------------------------------
# Handler factories
# ---------------------------------------------------------------------------
#
# Each factory returns a closure ``handler(cpu, frame)``.  The factories
# pre-bind everything resolvable at decode time; operand fetches use a
# pre-bound ``v if c else frame[v]`` ternary, which costs two trivial
# bytecodes when the operand is constant and nothing when it is not.
# Step counting and timing charges happen in the interpreter loop
# (see ``CPU._interpret_decoded``), exactly mirroring the reference
# interpreter's order: count, limit-check, charge, execute.


def _make_alloca(inst: Alloca, layout: Dict[str, int]) -> Handler:
    # Frame addresses are assigned by CPU._layout_frame; executing an
    # alloca only charges its (zero-cost) opcode, done by the loop.
    def handler(cpu, frame):
        return None

    return handler


def _make_load(inst: Load, layout: Dict[str, int]) -> Handler:
    pc, pv = _spec(inst.pointer, layout)
    size = max(1, inst.type.size)
    if pc:
        def handler(cpu, frame, inst=inst, address=pv, size=size):
            if address == 0:
                raise NullPointerTrap(f"load through null in {inst}")
            if cpu.cache is not None:
                cpu._cache_access(address, size)
            frame[inst] = cpu.memory.read_int(address, size)
    else:
        def handler(cpu, frame, inst=inst, ptr=pv, size=size):
            address = frame[ptr]
            if address == 0:
                raise NullPointerTrap(f"load through null in {inst}")
            if cpu.cache is not None:
                cpu._cache_access(address, size)
            frame[inst] = cpu.memory.read_int(address, size)
    return handler


def _make_store(inst: Store, layout: Dict[str, int]) -> Handler:
    vc, vv = _spec(inst.value, layout)
    pc, pv = _spec(inst.pointer, layout)
    size = max(1, inst.value.type.size)

    def handler(cpu, frame, inst=inst, vc=vc, vv=vv, pc=pc, pv=pv, size=size):
        address = pv if pc else frame[pv]
        if address == 0:
            raise NullPointerTrap(f"store through null in {inst}")
        if cpu.cache is not None:
            cpu._cache_access(address, size)
        cpu.memory.write_int(address, vv if vc else frame[vv], size)

    return handler


def _gep_plan(
    inst: GetElementPtr, layout: Dict[str, int]
) -> Optional[Tuple[bool, object, int, Tuple[Tuple[Value, int], ...]]]:
    """Resolve a gep to ``(base_c, base_v, const_off, dyn_terms)``.

    Shared by the decoded and block tiers so both make identical
    specialisation decisions.  Returns ``None`` for a malformed gep
    (the reference interpreter raises at runtime) and raises
    ``_DecodeFallback`` for a dynamic struct index.
    """
    base_c, base_v = _spec(inst.pointer, layout)
    pointee = inst.pointer.type.pointee  # type: ignore[union-attr]
    const_off = 0
    dyn: List[Tuple[Value, int]] = []

    c, v = _spec(inst.indices[0], layout)
    stride = max(1, pointee.size)
    if c:
        const_off += _to_signed64(v) * stride
    else:
        dyn.append((v, stride))
    current = pointee
    for index in inst.indices[1:]:
        if isinstance(current, ArrayType):
            c, v = _spec(index, layout)
            stride = max(1, current.element.size)
            if c:
                const_off += _to_signed64(v) * stride
            else:
                dyn.append((v, stride))
            current = current.element
        elif isinstance(current, StructType):
            c, v = _spec(index, layout)
            if not c:
                # dynamic struct index: fall back to interpretive walk
                raise _DecodeFallback
            const_off += current.field_offset(v)
            current = current.field_type(v)
        else:
            return None
    return base_c, base_v, const_off, tuple(dyn)


def _make_gep(inst: GetElementPtr, layout: Dict[str, int]) -> Handler:
    plan = _gep_plan(inst, layout)
    if plan is None:
        # malformed gep: the reference interpreter raises at runtime
        def handler(cpu, frame, inst=inst):
            raise RuntimeError(f"malformed gep: {inst}")

        return handler
    base_c, base_v, const_off, dyn = plan

    if not dyn:
        if base_c:
            result = (base_v + const_off) & _MASK64

            def handler(cpu, frame, inst=inst, result=result):
                frame[inst] = result
        else:
            def handler(cpu, frame, inst=inst, base=base_v, off=const_off):
                frame[inst] = (frame[base] + off) & _MASK64
    elif len(dyn) == 1:
        key, stride = dyn[0]
        if base_c:
            folded = base_v + const_off

            def handler(cpu, frame, inst=inst, base=folded, key=key,
                        stride=stride, ts=_to_signed64):
                frame[inst] = (base + ts(frame[key]) * stride) & _MASK64
        else:
            def handler(cpu, frame, inst=inst, base=base_v, off=const_off,
                        key=key, stride=stride, ts=_to_signed64):
                frame[inst] = (frame[base] + off + ts(frame[key]) * stride) & _MASK64
    else:
        def handler(cpu, frame, inst=inst, base_c=base_c, base=base_v,
                    off=const_off, dyn=tuple(dyn), ts=_to_signed64):
            address = (base if base_c else frame[base]) + off
            for key, stride in dyn:
                address += ts(frame[key]) * stride
            frame[inst] = address & _MASK64

    return handler


def _make_binop(inst: BinOp, layout: Dict[str, int]) -> Handler:
    op = inst.op
    vtype = inst.type
    lc, lv = _spec(inst.lhs, layout)
    rc, rv = _spec(inst.rhs, layout)
    if isinstance(vtype, IntType):
        wrap = vtype.wrap
        signed = vtype.to_signed
        bits = vtype.bits
    else:  # pointer arithmetic through int ops on addresses
        wrap = lambda v: v & _MASK64  # noqa: E731
        signed = _to_signed64
        bits = 64

    if op == "add":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv, wrap=wrap):
            frame[inst] = wrap((lv if lc else frame[lv]) + (rv if rc else frame[rv]))
    elif op == "sub":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv, wrap=wrap):
            frame[inst] = wrap((lv if lc else frame[lv]) - (rv if rc else frame[rv]))
    elif op == "mul":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv, wrap=wrap):
            frame[inst] = wrap((lv if lc else frame[lv]) * (rv if rc else frame[rv]))
    elif op == "sdiv":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv,
                    wrap=wrap, signed=signed):
            a = signed(lv if lc else frame[lv])
            b = signed(rv if rc else frame[rv])
            if b == 0:
                raise MemoryFault(0, 0, "integer divide by zero")
            frame[inst] = wrap(int(a / b))
    elif op == "srem":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv,
                    wrap=wrap, signed=signed):
            a = signed(lv if lc else frame[lv])
            b = signed(rv if rc else frame[rv])
            if b == 0:
                raise MemoryFault(0, 0, "integer remainder by zero")
            frame[inst] = wrap(a - int(a / b) * b)
    elif op == "and":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv, wrap=wrap):
            frame[inst] = wrap((lv if lc else frame[lv]) & (rv if rc else frame[rv]))
    elif op == "or":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv, wrap=wrap):
            frame[inst] = wrap((lv if lc else frame[lv]) | (rv if rc else frame[rv]))
    elif op == "xor":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv, wrap=wrap):
            frame[inst] = wrap((lv if lc else frame[lv]) ^ (rv if rc else frame[rv]))
    elif op == "shl":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv,
                    wrap=wrap, bits=bits):
            frame[inst] = wrap((lv if lc else frame[lv]) << ((rv if rc else frame[rv]) % bits))
    elif op == "ashr":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv,
                    wrap=wrap, signed=signed, bits=bits):
            frame[inst] = wrap(signed(lv if lc else frame[lv]) >> ((rv if rc else frame[rv]) % bits))
    elif op == "lshr":
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv,
                    wrap=wrap, bits=bits):
            frame[inst] = wrap((lv if lc else frame[lv]) >> ((rv if rc else frame[rv]) % bits))
    else:
        def handler(cpu, frame, op=op):
            raise RuntimeError(f"unknown binop {op}")

    return handler


_UNSIGNED_PREDICATES = ("eq", "ne", "ult", "ule", "ugt", "uge")
_CMP_TESTS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}


def _make_icmp(inst: ICmp, layout: Dict[str, int]) -> Handler:
    predicate = inst.predicate
    test = _CMP_TESTS[predicate]
    vtype = inst.lhs.type
    lc, lv = _spec(inst.lhs, layout)
    rc, rv = _spec(inst.rhs, layout)
    if predicate in _UNSIGNED_PREDICATES or not isinstance(vtype, IntType):
        def handler(cpu, frame, inst=inst, lc=lc, lv=lv, rc=rc, rv=rv, test=test):
            frame[inst] = 1 if test(lv if lc else frame[lv], rv if rc else frame[rv]) else 0
    else:
        ts = vtype.to_signed
        slv = ts(lv) if lc else lv
        srv = ts(rv) if rc else rv

        def handler(cpu, frame, inst=inst, lc=lc, lv=slv, rc=rc, rv=srv,
                    ts=ts, test=test):
            frame[inst] = 1 if test(lv if lc else ts(frame[lv]), rv if rc else ts(frame[rv])) else 0
    return handler


def _identity(value: int) -> int:
    return value


def _mask64(value: int) -> int:
    return value & _MASK64


def _make_cast(inst: Cast, layout: Dict[str, int]) -> Handler:
    op = inst.op
    vc, vv = _spec(inst.value, layout)
    target = inst.type
    post = target.wrap if isinstance(target, IntType) else _mask64
    if op in ("trunc", "zext", "ptrtoint", "inttoptr", "bitcast"):
        conv = post
    elif op == "sext":
        source = inst.value.type
        pre = source.to_signed if isinstance(source, IntType) else _identity

        def conv(value, pre=pre, post=post):
            return post(pre(value))
    else:
        def handler(cpu, frame, op=op):
            raise RuntimeError(f"unknown cast {op}")

        return handler

    if vc:
        result = conv(vv)

        def handler(cpu, frame, inst=inst, result=result):
            frame[inst] = result
    else:
        def handler(cpu, frame, inst=inst, key=vv, conv=conv):
            frame[inst] = conv(frame[key])
    return handler


def _make_select(inst: Select, layout: Dict[str, int]) -> Handler:
    cc, cv = _spec(inst.condition, layout)
    tc, tv = _spec(inst.true_value, layout)
    fc, fv = _spec(inst.false_value, layout)

    def handler(cpu, frame, inst=inst, cc=cc, cv=cv, tc=tc, tv=tv, fc=fc, fv=fv):
        if (cv if cc else frame[cv]) & 1:
            frame[inst] = tv if tc else frame[tv]
        else:
            frame[inst] = fv if fc else frame[fv]

    return handler


def _make_call(inst: Call, layout: Dict[str, int]) -> Handler:
    specs = tuple(_spec(argument, layout) for argument in inst.args)
    callee = inst.callee
    if inst.type.is_void:
        def handler(cpu, frame, callee=callee, specs=specs):
            cpu._call(callee, [v if c else frame[v] for c, v in specs])
    else:
        def handler(cpu, frame, inst=inst, callee=callee, specs=specs):
            result = cpu._call(callee, [v if c else frame[v] for c, v in specs])
            frame[inst] = 0 if result is None else result
    return handler


def _make_pac_sign(inst: PacSign, layout: Dict[str, int]) -> Handler:
    vc, vv = _spec(inst.value, layout)
    mc, mv = _spec(inst.modifier, layout)

    def handler(cpu, frame, inst=inst, vc=vc, vv=vv, mc=mc, mv=mv, key=inst.key_id):
        frame[inst] = cpu.pac.sign(vv if vc else frame[vv], mv if mc else frame[mv], key)

    return handler


def _make_pac_auth(inst: PacAuth, layout: Dict[str, int]) -> Handler:
    vc, vv = _spec(inst.value, layout)
    mc, mv = _spec(inst.modifier, layout)

    def handler(cpu, frame, inst=inst, vc=vc, vv=vv, mc=mc, mv=mv, key=inst.key_id):
        frame[inst] = cpu.pac.auth(vv if vc else frame[vv], mv if mc else frame[mv], key)

    return handler


def _make_sec_assert(inst: SecAssert, layout: Dict[str, int]) -> Handler:
    cc, cv = _spec(inst.condition, layout)

    def handler(cpu, frame, cc=cc, cv=cv, kind=inst.kind):
        if not ((cv if cc else frame[cv]) & 1):
            raise CanaryTrap(f"{kind} check failed")

    return handler


def _make_dfi_setdef(inst: DfiSetDef, layout: Dict[str, int]) -> Handler:
    pc, pv = _spec(inst.pointer, layout)

    def handler(cpu, frame, pc=pc, pv=pv, size=inst.size, def_id=inst.def_id):
        cpu.dfi_shadow.set_range(pv if pc else frame[pv], size, def_id)

    return handler


def _make_dfi_chkdef(inst: DfiChkDef, layout: Dict[str, int]) -> Handler:
    pc, pv = _spec(inst.pointer, layout)

    def handler(cpu, frame, pc=pc, pv=pv, size=inst.size, allowed=inst.allowed):
        violation = cpu.dfi_shadow.check_range(pv if pc else frame[pv], size, allowed)
        if violation is not None:
            raise DfiTrap(violation[0], violation[1], allowed)

    return handler


class _DecodeFallbackError(Exception):
    """Signal that an instruction resists specialised decoding."""


_DecodeFallback = _DecodeFallbackError()


def _make_fallback(inst: Instruction) -> Handler:
    """Interpretive execution via the reference semantics."""

    def handler(cpu, frame, inst=inst):
        cpu._execute(inst, frame)

    return handler


_DECODERS = {
    Alloca: _make_alloca,
    Load: _make_load,
    Store: _make_store,
    GetElementPtr: _make_gep,
    BinOp: _make_binop,
    ICmp: _make_icmp,
    Cast: _make_cast,
    Select: _make_select,
    Call: _make_call,
    PacSign: _make_pac_sign,
    PacAuth: _make_pac_auth,
    SecAssert: _make_sec_assert,
    DfiSetDef: _make_dfi_setdef,
    DfiChkDef: _make_dfi_chkdef,
}


def _decode_instruction(
    inst: Instruction, layout: Dict[str, int]
) -> Tuple[str, int, bool, Handler]:
    opcode = inst.opcode
    cost = DEFAULT_COSTS.get(opcode, 1)
    maker = _DECODERS.get(type(inst))
    if maker is not None:
        try:
            # ``impure`` marks handlers that may re-enter an interpreter
            # loop (calls); the decoded loop syncs its local counter
            # mirrors with the CPU around exactly those ops.
            return opcode, cost, isinstance(inst, Call), maker(inst, layout)
        except Exception:
            # Anything the specialiser cannot prove at decode time is
            # handed to the reference semantics at runtime instead --
            # including decode-time surprises the reference interpreter
            # would only raise when (and if) the instruction executes.
            pass
    return opcode, cost, True, _make_fallback(inst)


# ---------------------------------------------------------------------------
# Function and module decode
# ---------------------------------------------------------------------------


def _decode_function(function: Function, layout: Dict[str, int]) -> DecodedBlock:
    dmap: Dict[BasicBlock, DecodedBlock] = {}
    pending: List[BasicBlock] = []

    def get(block: BasicBlock) -> DecodedBlock:
        dblock = dmap.get(block)
        if dblock is None:
            dblock = DecodedBlock(block)
            dmap[block] = dblock
            pending.append(block)
        return dblock

    entry = get(function.entry_block)
    while pending:
        block = pending.pop()
        dblock = dmap[block]
        ops: List[Tuple[str, int, bool, Handler]] = []
        term: Optional[tuple] = None
        for inst in block.instructions[block.first_non_phi_index():]:
            if isinstance(inst, Ret):
                spec = None if inst.value is None else _spec(inst.value, layout)
                term = ("ret", spec)
                break
            if isinstance(inst, Jump):
                term = ("jump", get(inst.target))
                break
            if isinstance(inst, CondBranch):
                term = (
                    "br",
                    _spec(inst.condition, layout),
                    get(inst.true_block),
                    get(inst.false_block),
                )
                break
            ops.append(_decode_instruction(inst, layout))
        dblock.ops = tuple(ops)
        dblock.term = term if term is not None else ("fall",)

    # Phi routing, per decoded CFG edge.
    for block, dblock in dmap.items():
        term = dblock.term
        if term[0] == "jump":
            successors = (term[1],)
        elif term[0] == "br":
            successors = (term[2], term[3])
        else:
            continue
        for sdblock in successors:
            phis = sdblock.source.phis
            if not phis:
                continue
            route: List[Tuple[Phi, bool, object]] = []
            edge: object = None
            for phi in phis:
                try:
                    incoming = phi.incoming_for_block(block)
                except KeyError:
                    edge = f"phi has no incoming for block {block.name}"
                    break
                c, v = _spec(incoming, layout)
                route.append((phi, c, v))
            sdblock.phi_routes[dblock] = edge if edge is not None else tuple(route)

    return entry


def _fingerprint(module: Module) -> tuple:
    """A cheap structural fingerprint guarding the decode cache."""
    return (
        len(module.globals),
        tuple(
            (
                function.name,
                len(function.blocks),
                sum(len(block.instructions) for block in function.blocks),
            )
            for function in module.defined_functions()
        ),
    )


#: Attribute under which a module carries its cached decode.  The cache
#: must live *on the module*: a ``DecodedProgram`` references the
#: module's blocks (hence the module), so any manager-side mapping --
#: including a ``WeakKeyDictionary``, whose values would pin the keys --
#: would keep every decoded module alive for the life of the process.
_DECODE_ATTR = "_decoded_program"

#: Every per-module execution cache dropped by invalidation: the decode
#: itself plus the block and trace compiles layered on top of it (see
#: :mod:`repro.hardware.blockc` and :mod:`repro.hardware.tracec`).
_CACHE_ATTRS = (_DECODE_ATTR, "_block_program", "_trace_program", "_cpu_meta")

#: Weak registry of modules carrying a cached decode or block compile,
#: for whole-process invalidation.
_DECODED_MODULES: "WeakSet[Module]" = WeakSet()


def decode_module(module: Module) -> Tuple[DecodedProgram, float]:
    """Decode ``module`` (or return the cached decode).

    Returns ``(program, seconds)`` where ``seconds`` is the decode time
    actually spent by *this* call -- ``0.0`` on a cache hit.
    """
    fingerprint = _fingerprint(module)
    cached = getattr(module, _DECODE_ATTR, None)
    if cached is not None and cached.fingerprint == fingerprint:
        return cached, 0.0
    start = time.perf_counter()
    layout = compute_global_layout(module)
    functions = {
        function: _decode_function(function, layout)
        for function in module.defined_functions()
    }
    program = DecodedProgram(functions, layout, fingerprint)
    elapsed = time.perf_counter() - start
    program.decode_seconds = elapsed
    setattr(module, _DECODE_ATTR, program)
    _DECODED_MODULES.add(module)
    return program, elapsed


def invalidate_decode_cache(module: Optional[Module] = None) -> None:
    """Drop the cached decode for ``module`` (or all modules).

    Called by the pass manager after running a transform pipeline; the
    structural fingerprint in :func:`decode_module` is the second line
    of defense for modules mutated outside it.
    """
    if module is None:
        for registered in list(_DECODED_MODULES):
            for attr in _CACHE_ATTRS:
                registered.__dict__.pop(attr, None)
        _DECODED_MODULES.clear()
    else:
        for attr in _CACHE_ATTRS:
            module.__dict__.pop(attr, None)
        _DECODED_MODULES.discard(module)
