"""repro.hardware -- the simulated machine.

Byte-addressable memory, a glibc-style sectioned heap allocator, ARM
Pointer Authentication, the canary RNG, the cycle/IPC timing model, the
C library models, and the IR interpreter (CPU) tying them together.
"""

from .allocator import HeapAllocator, OutOfMemoryError, SectionedHeap
from .blockc import BlockProgram, block_compile
from .cache import CacheModel
from .cpu import (
    CPU,
    CanaryTrap,
    DFI_EXTERNAL_WRITER,
    DfiTrap,
    ExecutionResult,
    INTERPRETERS,
    NullPointerTrap,
    ProgramExit,
    SecurityTrap,
    StepLimitExceeded,
    UnknownExternalError,
)
from .decoder import decode_module, invalidate_decode_cache
from .errors import ReproError, UnknownInterpreterError
from .tracec import TraceProgram, trace_compile
from .libc import LIBRARY, LibFunction, declare_library
from .memory import (
    GLOBAL_BASE,
    HEAP_ISOLATED_BASE,
    HEAP_SHARED_BASE,
    Memory,
    MemoryFault,
    STACK_BASE,
    Segment,
)
from .pac import (
    ADDR_MASK,
    PAC_BITS,
    PAC_FIELD_MASK,
    PacAuthError,
    PointerAuthentication,
    VA_BITS,
    compute_pac,
)
from .rng import CanaryRng
from .timing import (
    DEFAULT_COSTS,
    HEAP_SECTIONING_CYCLES,
    RNG_CALL_CYCLES,
    TimingModel,
)

__all__ = [
    "ADDR_MASK",
    "block_compile",
    "BlockProgram",
    "CacheModel",
    "CanaryRng",
    "CanaryTrap",
    "CPU",
    "declare_library",
    "decode_module",
    "DEFAULT_COSTS",
    "DFI_EXTERNAL_WRITER",
    "DfiTrap",
    "ExecutionResult",
    "GLOBAL_BASE",
    "HEAP_ISOLATED_BASE",
    "HEAP_SECTIONING_CYCLES",
    "HEAP_SHARED_BASE",
    "HeapAllocator",
    "INTERPRETERS",
    "invalidate_decode_cache",
    "LIBRARY",
    "LibFunction",
    "Memory",
    "MemoryFault",
    "NullPointerTrap",
    "OutOfMemoryError",
    "PAC_BITS",
    "PAC_FIELD_MASK",
    "PacAuthError",
    "PointerAuthentication",
    "ProgramExit",
    "ReproError",
    "RNG_CALL_CYCLES",
    "SectionedHeap",
    "SecurityTrap",
    "Segment",
    "STACK_BASE",
    "StepLimitExceeded",
    "TimingModel",
    "trace_compile",
    "TraceProgram",
    "UnknownExternalError",
    "UnknownInterpreterError",
    "VA_BITS",
    "compute_pac",
]
