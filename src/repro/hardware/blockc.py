"""Block-compiled execution engine: tier 3 of the interpreter stack.

The decoded tier (:mod:`repro.hardware.decoder`) removed operand and
opcode dispatch but still pays one Python call per dynamic instruction
(``handler(cpu, frame)``) plus per-instruction step/timing bookkeeping
in the interpreter loop.  This module removes both: every decoded basic
block is fused into a *single generated Python function* that

- inlines the straight-line handler bodies (loads, stores, geps, int
  arithmetic, compares, casts, selects, PAC and DFI intrinsics) as
  plain statements over ``frame[...]`` slots;
- batches the step count, instruction count, opcode counts and the
  bounded-width issue model into one update per *chunk* (a maximal run
  of ops with no interpreter re-entry), using tables precomputed for
  every possible entry state of the cheap-op run counter;
- folds phi routing into per-CFG-edge closures doing one parallel
  tuple assignment;
- direct-threads control flow: each generated function returns the
  pre-built ``(successor, edge)`` pair, so the driver loop in
  :meth:`CPU._interpret_block` is two tuple indexings per block.

Bit-identity with the reference interpreter
-------------------------------------------

The reference interpreter charges each op *before* executing it, so a
trap mid-block must observe the counters exactly as if every op after
the trapping one had never been charged.  Batched accounting applies a
chunk's charges up front; the generated function therefore wraps its
body in ``except BaseException`` and repairs the counters before
re-raising: the traceback's line number (every generated line is mapped
to its op index at compile time) identifies the trapping op, the
chunk's recorded entry state ``_r0`` replays the issue model up to that
op, and the overshoot is subtracted.  Order of cycle accumulation
within a chunk differs from the reference, but every charge in the
model is a dyadic rational (integer costs, 0.25-per-byte library
calls), so float accumulation is exact and order-insensitive.

Batched accounting bakes in ``DEFAULT_COSTS`` and the default issue
width; :meth:`CPU._call` only dispatches here while the timing model
still matches, and falls back to the decoded tier otherwise.  A block
whose execution could cross the step limit is delegated, pending phi
routing included, to the decoded loop, which raises
``StepLimitExceeded`` at exactly the right op.

Like the decoded tier, compiled programs are cached on the module
(fingerprint-guarded) and dropped by
:func:`repro.hardware.decoder.invalidate_decode_cache`.  The deliberate
divergence on *malformed, unverified* IR is shared with the decoded
tier (``KeyError`` instead of the reference ``RuntimeError``), with one
addition: a phi-routing ``KeyError`` on a malformed edge surfaces with
the whole edge's phi charges applied rather than a prefix.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CondBranch,
    DfiChkDef,
    DfiSetDef,
    GetElementPtr,
    ICmp,
    Jump,
    Load,
    PacAuth,
    PacSign,
    Ret,
    SecAssert,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import IntType
from .decoder import (
    DecodedBlock,
    _DECODED_MODULES,
    _fingerprint,
    _gep_plan,
    _spec,
    decode_module,
)
from .errors import CanaryTrap, DfiTrap, NullPointerTrap
from .memory import MemoryFault
from .timing import DEFAULT_COSTS

_MASK64 = (1 << 64) - 1

#: The issue width the chunk tables are computed for (the TimingModel
#: default); the CPU only dispatches to this tier when its timing model
#: still uses this width and DEFAULT_COSTS.
BLOCK_ISSUE_WIDTH = 4

#: Sentinel: generated functions return ``(BLOCK_RET, value)`` from
#: ``ret`` terminators and the successor's ``(BlockCode, None)``
#: ``self_pair`` otherwise (phi routing runs inline in the terminator
#: before the pair is returned).
BLOCK_RET = object()

#: Attribute under which a module carries its cached block compile
#: (mirrors ``decoder._DECODE_ATTR``; see the comment there for why the
#: cache lives on the module).
_BLOCK_ATTR = "_block_program"


class BlockCode:
    """One basic block compiled to a fused function."""

    __slots__ = ("fn", "dblock", "nsteps", "meta", "self_pair", "label")

    def __init__(self, dblock: DecodedBlock, nsteps: int, label: str = ""):
        self.fn = None
        #: the decoded twin, for step-limit delegation
        self.dblock = dblock
        #: dynamic steps one full execution of this block retires
        self.nsteps = nsteps
        self.meta: Optional["_BlockMeta"] = None
        #: the ``(self, None)`` pair terminators and entries hand the driver
        self.self_pair = (self, None)
        #: ``function:block`` tag the profiled block driver attributes to
        self.label = label


class BlockProgram:
    """All defined functions of one module, block-compiled."""

    __slots__ = ("functions", "fingerprint", "compile_seconds", "issue_width", "sources")

    def __init__(self, fingerprint: tuple):
        #: Function -> entry BlockCode
        self.functions: Dict[Function, BlockCode] = {}
        self.fingerprint = fingerprint
        self.compile_seconds = 0.0
        self.issue_width = BLOCK_ISSUE_WIDTH
        #: Function -> generated source, kept for debugging
        self.sources: Dict[Function, str] = {}


class _BlockMeta:
    """Per-block data for the trap-time counter fixup."""

    __slots__ = ("ops", "line_map")

    def __init__(self):
        #: per op index: (opcode, cost, impure, chunk_start, chunk_end)
        self.ops: Tuple[Tuple[str, int, bool, int, int], ...] = ()
        #: generated lineno -> op index; -1 means "read the ``_k`` local"
        self.line_map: Dict[int, int] = {}


def _simulate(costs, width: int, r0: int) -> Tuple[int, int]:
    """Replay the bounded-width issue model over a cost sequence."""
    cycles = 0
    r = r0
    for cost in costs:
        if cost <= 1:
            r += 1
            if r >= width:
                cycles += 1
                r = 0
        else:
            cycles += cost
            r = 0
    return cycles, r


def _trap_fixup(cpu, timing, counts, meta: _BlockMeta, exc: BaseException) -> None:
    """Undo the not-yet-executed tail of the trapping op's chunk.

    Called from the generated ``except`` clause; the traceback's head
    frame is the generated function's own invocation, so its lineno and
    locals identify the trapping op and the chunk entry state.
    """
    tb = exc.__traceback__
    if tb is None:
        return
    k = meta.line_map.get(tb.tb_lineno)
    if k is None:
        return
    frame_locals = tb.tb_frame.f_locals
    if k < 0:
        k = frame_locals.get("_k")
        if k is None:
            return
    ops = meta.ops
    opcode, cost, impure, s, e = ops[k]
    if impure:
        # Calls and fallback handlers are their own chunk and were
        # accounted exactly before re-entry; the callee owns anything
        # charged since.
        return
    r0 = frame_locals.get("_r0")
    if r0 is None:
        return
    width = timing.issue_width
    applied = 0
    actual = 0
    r_actual = r0
    r = r0
    for i in range(s, e):
        cost_i = ops[i][1]
        if cost_i <= 1:
            r += 1
            if r >= width:
                applied += 1
                r = 0
        else:
            applied += cost_i
            r = 0
        if i == k:
            actual = applied
            r_actual = r
    timing.cycles -= applied - actual
    timing._cheap_run = r_actual
    over = e - 1 - k
    if over:
        timing.instructions -= over
        # Trace-tier chunks interleave 'phi' pseudo-ops (edge-routing
        # charges: instructions and issue slots, but no step), so the
        # step overshoot counts only the real ops past the trap.
        steps_over = over
        for i in range(k + 1, e):
            name = ops[i][0]
            if name == "phi":
                steps_over -= 1
            n = counts.get(name, 0) - 1
            if n <= 0:
                counts.pop(name, None)
            else:
                counts[name] = n
        cpu.steps -= steps_over


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

_CMP_PYOPS = {
    "eq": "==",
    "ne": "!=",
    "slt": "<",
    "sle": "<=",
    "sgt": ">",
    "sge": ">=",
    "ult": "<",
    "ule": "<=",
    "ugt": ">",
    "uge": ">=",
}
_SIGNED_PREDICATES = ("slt", "sle", "sgt", "sge")


class _FnGen:
    """Accumulates the generated source for one function."""

    def __init__(self, filename: str):
        self.filename = filename
        self.lines: List[str] = []
        self.consts: List[object] = []
        self.const_names: List[str] = []
        self._by_id: Dict[int, str] = {}
        self.fn_names: List[str] = []
        #: line_map of the block currently being generated
        self.current_map: Optional[Dict[int, int]] = None
        #: id(value) -> Python local name for block-private SSA values
        #: of the block currently being generated (see _plan_locals)
        self.block_locals: Dict[int, str] = {}

    def bind(self, obj: object, prefix: str) -> str:
        name = self._by_id.get(id(obj))
        if name is None:
            name = f"_{prefix}{len(self.consts)}"
            self._by_id[id(obj)] = name
            self.consts.append(obj)
            self.const_names.append(name)
        return name

    def emit(self, text: str, indent: int = 2, op: Optional[int] = None) -> None:
        self.lines.append("    " * indent + text)
        if op is not None and self.current_map is not None:
            self.current_map[len(self.lines)] = op

    def operand(self, spec) -> str:
        constant, value = spec
        if constant:
            return repr(value)
        name = self.block_locals.get(id(value))
        if name is not None:
            return name
        return f"frame[{self.bind(value, 'V')}]"

    def target(self, inst) -> str:
        """Assignment target for ``inst``'s result: local or frame slot."""
        name = self.block_locals.get(id(inst))
        if name is not None:
            return name
        return f"frame[{self.bind(inst, 'V')}]"


def _signed_lines(gen: _FnGen, temp: str, expr: str, bits: int, op: int) -> None:
    """Emit ``temp = to_signed_bits(expr)`` matching IntType.to_signed."""
    if bits >= 64:
        # Frame values and folded constants are always < 2**64, so the
        # to_signed mask is a no-op at 64 bits.
        gen.emit(f"{temp} = {expr}", op=op)
    else:
        gen.emit(f"{temp} = ({expr}) & {(1 << bits) - 1}", op=op)
    gen.emit(f"if {temp} > {(1 << (bits - 1)) - 1}: {temp} -= {1 << bits}", op=op)


def _signed_const(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value > (1 << (bits - 1)) - 1:
        value -= 1 << bits
    return value


def _int_params(vtype) -> Tuple[int, int]:
    """(wrap mask, bits) for a value type, pointer arithmetic included."""
    if isinstance(vtype, IntType):
        return (1 << vtype.bits) - 1, vtype.bits
    return _MASK64, 64


def _gen_pointer(gen: _FnGen, spec, message: str, k: int) -> Optional[str]:
    """Emit the null check for a pointer operand; None when it raises."""
    constant, value = spec
    if constant:
        if value == 0:
            gen.emit(f"raise _NPT({message!r})", op=k)
            return None
        return repr(value)
    pointer = gen.operand(spec)
    if pointer.startswith("frame["):
        gen.emit(f"_p = {pointer}", op=k)
        pointer = "_p"
    gen.emit(f"if {pointer} == 0: raise _NPT({message!r})", op=k)
    return pointer


#: Compile-time-constant access widths with a dedicated Memory fast
#: path; other sizes go through the generic read_int/write_int.
_SIZED_READ = {1: "read_u8", 2: "read_u16", 4: "read_u32", 8: "read_u64"}
_SIZED_WRITE = {1: "write_u8", 2: "write_u16", 4: "write_u32", 8: "write_u64"}


def _gen_load(gen: _FnGen, inst: Load, layout, k: int) -> None:
    size = max(1, inst.type.size)
    message = f"load through null in {inst}"
    pointer = _gen_pointer(gen, _spec(inst.pointer, layout), message, k)
    if pointer is None:
        return
    gen.emit(f"if cpu.cache is not None: cpu._cache_access({pointer}, {size})", op=k)
    reader = _SIZED_READ.get(size)
    if reader is not None:
        gen.emit(f"{gen.target(inst)} = mem.{reader}({pointer})", op=k)
    else:
        gen.emit(f"{gen.target(inst)} = mem.read_int({pointer}, {size})", op=k)


def _gen_store(gen: _FnGen, inst: Store, layout, k: int) -> None:
    value_expr = gen.operand(_spec(inst.value, layout))
    size = max(1, inst.value.type.size)
    message = f"store through null in {inst}"
    pointer = _gen_pointer(gen, _spec(inst.pointer, layout), message, k)
    if pointer is None:
        return
    gen.emit(f"if cpu.cache is not None: cpu._cache_access({pointer}, {size})", op=k)
    writer = _SIZED_WRITE.get(size)
    if writer is not None:
        gen.emit(f"mem.{writer}({pointer}, {value_expr})", op=k)
    else:
        gen.emit(f"mem.write_int({pointer}, {value_expr}, {size})", op=k)


def _gen_gep(gen: _FnGen, inst: GetElementPtr, layout, k: int) -> bool:
    plan = _gep_plan(inst, layout)
    if plan is None:
        gen.emit(f"raise RuntimeError({f'malformed gep: {inst}'!r})", op=k)
        return True
    base_c, base_v, const_off, dyn = plan
    target = gen.target(inst)
    if not dyn:
        if base_c:
            gen.emit(f"{target} = {(base_v + const_off) & _MASK64}", op=k)
        else:
            base = gen.operand((False, base_v))
            off = f" + {const_off}" if const_off else ""
            gen.emit(f"{target} = ({base}{off}) & {_MASK64}", op=k)
        return True
    terms = []
    for i, (key, stride) in enumerate(dyn):
        temp = f"_x{i}"
        _signed_lines(gen, temp, gen.operand((False, key)), 64, k)
        terms.append(f"{temp} * {stride}")
    if base_c:
        base = repr((base_v + const_off) & _MASK64)
    else:
        base = gen.operand((False, base_v))
        if const_off:
            base = f"{base} + {const_off}"
    gen.emit(f"{target} = ({base} + {' + '.join(terms)}) & {_MASK64}", op=k)
    return True


def _gen_binop(gen: _FnGen, inst: BinOp, layout, k: int) -> bool:
    op = inst.op
    mask, bits = _int_params(inst.type)
    lspec = _spec(inst.lhs, layout)
    rspec = _spec(inst.rhs, layout)
    target = gen.target(inst)
    if op in ("add", "sub", "mul", "and", "or", "xor"):
        py = {"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|", "xor": "^"}[op]
        lhs, rhs = gen.operand(lspec), gen.operand(rspec)
        gen.emit(f"{target} = (({lhs}) {py} ({rhs})) & {mask}", op=k)
        return True
    if op in ("shl", "lshr"):
        py = "<<" if op == "shl" else ">>"
        lhs = gen.operand(lspec)
        shift = repr(rspec[1] % bits) if rspec[0] else f"({gen.operand(rspec)}) % {bits}"
        gen.emit(f"{target} = (({lhs}) {py} ({shift})) & {mask}", op=k)
        return True
    if op == "ashr":
        if lspec[0]:
            lhs = repr(_signed_const(lspec[1], bits))
        else:
            _signed_lines(gen, "_a", gen.operand(lspec), bits, k)
            lhs = "_a"
        shift = repr(rspec[1] % bits) if rspec[0] else f"({gen.operand(rspec)}) % {bits}"
        gen.emit(f"{target} = (({lhs}) >> ({shift})) & {mask}", op=k)
        return True
    if op in ("sdiv", "srem"):
        if lspec[0]:
            lhs = repr(_signed_const(lspec[1], bits))
        else:
            _signed_lines(gen, "_a", gen.operand(lspec), bits, k)
            lhs = "_a"
        if rspec[0]:
            rhs = repr(_signed_const(rspec[1], bits))
        else:
            _signed_lines(gen, "_b", gen.operand(rspec), bits, k)
            rhs = "_b"
        kind = "divide" if op == "sdiv" else "remainder"
        gen.emit(f"if ({rhs}) == 0: raise _MF(0, 0, 'integer {kind} by zero')", op=k)
        if op == "sdiv":
            gen.emit(f"{target} = (int(({lhs}) / ({rhs}))) & {mask}", op=k)
        else:
            gen.emit(
                f"{target} = (({lhs}) - int(({lhs}) / ({rhs})) * ({rhs})) & {mask}",
                op=k,
            )
        return True
    gen.emit(f"raise RuntimeError({f'unknown binop {op}'!r})", op=k)
    return True


def _gen_icmp(gen: _FnGen, inst: ICmp, layout, k: int) -> bool:
    predicate = inst.predicate
    pyop = _CMP_PYOPS.get(predicate)
    if pyop is None:
        return False
    vtype = inst.lhs.type
    lspec = _spec(inst.lhs, layout)
    rspec = _spec(inst.rhs, layout)
    target = gen.target(inst)
    if predicate in _SIGNED_PREDICATES and isinstance(vtype, IntType):
        bits = vtype.bits
        if lspec[0]:
            lhs = repr(_signed_const(lspec[1], bits))
        else:
            _signed_lines(gen, "_a", gen.operand(lspec), bits, k)
            lhs = "_a"
        if rspec[0]:
            rhs = repr(_signed_const(rspec[1], bits))
        else:
            _signed_lines(gen, "_b", gen.operand(rspec), bits, k)
            rhs = "_b"
    else:
        lhs, rhs = gen.operand(lspec), gen.operand(rspec)
    gen.emit(f"{target} = 1 if ({lhs}) {pyop} ({rhs}) else 0", op=k)
    return True


def _gen_cast(gen: _FnGen, inst: Cast, layout, k: int) -> bool:
    op = inst.op
    mask, _ = _int_params(inst.type)
    spec = _spec(inst.value, layout)
    target = gen.target(inst)
    if op in ("trunc", "zext", "ptrtoint", "inttoptr", "bitcast"):
        gen.emit(f"{target} = ({gen.operand(spec)}) & {mask}", op=k)
        return True
    if op == "sext":
        source = inst.value.type
        if isinstance(source, IntType):
            if spec[0]:
                value = repr(_signed_const(spec[1], source.bits))
            else:
                _signed_lines(gen, "_a", gen.operand(spec), source.bits, k)
                value = "_a"
        else:
            value = gen.operand(spec)
        gen.emit(f"{target} = ({value}) & {mask}", op=k)
        return True
    gen.emit(f"raise RuntimeError({f'unknown cast {op}'!r})", op=k)
    return True


def _gen_select(gen: _FnGen, inst: Select, layout, k: int) -> None:
    cond = gen.operand(_spec(inst.condition, layout))
    true = gen.operand(_spec(inst.true_value, layout))
    false = gen.operand(_spec(inst.false_value, layout))
    target = gen.target(inst)
    gen.emit(f"{target} = ({true}) if (({cond}) & 1) else ({false})", op=k)


def _gen_call(gen: _FnGen, inst: Call, layout, k: int) -> None:
    args = ", ".join(gen.operand(_spec(a, layout)) for a in inst.args)
    callee = gen.bind(inst.callee, "F")
    # Declarations are static: _call's first action for one is to tail
    # into _call_external, so jump there directly and save a Python
    # frame per library call.
    dispatch = (
        "cpu._call_external" if inst.callee.is_declaration else "cpu._call"
    )
    if inst.type.is_void:
        gen.emit(f"{dispatch}({callee}, [{args}])", op=k)
    else:
        target = gen.target(inst)
        gen.emit(f"_t = {dispatch}({callee}, [{args}])", op=k)
        gen.emit(f"{target} = 0 if _t is None else _t", op=k)


def _gen_pac(gen: _FnGen, inst, layout, k: int, method: str) -> None:
    value = gen.operand(_spec(inst.value, layout))
    modifier = gen.operand(_spec(inst.modifier, layout))
    target = gen.target(inst)
    gen.emit(
        f"{target} = pac.{method}({value}, {modifier}, {inst.key_id!r})", op=k
    )


def _gen_sec_assert(gen: _FnGen, inst: SecAssert, layout, k: int) -> None:
    cond = gen.operand(_spec(inst.condition, layout))
    message = f"{inst.kind} check failed"
    gen.emit(f"if not (({cond}) & 1): raise _CT({message!r})", op=k)


def _gen_dfi_setdef(gen: _FnGen, inst: DfiSetDef, layout, k: int) -> None:
    pointer = gen.operand(_spec(inst.pointer, layout))
    gen.emit(f"dfi.set_range({pointer}, {inst.size}, {inst.def_id})", op=k)


def _gen_dfi_chk_one(gen: _FnGen, inst: DfiChkDef, layout, k: int) -> None:
    pointer = gen.operand(_spec(inst.pointer, layout))
    allowed = gen.bind(inst.allowed, "A")
    gen.emit(f"_v = dfi.check_range({pointer}, {inst.size}, {allowed})", op=k)
    gen.emit(f"if _v is not None: raise _DT(_v[0], _v[1], {allowed})", op=k)


def _gen_dfi_chk_batch(gen: _FnGen, run: List[Tuple[int, DfiChkDef]], layout) -> None:
    """A run of >= 2 consecutive dfi.chkdef ops: one batched check."""
    base = run[0][0]
    specs = []
    for _, inst in run:
        constant, value = _spec(inst.pointer, layout)
        specs.append((constant, value, inst.size, inst.allowed))
    name = gen.bind(tuple(specs), "B")
    gen.emit(f"_v = dfi.check_batch({name}, frame)", op=base)
    gen.emit("if _v is not None:", op=base)
    # The trapping element is only known at runtime; the fixup reads the
    # ``_k`` local (line_map sentinel -1).
    gen.emit(f"    _k = {base} + _v[0]", op=base)
    line = "    raise _DT(_v[1], _v[2], _v[3])"
    gen.emit(line)
    if gen.current_map is not None:
        gen.current_map[len(gen.lines)] = -1


def _emit_op(gen: _FnGen, inst, decoded_op, layout, k: int) -> None:
    opcode, cost, impure, handler = decoded_op
    if isinstance(inst, Call):
        _gen_call(gen, inst, layout, k)
        return
    if impure:
        # Decode-time fallback: reuse the decoded tier's handler so both
        # tiers agree on everything the specialisers decline.
        gen.emit(f"{gen.bind(handler, 'H')}(cpu, frame)", op=k)
        return
    if isinstance(inst, Alloca):
        return  # space assigned at frame layout; charge only
    if isinstance(inst, Load):
        _gen_load(gen, inst, layout, k)
        return
    if isinstance(inst, Store):
        _gen_store(gen, inst, layout, k)
        return
    if isinstance(inst, GetElementPtr) and _gen_gep(gen, inst, layout, k):
        return
    if isinstance(inst, BinOp) and _gen_binop(gen, inst, layout, k):
        return
    if isinstance(inst, ICmp) and _gen_icmp(gen, inst, layout, k):
        return
    if isinstance(inst, Cast) and _gen_cast(gen, inst, layout, k):
        return
    if isinstance(inst, Select):
        _gen_select(gen, inst, layout, k)
        return
    if isinstance(inst, PacSign):
        _gen_pac(gen, inst, layout, k, "sign")
        return
    if isinstance(inst, PacAuth):
        _gen_pac(gen, inst, layout, k, "auth")
        return
    if isinstance(inst, SecAssert):
        _gen_sec_assert(gen, inst, layout, k)
        return
    if isinstance(inst, DfiSetDef):
        _gen_dfi_setdef(gen, inst, layout, k)
        return
    if isinstance(inst, DfiChkDef):
        _gen_dfi_chk_one(gen, inst, layout, k)
        return
    # Anything else executes through the (pure) decoded handler.
    gen.emit(f"{gen.bind(handler, 'H')}(cpu, frame)", op=k)


def _body_instructions(dblock: DecodedBlock) -> List[object]:
    source = dblock.source
    body: List[object] = []
    for inst in source.instructions[source.first_non_phi_index():]:
        if isinstance(inst, (Ret, Jump, CondBranch)):
            break
        body.append(inst)
    if len(body) != len(dblock.ops):
        raise RuntimeError(
            f"decoded block %{source.name} does not match its source block"
        )
    return body


def _classify(inst, impure: bool) -> Tuple[bool, tuple, bool]:
    """How ``_emit_op`` will treat ``inst``: (def_ok, reads, via_frame).

    ``def_ok``: the result is assigned by generated code (so it *may*
    become a Python local).  ``reads``: the values the generated code
    reads as operands.  ``via_frame``: the op resolves its operands
    through the ``frame`` dict at runtime (decoded-handler fallbacks and
    batched DFI checks), so those reads pin their values to the frame.
    """
    if isinstance(inst, Call):
        return (not inst.type.is_void), tuple(inst.args), False
    if impure:
        return False, tuple(inst.operands), True
    if isinstance(inst, Alloca):
        return False, (), False
    if isinstance(inst, Load):
        return True, (inst.pointer,), False
    if isinstance(inst, Store):
        return False, (inst.value, inst.pointer), False
    if isinstance(inst, GetElementPtr):
        return True, tuple(inst.operands), False
    if isinstance(inst, BinOp):
        return True, (inst.lhs, inst.rhs), False
    if isinstance(inst, ICmp):
        if inst.predicate in _CMP_PYOPS:
            return True, (inst.lhs, inst.rhs), False
        return False, tuple(inst.operands), True
    if isinstance(inst, Cast):
        return True, (inst.value,), False
    if isinstance(inst, Select):
        return True, (inst.condition, inst.true_value, inst.false_value), False
    if isinstance(inst, (PacSign, PacAuth)):
        return True, (inst.value, inst.modifier), False
    if isinstance(inst, SecAssert):
        return False, (inst.condition,), False
    if isinstance(inst, DfiSetDef):
        return False, (inst.pointer,), False
    if isinstance(inst, DfiChkDef):
        # A run of chkdefs batches into dfi.check_batch(specs, frame),
        # which resolves pointers through the frame at runtime.
        return False, (inst.pointer,), True
    return False, tuple(inst.operands), True


def _plan_locals(order: List[DecodedBlock]) -> Dict[int, Dict[int, str]]:
    """Decide which SSA values become Python locals, per block.

    A value qualifies when its defining op assigns it from generated
    code and every read happens inside the defining block's own
    generated function (body operands, the terminator's payloads, and
    the phi routes *this* block applies on its outgoing edges).  Reads
    from another block, from a decoded-handler fallback, or from a
    batched DFI check keep the value in the frame dict.  Allocas,
    params and phis are frame-resident by construction (the frame
    layout / caller / predecessor edges write them), as is everything a
    step-limit delegation to the decoded tier might need -- locals
    never outlive one generated call, and delegation happens only at
    block entry, before any local exists.
    """
    candidates: Dict[int, int] = {}  # id(inst) -> id(defining dblock)
    pinned: set = set()  # id(value) read through the frame
    read_in: Dict[int, set] = {}  # id(value) -> {id(dblock) reading it}
    per_block: Dict[int, List[object]] = {}

    def read(value, bid: int) -> None:
        read_in.setdefault(id(value), set()).add(bid)

    for dblock in order:
        bid = id(dblock)
        body = _body_instructions(dblock)
        block_defs: List[object] = []
        for i, inst in enumerate(body):
            impure = dblock.ops[i][2]
            def_ok, reads, via_frame = _classify(inst, impure)
            for value in reads:
                if via_frame:
                    pinned.add(id(value))
                else:
                    read(value, bid)
            if def_ok:
                candidates[id(inst)] = bid
                block_defs.append(inst)
        term = dblock.term
        if term[0] == "ret":
            spec = term[1]
            if spec is not None and not spec[0]:
                read(spec[1], bid)
        elif term[0] == "br" and not term[1][0]:
            read(term[1][1], bid)
        if term[0] == "jump":
            successors = (term[1],)
        elif term[0] == "br":
            successors = (term[2], term[3])
        else:
            successors = ()
        for successor in successors:
            route = successor.phi_routes.get(dblock)
            if isinstance(route, tuple):
                # applied inline in *this* block's terminator
                for _, constant, payload in route:
                    if not constant:
                        read(payload, bid)
        per_block[bid] = block_defs

    plan: Dict[int, Dict[int, str]] = {}
    for bid, block_defs in per_block.items():
        block_locals: Dict[int, str] = {}
        for inst in block_defs:
            key = id(inst)
            if key in pinned:
                continue
            readers = read_in.get(key)
            if readers is not None and readers != {bid}:
                continue
            block_locals[key] = f"_l{len(block_locals)}"
        plan[bid] = block_locals
    return plan


def _gen_block(
    gen: _FnGen,
    fn_name: str,
    dblock: DecodedBlock,
    layout,
    meta: _BlockMeta,
    pairs: Dict[tuple, str],
    routes: Dict[tuple, object],
    ret_pairs: Dict[DecodedBlock, str],
    block_locals: Dict[int, str],
) -> None:
    body = _body_instructions(dblock)
    term = dblock.term
    # Op metadata: the body ops plus (for br/jump/ret) one terminator
    # pseudo-op whose charge the decoded loop applies identically.
    op_info: List[List[object]] = [
        [opcode, cost, impure] for opcode, cost, impure, _ in dblock.ops
    ]
    if term[0] == "ret":
        op_info.append(["ret", DEFAULT_COSTS["ret"], False])
    elif term[0] in ("jump", "br"):
        op_info.append(["br", DEFAULT_COSTS["br"], False])
    # Chunking: impure ops isolate themselves.
    chunks: List[Tuple[int, int]] = []
    start = 0
    for i, info in enumerate(op_info):
        if info[2]:
            if i > start:
                chunks.append((start, i))
            chunks.append((i, i + 1))
            start = i + 1
    if start < len(op_info):
        chunks.append((start, len(op_info)))
    chunk_of = {}
    for s, e in chunks:
        for i in range(s, e):
            chunk_of[i] = (s, e)
    meta.ops = tuple(
        (info[0], info[1], info[2]) + chunk_of[i] for i, info in enumerate(op_info)
    )

    uses_mem = any(isinstance(i, (Load, Store)) for i in body)
    uses_pac = any(isinstance(i, (PacSign, PacAuth)) for i in body)
    uses_dfi = any(isinstance(i, (DfiSetDef, DfiChkDef)) for i in body)

    meta_name = gen.bind(meta, "M")
    gen.fn_names.append(fn_name)
    gen.current_map = meta.line_map
    gen.block_locals = block_locals
    gen.emit(f"def {fn_name}(cpu, frame, timing, counts):", indent=1)
    gen.emit("try:", indent=2)
    if uses_mem:
        gen.emit("mem = cpu.memory", indent=3)
    if uses_pac:
        gen.emit("pac = cpu.pac", indent=3)
    if uses_dfi:
        gen.emit("dfi = cpu.dfi_shadow", indent=3)

    old_emit = gen.emit

    def emit3(text, indent=3, op=None):
        old_emit(text, indent=indent, op=op)

    gen.emit = emit3  # type: ignore[method-assign]
    try:
        for s, e in chunks:
            costs = [info[1] for info in op_info[s:e]]
            cycles_table = tuple(
                _simulate(costs, BLOCK_ISSUE_WIDTH, r)[0]
                for r in range(BLOCK_ISSUE_WIDTH)
            )
            cheap_table = tuple(
                _simulate(costs, BLOCK_ISSUE_WIDTH, r)[1]
                for r in range(BLOCK_ISSUE_WIDTH)
            )
            n = e - s
            gen.emit("_r0 = timing._cheap_run")
            gen.emit(f"timing.cycles += {gen.bind(cycles_table, 'T')}[_r0]")
            gen.emit(f"timing._cheap_run = {gen.bind(cheap_table, 'T')}[_r0]")
            gen.emit(f"timing.instructions += {n}")
            gen.emit(f"cpu.steps += {n}")
            tallies: Dict[str, int] = {}
            for info in op_info[s:e]:
                tallies[info[0]] = tallies.get(info[0], 0) + 1
            # counts is TimingModel's defaultdict(int): += needs no probe
            for name, count in tallies.items():
                gen.emit(f"counts[{name!r}] += {count}")
            # Statements, with dfi.chkdef runs batched.
            i = s
            nbody = len(body)
            while i < e:
                if i >= nbody:
                    _emit_term(
                        gen, dblock, term, layout, pairs, routes, ret_pairs, i
                    )
                    i += 1
                    continue
                inst = body[i]
                if isinstance(inst, DfiChkDef):
                    run = [(i, inst)]
                    j = i + 1
                    while j < e and j < nbody and isinstance(body[j], DfiChkDef):
                        run.append((j, body[j]))
                        j += 1
                    if len(run) >= 2:
                        _gen_dfi_chk_batch(gen, run, layout)
                        i = j
                        continue
                _emit_op(gen, inst, dblock.ops[i], layout, i)
                i += 1
        if term[0] == "fall":
            source = dblock.source
            owner = source.parent.name if source.parent is not None else "?"
            message = f"block %{source.name} in @{owner} fell through"
            gen.emit(f"raise RuntimeError({message!r})")
    finally:
        gen.emit = old_emit  # type: ignore[method-assign]
    gen.emit("except BaseException as _exc:", indent=2)
    gen.emit(f"    _FIX(cpu, timing, counts, {meta_name}, _exc)", indent=2)
    gen.emit("    raise", indent=2)
    gen.current_map = None
    gen.block_locals = {}


def _emit_phi_edge(gen: _FnGen, route, indent: int) -> bool:
    """Emit the phi routing for one taken CFG edge, inline.

    The predecessor knows which edge it takes, so the successor's phi
    batch (batched accounting: phis are zero-cost under DEFAULT_COSTS,
    so a run of n phis is n cheap issue slots) plus one parallel
    assignment compile straight into the terminator -- no per-edge
    closure, no driver routing.  Returns True when the edge is an
    unresolvable route and the emitted code raises instead of falling
    through to the ``return``.
    """
    if isinstance(route, str):
        gen.emit(f"raise KeyError({route!r})", indent=indent)
        return True
    n = len(route)
    gen.emit(f"timing.instructions += {n}", indent=indent)
    gen.emit(f"counts['phi'] += {n}", indent=indent)
    gen.emit(f"_pr = timing._cheap_run + {n}", indent=indent)
    gen.emit(f"timing.cycles += _pr // {BLOCK_ISSUE_WIDTH}", indent=indent)
    gen.emit(f"timing._cheap_run = _pr % {BLOCK_ISSUE_WIDTH}", indent=indent)
    targets = ", ".join(f"frame[{gen.bind(phi, 'V')}]" for phi, _, _ in route)
    values = ", ".join(
        gen.operand((constant, payload)) for _, constant, payload in route
    )
    gen.emit(f"{targets} = {values}", indent=indent)
    return False


def _emit_goto(
    gen: _FnGen, pair_name: str, route, k: int, indent: int = 3
) -> None:
    if route is not None and _emit_phi_edge(gen, route, indent):
        return
    gen.emit(f"return {pair_name}", indent=indent, op=k)


def _emit_term(
    gen: _FnGen,
    dblock: DecodedBlock,
    term: tuple,
    layout,
    pairs: Dict[tuple, str],
    routes: Dict[tuple, object],
    ret_pairs: Dict[DecodedBlock, str],
    k: int,
) -> None:
    kind = term[0]
    if kind == "ret":
        spec = term[1]
        if spec is None or spec[0]:
            gen.emit(f"return {ret_pairs[dblock]}", op=k)
        else:
            gen.emit(f"return (_RET, {gen.operand(spec)})", op=k)
    elif kind == "jump":
        _emit_goto(gen, pairs[(dblock, 0)], routes.get((dblock, 0)), k)
    elif kind == "br":
        constant, payload = term[1]
        if constant:
            slot = 0 if payload & 1 else 1
            _emit_goto(gen, pairs[(dblock, slot)], routes.get((dblock, slot)), k)
            return
        cond = gen.operand(term[1])
        true_route = routes.get((dblock, 0))
        false_route = routes.get((dblock, 1))
        if true_route is None and false_route is None:
            gen.emit(
                f"return {pairs[(dblock, 0)]} if (({cond}) & 1) "
                f"else {pairs[(dblock, 1)]}",
                op=k,
            )
            return
        gen.emit(f"if (({cond}) & 1):", op=k)
        _emit_goto(gen, pairs[(dblock, 0)], true_route, k, indent=4)
        _emit_goto(gen, pairs[(dblock, 1)], false_route, k)


def _compile_function(
    function: Function, entry: DecodedBlock, layout
) -> Tuple[BlockCode, str]:
    # Collect every decoded block reachable from the entry, in a stable
    # order, plus the phi edges between them.
    order: List[DecodedBlock] = []
    seen = {id(entry)}
    worklist = [entry]
    while worklist:
        dblock = worklist.pop(0)
        order.append(dblock)
        term = dblock.term
        successors = ()
        if term[0] == "jump":
            successors = (term[1],)
        elif term[0] == "br":
            successors = (term[2], term[3])
        for successor in successors:
            if id(successor) not in seen:
                seen.add(id(successor))
                worklist.append(successor)

    codes: Dict[int, BlockCode] = {}
    for dblock in order:
        nsteps = len(dblock.ops) + (0 if dblock.term[0] == "fall" else 1)
        codes[id(dblock)] = BlockCode(
            dblock, nsteps, f"{function.name}:{dblock.source.name}"
        )

    gen = _FnGen(f"<blockc:{function.name}>")
    gen.lines.append("def _make_blocks(_C):")
    gen.lines.append("")  # placeholder: unpack of _C, patched below

    # Shared helpers come first so their names are stable.
    for helper, name in (
        (_trap_fixup, "_FIX"),
        (BLOCK_RET, "_RET"),
        (NullPointerTrap, "_NPT"),
        (CanaryTrap, "_CT"),
        (DfiTrap, "_DT"),
        (MemoryFault, "_MF"),
    ):
        gen.consts.append(helper)
        gen.const_names.append(name)
        gen._by_id[id(helper)] = name

    # Successor pairs, pre-built so the generated terminators return
    # them directly; phi routes compile inline into the terminators.
    pairs: Dict[tuple, str] = {}
    routes: Dict[tuple, object] = {}
    ret_pairs: Dict[DecodedBlock, str] = {}
    for dblock in order:
        term = dblock.term
        if term[0] == "ret":
            spec = term[1]
            if spec is None:
                ret_pairs[dblock] = gen.bind((BLOCK_RET, None), "R")
            elif spec[0]:
                ret_pairs[dblock] = gen.bind((BLOCK_RET, spec[1]), "R")
            continue
        if term[0] == "jump":
            successors = (term[1],)
        elif term[0] == "br":
            successors = (term[2], term[3])
        else:
            continue
        for slot, successor in enumerate(successors):
            route = successor.phi_routes.get(dblock)
            if route is not None:
                routes[(dblock, slot)] = route
            pairs[(dblock, slot)] = gen.bind(
                codes[id(successor)].self_pair, "S"
            )

    # Generate the block functions.
    local_plan = _plan_locals(order)
    targets: List[BlockCode] = []
    for index, dblock in enumerate(order):
        meta = _BlockMeta()
        code = codes[id(dblock)]
        code.meta = meta
        _gen_block(
            gen,
            f"_b{index}",
            dblock,
            layout,
            meta,
            pairs,
            routes,
            ret_pairs,
            local_plan[id(dblock)],
        )
        targets.append(code)

    gen.emit(f"return ({', '.join(gen.fn_names)},)", indent=1)
    gen.lines[1] = "    ({},) = _C".format(", ".join(gen.const_names))

    source = "\n".join(gen.lines)
    namespace: Dict[str, object] = {}
    exec(compile(source, gen.filename, "exec"), namespace)
    functions = namespace["_make_blocks"](tuple(gen.consts))
    for target, fn in zip(targets, functions):
        target.fn = fn

    return codes[id(entry)], source


def block_compile(module: Module) -> Tuple[BlockProgram, float]:
    """Block-compile ``module`` (or return the cached program).

    Returns ``(program, seconds)`` where ``seconds`` is the compile time
    spent by *this* call -- ``0.0`` on a cache hit.  Decoding happens
    first (and is itself cached); the block tier compiles *from* the
    decoded program so both tiers agree on specialisation decisions.
    """
    fingerprint = _fingerprint(module)
    cached = getattr(module, _BLOCK_ATTR, None)
    if cached is not None and cached.fingerprint == fingerprint:
        return cached, 0.0
    start = time.perf_counter()
    decoded, _ = decode_module(module)
    program = BlockProgram(fingerprint)
    for function, entry in decoded.functions.items():
        code, source = _compile_function(function, entry, decoded.global_layout)
        program.functions[function] = code
        program.sources[function] = source
    elapsed = time.perf_counter() - start
    program.compile_seconds = elapsed
    setattr(module, _BLOCK_ATTR, program)
    _DECODED_MODULES.add(module)
    return program, elapsed
