"""Simulated ARM Pointer Authentication (ARMv8.3 PAuth).

The simulated machine is 64-bit with a 40-bit virtual address space, so
bits [63:40] of a pointer are unused by translation -- exactly the
situation ARM-PA exploits.  A 24-bit *Pointer Authentication Code*
(PAC) is computed as a keyed MAC over the address bits and a 64-bit
modifier (tweak) and embedded in those unused bits:

    signed = (value & ADDR_MASK) | (PAC(key, value, modifier) << 40)

``auth`` recomputes the PAC; a mismatch models the ARMv8.3 behaviour of
producing a poisoned pointer whose use faults -- our CPU raises
:class:`PacAuthError` at the authentication point, which is the paper's
"ARM-PA decryption mechanism triggers a program crash".

The MAC itself is a small ARX (add-rotate-xor) tweakable cipher in the
spirit of QARMA.  Cryptographic strength is irrelevant here; what the
defense relies on is the *contract*: without the key, a forged value
passes authentication with probability 2^-24 (Eq. 6 of the paper).
"""

from __future__ import annotations

from typing import Dict, Optional

from .errors import ReproError

#: Bits of virtual address space actually used by translation.
VA_BITS = 40
#: Bits available for the PAC field.
PAC_BITS = 24
#: Mask selecting the address (or data) bits covered by the PAC.
ADDR_MASK = (1 << VA_BITS) - 1
#: Mask selecting the PAC field once shifted into place.
PAC_FIELD_MASK = ((1 << PAC_BITS) - 1) << VA_BITS

_MASK64 = (1 << 64) - 1


class PacAuthError(ReproError):
    """Authentication failure: the value's PAC did not match.

    This is the simulated equivalent of dereferencing the poisoned
    pointer ARMv8.3 AUT* produces on mismatch.
    """

    def __init__(self, value: int, modifier: int, key_id: str):
        super().__init__(
            f"PAC authentication failed (key {key_id}, value {value:#018x}, "
            f"modifier {modifier:#x})"
        )
        self.value = value
        self.modifier = modifier
        self.key_id = key_id


def _rotl(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _MASK64


def _mix(block: int, key: int) -> int:
    """One ARX round: add key, rotate, xor, multiply-diffuse."""
    block = (block + key) & _MASK64
    block ^= _rotl(block, 13)
    block = (block * 0x9E3779B97F4A7C15) & _MASK64
    block ^= block >> 29
    return block


def compute_pac(key: int, value: int, modifier: int) -> int:
    """Compute the 24-bit PAC of ``value`` under ``key`` and ``modifier``.

    Only the low :data:`VA_BITS` of ``value`` are covered, mirroring the
    hardware (the PAC field itself must not influence the MAC).

    The three :func:`_mix` rounds are inlined into straight-line
    arithmetic: this runs once per dynamic ``pac.sign``/``pac.auth``,
    which under the cpa scheme means once per protected memory access.
    """
    modifier &= _MASK64
    block = (value & ADDR_MASK) ^ (((modifier << 17) | (modifier >> 47)) & _MASK64)
    for round_key in (key & _MASK64, (key >> 64) & _MASK64, modifier):
        block = (block + round_key) & _MASK64
        block ^= ((block << 13) | (block >> 51)) & _MASK64
        block = (block * 0x9E3779B97F4A7C15) & _MASK64
        block ^= block >> 29
    return block >> (64 - PAC_BITS)


class PointerAuthentication:
    """Per-process PA state: the five ARMv8.3 keys plus usage counters.

    Key ids follow the architecture: ``ia``/``ib`` (instruction),
    ``da``/``db`` (data), ``ga`` (generic).  The defense passes in this
    repo use ``da`` for data signing, as Pythia signs data pointers.
    """

    KEY_IDS = ("ia", "ib", "da", "db", "ga")

    def __init__(self, seed: int = 0x5EED):
        self.keys: Dict[str, int] = {}
        self._derive_keys(seed)
        self.sign_count = 0
        self.auth_count = 0
        self.auth_failures = 0
        #: bumped whenever any key changes (:meth:`corrupt_key`,
        #: :meth:`rekey`); part of the MAC memo key so a cached PAC can
        #: never survive its key
        self.key_epoch = 0
        #: optional fault injector (see :mod:`repro.robustness.faults`);
        #: when set, every signed value passes through
        #: ``fault_hook.on_pac_sign(self, signed, modifier, key_id)``
        self.fault_hook = None
        # MAC memo: the PAC is a pure function of (key, address bits,
        # modifier), and nearly every auth re-derives a MAC some sign
        # already computed.  Bounded by the number of distinct signed
        # (pointer, modifier) pairs in one execution.
        self._pac_cache: Dict[tuple, int] = {}

    def _derive_keys(self, seed: int) -> None:
        state = (seed * 0x2545F4914F6CDD1D + 0x9E3779B9) & _MASK64
        for key_id in self.KEY_IDS:
            lo = _mix(state, 0xA5A5A5A5A5A5A5A5)
            hi = _mix(lo, 0xC3C3C3C3C3C3C3C3)
            self.keys[key_id] = (hi << 64) | lo
            state = hi

    def _key(self, key_id: str) -> int:
        try:
            return self.keys[key_id]
        except KeyError:
            raise ValueError(f"unknown PA key id: {key_id}") from None

    def sign(self, value: int, modifier: int, key_id: str = "da") -> int:
        """Embed a PAC in the unused high bits of ``value``.

        Like hardware ``PAC*``, any existing high bits are replaced: the
        MAC covers only the low address bits.
        """
        self.sign_count += 1
        # _pac flattened inline: sign/auth run once per protected memory
        # access under the cpa scheme, so the extra call frame shows up.
        cache_key = (key_id, value & ADDR_MASK, modifier & _MASK64, self.key_epoch)
        pac = self._pac_cache.get(cache_key)
        if pac is None:
            pac = self._pac_cache[cache_key] = compute_pac(
                self._key(key_id), value, modifier
            )
        signed = (value & ADDR_MASK) | (pac << VA_BITS)
        if self.fault_hook is not None:
            signed = self.fault_hook.on_pac_sign(self, signed, modifier, key_id)
        return signed

    def _pac(self, key_id: str, value: int, modifier: int) -> int:
        cache_key = (key_id, value & ADDR_MASK, modifier & _MASK64, self.key_epoch)
        pac = self._pac_cache.get(cache_key)
        if pac is None:
            pac = self._pac_cache[cache_key] = compute_pac(
                self._key(key_id), value, modifier
            )
        return pac

    def corrupt_key(self, key_id: str, bit: int) -> None:
        """Flip one bit of a key (fault injection / chaos testing only).

        The MAC memo includes :attr:`key_epoch`, so bumping the epoch
        invalidates every cached PAC derived from the old key; the dict
        is also cleared so stale entries do not accumulate.
        """
        self.keys[key_id] = self._key(key_id) ^ (1 << (bit % 128))
        self.key_epoch += 1
        self._pac_cache.clear()

    def rekey(self, seed: int) -> None:
        """Re-derive all five keys from a fresh ``seed``.

        Models a process-lifetime key rotation.  Bumps
        :attr:`key_epoch` (and drops the MAC memo) so previously signed
        pointers no longer authenticate.
        """
        self._derive_keys(seed)
        self.key_epoch += 1
        self._pac_cache.clear()

    def auth(self, value: int, modifier: int, key_id: str = "da") -> int:
        """Verify ``value``'s PAC and return the stripped value.

        Raises :class:`PacAuthError` on mismatch.
        """
        self.auth_count += 1
        if self.fault_hook is not None:
            # Signed-pointer reuse/substitution: the hook may swap in a
            # signed value captured at an earlier sign site.  The MAC on
            # the substituted value is genuine, so verification below
            # only trips when the *modifier* differs between the capture
            # and replay sites -- exactly PACStack's reuse observation.
            value = self.fault_hook.on_pac_auth(self, value, modifier, key_id)
        cache_key = (key_id, value & ADDR_MASK, modifier & _MASK64, self.key_epoch)
        expected = self._pac_cache.get(cache_key)
        if expected is None:
            expected = self._pac_cache[cache_key] = compute_pac(
                self._key(key_id), value, modifier
            )
        embedded = (value >> VA_BITS) & ((1 << PAC_BITS) - 1)
        if embedded != expected:
            self.auth_failures += 1
            raise PacAuthError(value, modifier, key_id)
        return value & ADDR_MASK

    def try_auth(self, value: int, modifier: int, key_id: str = "da") -> Optional[int]:
        """Like :meth:`auth` but returns ``None`` instead of raising."""
        try:
            return self.auth(value, modifier, key_id)
        except PacAuthError:
            return None

    @staticmethod
    def strip(value: int) -> int:
        """Remove the PAC field without verification (ARM ``XPAC``)."""
        return value & ADDR_MASK

    @staticmethod
    def is_signed(value: int) -> bool:
        """True when the value carries a (possibly invalid) PAC field."""
        return (value & PAC_FIELD_MASK) != 0
