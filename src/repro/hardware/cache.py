"""Set-associative LRU cache model (opt-in).

§6.1 makes two cache-level observations: CPA's extra instructions cause
additional LLC misses, and Pythia's heap sectioning fragments the heap
so that benchmarks alternating between isolated and shared objects
(510.parest_r) see slightly more misses.  This model lets executions
quantify both: construct a :class:`CacheModel` and hand it to the CPU
(``CPU(module, cache=CacheModel())``); every IR load/store then passes
through it and misses are charged to the timing model.

The default geometry is a scaled-down stand-in for the M1 Pro's 24 MiB
LLC, sized so the generated workloads' working sets exercise it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List


class CacheModel:
    """A single-level, set-associative, LRU, write-allocate cache."""

    def __init__(
        self,
        size_bytes: int = 64 * 1024,
        line_bytes: int = 64,
        associativity: int = 8,
        miss_penalty: int = 20,
    ):
        if size_bytes % (line_bytes * associativity):
            raise ValueError("size must be a multiple of line * associativity")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.miss_penalty = miss_penalty
        self.num_sets = size_bytes // (line_bytes * associativity)
        #: per-set LRU-ordered tag maps (most recent last)
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int, size: int = 8) -> int:
        """Touch ``[address, address+size)``; returns the miss count."""
        first_line = address // self.line_bytes
        last_line = (address + max(1, size) - 1) // self.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            if not self._touch(line):
                misses += 1
        return misses

    def _touch(self, line: int) -> bool:
        index = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets[index]
        if tag in entries:
            entries.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        entries[tag] = True
        if len(entries) > self.associativity:
            entries.popitem(last=False)  # evict LRU
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        for entries in self._sets:
            entries.clear()
        self.hits = 0
        self.misses = 0
