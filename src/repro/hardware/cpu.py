"""The simulated CPU: an IR interpreter with a timing model and traps.

The CPU executes one module's IR against the byte-addressable
:class:`~repro.hardware.memory.Memory`.  It implements the semantics the
defense passes rely on:

- PAC sign/auth with trap-on-mismatch (:class:`PacAuthError`);
- ``sec.assert`` canary checks (:class:`CanaryTrap`);
- the DFI runtime definitions table (:class:`DfiTrap`);
- flat segments, so buffer overflows corrupt silently until a check fires.

Executions are deterministic given the seed, and every run accumulates
the counters the paper's evaluation reports: cycles, IPC, dynamic PA
instruction counts, input-channel invocations, allocator statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CondBranch,
    DfiChkDef,
    DfiSetDef,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    PacAuth,
    PacSign,
    Phi,
    Ret,
    SecAssert,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import ArrayType, I64, IntType, PointerType, StructType
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from .allocator import OutOfMemoryError, SectionedHeap
from .cache import CacheModel
from .libc import LIBRARY
from .memory import GLOBAL_BASE, Memory, MemoryFault, STACK_BASE
from .pac import PacAuthError, PointerAuthentication
from .rng import CanaryRng
from .timing import TimingModel

_MASK64 = (1 << 64) - 1

#: Shadow value for memory last written by an external (library) writer.
DFI_EXTERNAL_WRITER = 0


class SecurityTrap(Exception):
    """Base class of defense-triggered traps."""

    kind = "security"


class CanaryTrap(SecurityTrap):
    """A ``sec.assert`` canary check failed: overflow detected."""

    kind = "canary"


class DfiTrap(SecurityTrap):
    """A ``dfi.chkdef`` found an unexpected last writer."""

    kind = "dfi"

    def __init__(self, address: int, writer: int, allowed: frozenset):
        super().__init__(
            f"DFI violation at {address:#x}: writer {writer} not in {sorted(allowed)}"
        )
        self.address = address
        self.writer = writer
        self.allowed = allowed


class NullPointerTrap(Exception):
    """Dereference of a null pointer."""


class StepLimitExceeded(Exception):
    """The execution ran past the configured dynamic step budget."""


class ProgramExit(Exception):
    """Raised by the ``exit``/``abort`` library models."""

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class UnknownExternalError(Exception):
    """Call to a declaration with no library model."""


@dataclass
class ExecutionResult:
    """Everything a benchmark needs to know about one execution."""

    status: str
    return_value: Optional[int]
    cycles: float
    instructions: int
    ipc: float
    opcode_counts: Dict[str, int]
    output: bytes
    steps: int
    trap: Optional[BaseException] = None
    ic_calls: Dict[str, int] = field(default_factory=dict)
    pac_sign_count: int = 0
    pac_auth_count: int = 0
    isolated_allocations: int = 0
    #: cache statistics (zero unless the CPU was given a CacheModel)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_miss_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_misses / total if total else 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def detected(self) -> bool:
        """True when a defense mechanism fired."""
        return self.status in ("pac_trap", "canary_trap", "dfi_trap")

    @property
    def pa_dynamic(self) -> int:
        """Dynamically executed ARM-PA instructions."""
        return self.opcode_counts.get("pac.sign", 0) + self.opcode_counts.get(
            "pac.auth", 0
        )


class CPU:
    """Interpreter for one module.  Construct fresh per execution run."""

    def __init__(
        self,
        module: Module,
        seed: int = 2024,
        attack: Optional[object] = None,
        max_steps: int = 20_000_000,
        heap_capacity: int = 8 * 1024 * 1024,
        cache: Optional[CacheModel] = None,
    ):
        self.module = module
        self.memory = Memory()
        self.pac = PointerAuthentication(seed)
        self.rng = CanaryRng(seed ^ 0xCA11A57)
        self.heap = SectionedHeap(self.memory, heap_capacity)
        self.timing = TimingModel()
        self.cache = cache
        self.attack = attack
        self.max_steps = max_steps
        self.steps = 0
        self.call_depth = 0
        self.max_call_depth = 256
        self.stack_top = STACK_BASE + 64
        self.input_queue: Deque[bytes] = deque()
        self.output: List[bytes] = []
        self.ic_calls: Dict[str, int] = {}
        self.global_addresses: Dict[str, int] = {}
        #: live call frames, innermost last: (function, value->int map)
        self.frames: List[Tuple[Function, Dict[Value, int]]] = []
        self.dfi_shadow: Dict[int, int] = {}
        self.dfi_active = any(
            isinstance(inst, (DfiSetDef, DfiChkDef))
            for function in module.defined_functions()
            for inst in function.instructions()
        )
        self._layout_globals()

    # -- setup -----------------------------------------------------------------

    def _layout_globals(self) -> None:
        cursor = GLOBAL_BASE + 16
        for gvar in self.module.globals.values():
            alignment = max(1, gvar.value_type.alignment)
            cursor = (cursor + alignment - 1) // alignment * alignment
            self.global_addresses[gvar.name] = cursor
            self._write_initializer(cursor, gvar)
            cursor += max(1, gvar.value_type.size)

    def _write_initializer(self, address: int, gvar: GlobalVariable) -> None:
        init = gvar.initializer
        if init is None:
            return
        if isinstance(init, bytes):
            self.memory.write_bytes(address, init)
        elif isinstance(init, int):
            self.memory.write_int(address, init, max(1, gvar.value_type.size))
        elif isinstance(init, (list, tuple)):
            elem_size = (
                gvar.value_type.element.size
                if isinstance(gvar.value_type, ArrayType)
                else 8
            )
            for i, value in enumerate(init):
                self.memory.write_int(address + i * elem_size, value, elem_size)
        else:
            raise TypeError(f"unsupported initializer for @{gvar.name}: {init!r}")

    # -- hooks used by the libc models ---------------------------------------------

    def take_input(self, channel: str, args: Sequence[int]) -> bytes:
        """External input for a read-style IC: attack payload, queued
        benign input, or empty."""
        payload = self.attack_payload(channel, args)
        if payload is not None:
            return payload
        if self.input_queue:
            return self.input_queue.popleft()
        return b""

    def attack_payload(self, channel: str, args: Sequence[int]) -> Optional[bytes]:
        """Ask the attack controller (if any) for a payload at this IC."""
        if self.attack is None:
            return None
        return self.attack.payload_for(self, channel, args)  # type: ignore[attr-defined]

    def stack_slot_address(self, name: str) -> Optional[int]:
        """Address of the named alloca in the innermost frame holding it.

        This is the adaptive attacker's eye: the threat model (§2.5)
        grants the attacker full knowledge of the binary's layout, so
        exploit scripts compute victim offsets from live addresses
        rather than hard-coding them.
        """
        for _, frame in reversed(self.frames):
            for value, address in frame.items():
                if isinstance(value, Alloca) and value.name == name:
                    return address
        return None

    def external_write(self, address: int, data: bytes) -> None:
        """A library-side memory write (the IC write itself)."""
        self.memory.write_bytes(address, data)
        if self.dfi_active:
            shadow = self.dfi_shadow
            for offset in range(len(data)):
                shadow[address + offset] = DFI_EXTERNAL_WRITER

    # -- public API -------------------------------------------------------------

    def run(
        self,
        function_name: str = "main",
        args: Sequence[int] = (),
        inputs: Optional[Sequence[bytes]] = None,
    ) -> ExecutionResult:
        """Execute ``function_name`` to completion or trap."""
        if inputs:
            self.input_queue.extend(inputs)
        status = "ok"
        return_value: Optional[int] = None
        trap: Optional[BaseException] = None
        try:
            return_value = self._call(self.module.get_function(function_name), list(args))
        except PacAuthError as exc:
            status, trap = "pac_trap", exc
        except CanaryTrap as exc:
            status, trap = "canary_trap", exc
        except DfiTrap as exc:
            status, trap = "dfi_trap", exc
        except (MemoryFault, NullPointerTrap) as exc:
            status, trap = "fault", exc
        except OutOfMemoryError as exc:
            status, trap = "oom", exc
        except StepLimitExceeded as exc:
            status, trap = "limit", exc
        except ProgramExit as exc:
            return_value = exc.code
        return ExecutionResult(
            status=status,
            return_value=return_value,
            cycles=self.timing.cycles,
            instructions=self.timing.instructions,
            ipc=self.timing.ipc,
            opcode_counts=dict(self.timing.opcode_counts),
            output=b"".join(self.output),
            steps=self.steps,
            trap=trap,
            ic_calls=dict(self.ic_calls),
            pac_sign_count=self.pac.sign_count,
            pac_auth_count=self.pac.auth_count,
            isolated_allocations=self.heap.isolated_calls,
            cache_hits=self.cache.hits if self.cache else 0,
            cache_misses=self.cache.misses if self.cache else 0,
        )

    # -- execution engine -----------------------------------------------------------

    def _call(self, function: Function, args: List[int]) -> Optional[int]:
        if function.is_declaration:
            return self._call_external(function, args)
        self.call_depth += 1
        if self.call_depth > self.max_call_depth:
            self.call_depth -= 1
            raise MemoryFault(self.stack_top, 0, "stack overflow")
        saved_top = self.stack_top
        try:
            frame: Dict[Value, int] = {}
            for argument, value in zip(function.args, args):
                frame[argument] = value & _MASK64
            self._layout_frame(function, frame)
            self.frames.append((function, frame))
            try:
                return self._interpret(function, frame)
            finally:
                self.frames.pop()
        finally:
            self.stack_top = saved_top
            self.call_depth -= 1

    def _layout_frame(self, function: Function, frame: Dict[Value, int]) -> None:
        """Assign frame addresses to allocas in *program order*.

        Program order is address order: Pythia's stack re-layout pass
        reorders allocas precisely to control which variables sit next
        to each other in memory.
        """
        base = (self.stack_top + 15) // 16 * 16
        offset = 0
        for alloca in function.allocas():
            alignment = max(1, alloca.allocated_type.alignment)
            offset = (offset + alignment - 1) // alignment * alignment
            frame[alloca] = base + offset
            offset += max(1, alloca.allocated_type.size)
        self.stack_top = base + (offset + 15) // 16 * 16

    def _call_external(self, function: Function, args: List[int]) -> Optional[int]:
        lib = LIBRARY.get(function.name)
        if lib is None:
            raise UnknownExternalError(function.name)
        if lib.ic_kind is not None:
            self.ic_calls[function.name] = self.ic_calls.get(function.name, 0) + 1
        result = lib.handler(self, args)
        return result if result is None else result & _MASK64

    def _interpret(self, function: Function, frame: Dict[Value, int]) -> Optional[int]:
        block = function.entry_block
        previous: Optional[BasicBlock] = None
        while True:
            if previous is not None:
                self._run_phis(block, previous, frame)
            start = block.first_non_phi_index()
            next_block: Optional[BasicBlock] = None
            for inst in block.instructions[start:]:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise StepLimitExceeded(f"exceeded {self.max_steps} steps")
                self.timing.charge(inst.opcode)
                if isinstance(inst, Ret):
                    if inst.value is None:
                        return None
                    return self._value(inst.value, frame)
                if isinstance(inst, Jump):
                    next_block = inst.target
                    break
                if isinstance(inst, CondBranch):
                    taken = self._value(inst.condition, frame) & 1
                    next_block = inst.true_block if taken else inst.false_block
                    break
                self._execute(inst, frame)
            if next_block is None:
                raise RuntimeError(
                    f"block %{block.name} in @{function.name} fell through"
                )
            previous, block = block, next_block

    def _run_phis(
        self, block: BasicBlock, previous: BasicBlock, frame: Dict[Value, int]
    ) -> None:
        phis = block.phis
        if not phis:
            return
        # Parallel evaluation: read all incoming values before writing any.
        staged: List[Tuple[Phi, int]] = []
        for phi in phis:
            self.timing.charge("phi")
            staged.append((phi, self._value(phi.incoming_for_block(previous), frame)))
        for phi, value in staged:
            frame[phi] = value

    def _cache_access(self, address: int, size: int) -> None:
        if self.cache is None:
            return
        misses = self.cache.access(address, size)
        if misses:
            self.timing.charge_cycles(misses * self.cache.miss_penalty, "llc.miss")

    # -- operand evaluation ------------------------------------------------------------

    def _value(self, value: Value, frame: Dict[Value, int]) -> int:
        if isinstance(value, Constant):
            return value.value & _MASK64
        if isinstance(value, GlobalVariable):
            return self.global_addresses[value.name]
        if isinstance(value, UndefValue):
            return 0
        try:
            return frame[value]
        except KeyError:
            raise RuntimeError(f"use of unevaluated value %{value.name}") from None

    # -- instruction semantics ------------------------------------------------------------

    def _execute(self, inst: Instruction, frame: Dict[Value, int]) -> None:
        if isinstance(inst, Alloca):
            # Address already assigned by _layout_frame.
            return
        if isinstance(inst, Load):
            address = self._value(inst.pointer, frame)
            if address == 0:
                raise NullPointerTrap(f"load through null in {inst}")
            size = max(1, inst.type.size)
            self._cache_access(address, size)
            frame[inst] = self.memory.read_int(address, size)
            return
        if isinstance(inst, Store):
            address = self._value(inst.pointer, frame)
            if address == 0:
                raise NullPointerTrap(f"store through null in {inst}")
            size = max(1, inst.value.type.size)
            self._cache_access(address, size)
            self.memory.write_int(address, self._value(inst.value, frame), size)
            return
        if isinstance(inst, GetElementPtr):
            frame[inst] = self._gep_address(inst, frame)
            return
        if isinstance(inst, BinOp):
            frame[inst] = self._binop(inst, frame)
            return
        if isinstance(inst, ICmp):
            frame[inst] = self._icmp(inst, frame)
            return
        if isinstance(inst, Cast):
            frame[inst] = self._cast(inst, frame)
            return
        if isinstance(inst, Select):
            cond = self._value(inst.condition, frame) & 1
            chosen = inst.true_value if cond else inst.false_value
            frame[inst] = self._value(chosen, frame)
            return
        if isinstance(inst, Call):
            result = self._call(
                inst.callee, [self._value(a, frame) for a in inst.args]
            )
            if not inst.type.is_void:
                frame[inst] = 0 if result is None else result
            return
        if isinstance(inst, PacSign):
            value = self._value(inst.value, frame)
            modifier = self._value(inst.modifier, frame)
            frame[inst] = self.pac.sign(value, modifier, inst.key_id)
            return
        if isinstance(inst, PacAuth):
            value = self._value(inst.value, frame)
            modifier = self._value(inst.modifier, frame)
            frame[inst] = self.pac.auth(value, modifier, inst.key_id)
            return
        if isinstance(inst, SecAssert):
            if not (self._value(inst.condition, frame) & 1):
                raise CanaryTrap(f"{inst.kind} check failed")
            return
        if isinstance(inst, DfiSetDef):
            address = self._value(inst.pointer, frame)
            for offset in range(inst.size):
                self.dfi_shadow[address + offset] = inst.def_id
            return
        if isinstance(inst, DfiChkDef):
            address = self._value(inst.pointer, frame)
            for offset in range(inst.size):
                writer = self.dfi_shadow.get(address + offset, DFI_EXTERNAL_WRITER)
                if writer not in inst.allowed:
                    raise DfiTrap(address + offset, writer, inst.allowed)
            return
        raise RuntimeError(f"cannot execute instruction: {inst}")

    def _gep_address(self, inst: GetElementPtr, frame: Dict[Value, int]) -> int:
        address = self._value(inst.pointer, frame)
        pointee = inst.pointer.type.pointee  # type: ignore[union-attr]
        first = I64.to_signed(self._value(inst.indices[0], frame))
        address = (address + first * max(1, pointee.size)) & _MASK64
        current = pointee
        for index in inst.indices[1:]:
            if isinstance(current, ArrayType):
                step = I64.to_signed(self._value(index, frame))
                address = (address + step * max(1, current.element.size)) & _MASK64
                current = current.element
            elif isinstance(current, StructType):
                field_index = self._value(index, frame)
                address = (address + current.field_offset(field_index)) & _MASK64
                current = current.field_type(field_index)
            else:
                raise RuntimeError(f"malformed gep: {inst}")
        return address

    def _binop(self, inst: BinOp, frame: Dict[Value, int]) -> int:
        vtype = inst.type
        lhs = self._value(inst.lhs, frame)
        rhs = self._value(inst.rhs, frame)
        op = inst.op
        if isinstance(vtype, IntType):
            wrap = vtype.wrap
            signed = vtype.to_signed
            bits = vtype.bits
        else:  # pointer arithmetic through int ops on addresses
            wrap = lambda v: v & _MASK64  # noqa: E731
            signed = I64.to_signed
            bits = 64
        if op == "add":
            return wrap(lhs + rhs)
        if op == "sub":
            return wrap(lhs - rhs)
        if op == "mul":
            return wrap(lhs * rhs)
        if op == "sdiv":
            a, b = signed(lhs), signed(rhs)
            if b == 0:
                raise MemoryFault(0, 0, "integer divide by zero")
            return wrap(int(a / b))
        if op == "srem":
            a, b = signed(lhs), signed(rhs)
            if b == 0:
                raise MemoryFault(0, 0, "integer remainder by zero")
            return wrap(a - int(a / b) * b)
        if op == "and":
            return wrap(lhs & rhs)
        if op == "or":
            return wrap(lhs | rhs)
        if op == "xor":
            return wrap(lhs ^ rhs)
        if op == "shl":
            return wrap(lhs << (rhs % bits))
        if op == "ashr":
            return wrap(signed(lhs) >> (rhs % bits))
        if op == "lshr":
            return wrap(lhs >> (rhs % bits))
        raise RuntimeError(f"unknown binop {op}")

    def _icmp(self, inst: ICmp, frame: Dict[Value, int]) -> int:
        lhs = self._value(inst.lhs, frame)
        rhs = self._value(inst.rhs, frame)
        vtype = inst.lhs.type
        if isinstance(vtype, IntType):
            slhs, srhs = vtype.to_signed(lhs), vtype.to_signed(rhs)
        else:
            slhs, srhs = lhs, rhs
        predicate = inst.predicate
        table: Dict[str, bool] = {
            "eq": lhs == rhs,
            "ne": lhs != rhs,
            "slt": slhs < srhs,
            "sle": slhs <= srhs,
            "sgt": slhs > srhs,
            "sge": slhs >= srhs,
            "ult": lhs < rhs,
            "ule": lhs <= rhs,
            "ugt": lhs > rhs,
            "uge": lhs >= rhs,
        }
        return 1 if table[predicate] else 0

    def _cast(self, inst: Cast, frame: Dict[Value, int]) -> int:
        value = self._value(inst.value, frame)
        op = inst.op
        if op in ("trunc", "zext", "ptrtoint", "inttoptr", "bitcast"):
            if isinstance(inst.type, IntType):
                return inst.type.wrap(value)
            return value & _MASK64
        if op == "sext":
            src = inst.value.type
            if isinstance(src, IntType):
                signed = src.to_signed(value)
            else:
                signed = value
            if isinstance(inst.type, IntType):
                return inst.type.wrap(signed)
            return signed & _MASK64
        raise RuntimeError(f"unknown cast {op}")
