"""The simulated CPU: an IR interpreter with a timing model and traps.

The CPU executes one module's IR against the byte-addressable
:class:`~repro.hardware.memory.Memory`.  It implements the semantics the
defense passes rely on:

- PAC sign/auth with trap-on-mismatch (:class:`PacAuthError`);
- ``sec.assert`` canary checks (:class:`CanaryTrap`);
- the DFI runtime definitions table (:class:`DfiTrap`);
- flat segments, so buffer overflows corrupt silently until a check fires.

Executions are deterministic given the seed, and every run accumulates
the counters the paper's evaluation reports: cycles, IPC, dynamic PA
instruction counts, input-channel invocations, allocator statistics.

Two interpreter backends execute the same semantics:

- ``decoded`` (the default): walks blocks pre-compiled by
  :mod:`repro.hardware.decoder` into bound handler closures -- operand
  kinds resolved once, constants folded, GEP strides pre-multiplied.
- ``reference``: the original ``isinstance``-dispatch interpreter,
  kept as the semantic oracle (see the golden-equivalence test suite).

Select with ``CPU(..., interpreter="reference")`` or the
``REPRO_INTERPRETER`` environment variable.

Passing ``profiler=ExecutionProfiler()`` attributes retired steps and
cycles per function (all tiers; counter deltas read once per dynamic
call) and per basic block (block tier only, one delta per block
execution).  The ``profiler is None`` check sits in :meth:`_call` and
in the block-driver selection -- never inside a per-instruction loop --
so an unprofiled run keeps the block tier's throughput.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from itertools import repeat
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

from ..ir.function import BasicBlock, Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    CondBranch,
    DfiChkDef,
    DfiSetDef,
    GetElementPtr,
    ICmp,
    Instruction,
    Jump,
    Load,
    PacAuth,
    PacSign,
    Phi,
    Ret,
    SecAssert,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import ArrayType, I64, IntType, PointerType, StructType
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from .allocator import OutOfMemoryError, SectionedHeap
from .blockc import BLOCK_RET, block_compile
from .cache import CacheModel
from .decoder import (
    DecodedBlock,
    _DECODED_MODULES,
    _fingerprint as _module_fingerprint,
    compute_global_layout,
    decode_module,
)
from .errors import (
    DFI_EXTERNAL_WRITER,
    CanaryTrap,
    DfiTrap,
    NullPointerTrap,
    ProgramExit,
    SectionTrap,
    SecurityTrap,
    StepLimitExceeded,
    UnknownExternalError,
    UnknownInterpreterError,
)
from .tracec import trace_compile
from .libc import LIBRARY
from .memory import GLOBAL_BASE, Memory, MemoryFault, STACK_BASE
from .pac import PacAuthError, PointerAuthentication
from .rng import CanaryRng
from .timing import DEFAULT_COSTS, TimingModel

_MASK64 = (1 << 64) - 1

#: Interpreter backends accepted by :class:`CPU`.
INTERPRETERS = ("decoded", "reference", "block", "trace")

#: Shared infinite default-writer iterator for bulk shadow lookups
#: (``map`` stops at the shortest input, so sharing one is safe).
_EXTERNAL = repeat(DFI_EXTERNAL_WRITER)


def _module_meta(module: Module) -> tuple:
    """Per-module interpreter metadata, cached on the module.

    ``(fingerprint, dfi_active, frame_plans)`` -- whether any function
    carries DFI instrumentation (a whole-module instruction scan), and
    the shared per-function frame-layout plan cache, both of which are
    pure functions of the IR and therefore safe to share across every
    CPU instance running the module.  Guarded by the same structural
    fingerprint as the decode cache and dropped by the same
    invalidation hook (``_cpu_meta`` is in ``_CACHE_ATTRS``).
    """
    fingerprint = _module_fingerprint(module)
    cached = getattr(module, "_cpu_meta", None)
    if cached is not None and cached[0] == fingerprint:
        return cached
    dfi_active = any(
        isinstance(inst, (DfiSetDef, DfiChkDef))
        for function in module.defined_functions()
        for inst in function.instructions()
    )
    meta = (fingerprint, dfi_active, {})
    setattr(module, "_cpu_meta", meta)
    _DECODED_MODULES.add(module)
    return meta


class DfiShadow:
    """The DFI runtime definitions table, tracked at byte granularity.

    Backed by a plain dict but updated and checked with bulk range
    operations (``dict.fromkeys``/``update`` and a set-containment fast
    path) instead of per-byte Python loops -- ``memcpy``-style external
    writes touch hundreds of bytes per call.
    """

    __slots__ = ("_map", "fault_hook")

    def __init__(self):
        self._map: Dict[int, int] = {}
        #: optional fault injector (see :mod:`repro.robustness.faults`);
        #: when set, instrumented ``dfi.setdef`` writer ids pass through
        #: ``fault_hook.on_dfi_setdef(address, size, def_id)`` -- the
        #: external-writer id is exempt so library writes stay benign
        self.fault_hook = None

    def set_range(self, address: int, size: int, def_id: int) -> None:
        """Record ``def_id`` as the last writer of ``size`` bytes."""
        if self.fault_hook is not None and def_id != DFI_EXTERNAL_WRITER:
            def_id = self.fault_hook.on_dfi_setdef(address, size, def_id)
        shadow = self._map
        if size == 1:
            shadow[address] = def_id
        elif size == 8:
            # Unrolled stores beat the iterator-pair bulk update ~3x at
            # pointer width, the dominant instrumented access size.
            shadow[address] = def_id
            shadow[address + 1] = def_id
            shadow[address + 2] = def_id
            shadow[address + 3] = def_id
            shadow[address + 4] = def_id
            shadow[address + 5] = def_id
            shadow[address + 6] = def_id
            shadow[address + 7] = def_id
        else:
            shadow.update(zip(range(address, address + size), repeat(def_id)))

    def check_range(
        self, address: int, size: int, allowed: frozenset
    ) -> Optional[Tuple[int, int]]:
        """First ``(address, writer)`` violating ``allowed``, or ``None``."""
        get = self._map.get
        external = DFI_EXTERNAL_WRITER
        if size == 1:
            writer = get(address, external)
            return None if writer in allowed else (address, writer)
        # Passing checks (the overwhelmingly common case) resolve without
        # a Python-level loop: pointer-width checks unroll into straight
        # membership tests (~2x faster than building the writer set),
        # other sizes collect the distinct writers in one C-level sweep.
        # Only a failing check pays the per-byte scan to locate the
        # first violating address.
        if size == 8:
            if (
                get(address, external) in allowed
                and get(address + 1, external) in allowed
                and get(address + 2, external) in allowed
                and get(address + 3, external) in allowed
                and get(address + 4, external) in allowed
                and get(address + 5, external) in allowed
                and get(address + 6, external) in allowed
                and get(address + 7, external) in allowed
            ):
                return None
        elif set(map(get, range(address, address + size), _EXTERNAL)) <= allowed:
            return None
        for byte_address in range(address, address + size):
            writer = get(byte_address, DFI_EXTERNAL_WRITER)
            if writer not in allowed:
                return byte_address, writer
        return None

    def check_batch(
        self, specs: tuple, frame: Dict[Value, int]
    ) -> Optional[Tuple[int, int, int, frozenset]]:
        """Check a run of same-block ``dfi.chkdef`` ops in one call.

        ``specs`` is a tuple of ``(is_const, pointer, size, allowed)``
        entries (pointer is a folded address or a frame key); the block
        tier emits one batched call per run instead of one call per op.
        Returns ``(index, address, writer, allowed)`` for the first
        violating element, or ``None``.
        """
        get = self._map.get
        external = DFI_EXTERNAL_WRITER
        index = 0
        for constant, pointer, size, allowed in specs:
            address = pointer if constant else frame[pointer]
            if size == 1:
                writer = get(address, external)
                if writer not in allowed:
                    return index, address, writer, allowed
            elif size == 8 and (
                get(address, external) in allowed
                and get(address + 1, external) in allowed
                and get(address + 2, external) in allowed
                and get(address + 3, external) in allowed
                and get(address + 4, external) in allowed
                and get(address + 5, external) in allowed
                and get(address + 6, external) in allowed
                and get(address + 7, external) in allowed
            ):
                pass
            elif (
                size == 8
                or not set(map(get, range(address, address + size), _EXTERNAL))
                <= allowed
            ):
                for byte_address in range(address, address + size):
                    writer = get(byte_address, external)
                    if writer not in allowed:
                        return index, byte_address, writer, allowed
            index += 1
        return None

    # dict-like helpers kept for tests and debugging
    def get(self, address: int, default: int = DFI_EXTERNAL_WRITER) -> int:
        return self._map.get(address, default)

    def __getitem__(self, address: int) -> int:
        return self._map[address]

    def __setitem__(self, address: int, def_id: int) -> None:
        self._map[address] = def_id

    def __contains__(self, address: int) -> bool:
        return address in self._map

    def __len__(self) -> int:
        return len(self._map)


@dataclass
class ExecutionResult:
    """Everything a benchmark needs to know about one execution."""

    status: str
    return_value: Optional[int]
    cycles: float
    instructions: int
    ipc: float
    opcode_counts: Dict[str, int]
    output: bytes
    steps: int
    trap: Optional[BaseException] = None
    ic_calls: Dict[str, int] = field(default_factory=dict)
    pac_sign_count: int = 0
    pac_auth_count: int = 0
    isolated_allocations: int = 0
    #: cache statistics (zero unless the CPU was given a CacheModel)
    cache_hits: int = 0
    cache_misses: int = 0
    #: interpreter throughput: wall-clock seconds of this run
    wall_seconds: float = 0.0
    #: wall-clock seconds spent decoding the module for this run
    #: (0.0 on a decode-cache hit or under the reference interpreter)
    decode_seconds: float = 0.0
    #: which interpreter backend produced this result
    interpreter: str = "decoded"

    @property
    def cache_miss_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_misses / total if total else 0.0

    @property
    def steps_per_second(self) -> float:
        """Dynamic IR steps retired per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.steps / self.wall_seconds

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def detected(self) -> bool:
        """True when a defense mechanism fired."""
        return self.status in (
            "pac_trap",
            "canary_trap",
            "dfi_trap",
            "section_trap",
        )

    @property
    def pa_dynamic(self) -> int:
        """Dynamically executed ARM-PA instructions."""
        return self.opcode_counts.get("pac.sign", 0) + self.opcode_counts.get(
            "pac.auth", 0
        )


class CPU:
    """Interpreter for one module.  Construct fresh per execution run."""

    def __init__(
        self,
        module: Module,
        seed: int = 2024,
        attack: Optional[object] = None,
        max_steps: int = 20_000_000,
        heap_capacity: int = 8 * 1024 * 1024,
        cache: Optional[CacheModel] = None,
        interpreter: Optional[str] = None,
        profiler: Optional[object] = None,
        trace_profile: Optional[Dict[str, float]] = None,
    ):
        self.module = module
        #: optional :class:`repro.observability.ExecutionProfiler`
        self.profiler = profiler
        self.memory = Memory()
        self.pac = PointerAuthentication(seed)
        self.rng = CanaryRng(seed ^ 0xCA11A57)
        self.heap = SectionedHeap(self.memory, heap_capacity)
        self.timing = TimingModel()
        self.cache = cache
        self.attack = attack
        self.max_steps = max_steps
        self.steps = 0
        self.call_depth = 0
        self.max_call_depth = 256
        self.stack_top = STACK_BASE + 64
        self.input_queue: Deque[bytes] = deque()
        self.output: List[bytes] = []
        self.ic_calls: Dict[str, int] = {}
        self.global_addresses: Dict[str, int] = {}
        #: live call frames, innermost last: (function, value->int map)
        self.frames: List[Tuple[Function, Dict[Value, int]]] = []
        #: per-frame alloca name -> address index, parallel to ``frames``
        self.frame_slots: List[Dict[str, int]] = []
        meta = _module_meta(module)
        #: per-function frame layout plans (relative offsets), built
        #: lazily and shared across CPU instances via the module cache
        self._frame_plans: Dict[Function, tuple] = meta[2]
        self.dfi_shadow = DfiShadow()
        self.dfi_active = meta[1]
        #: ``call_fault_hook.on_call(cpu, function, args)`` -- the chaos
        #: injector's indirect-call corruption point; may return a
        #: different defined :class:`Function` to bend control flow to.
        self.call_fault_hook = None
        if interpreter is None:
            interpreter = os.environ.get("REPRO_INTERPRETER", "decoded")
        if interpreter not in INTERPRETERS:
            raise UnknownInterpreterError(
                f"unknown interpreter {interpreter!r}; expected one of {INTERPRETERS}"
            )
        self.interpreter = interpreter
        self.decode_seconds = 0.0
        self._decoded = None
        self._block = None
        if interpreter == "decoded":
            self._decoded, self.decode_seconds = decode_module(module)
        elif interpreter == "block":
            # The block tier compiles from the decoded program and falls
            # back to it whenever batched accounting cannot be trusted
            # (non-default costs or issue width, step-limit crossings).
            self._decoded, decode_seconds = decode_module(module)
            self._block, compile_seconds = block_compile(module)
            self.decode_seconds = decode_seconds + compile_seconds
        elif interpreter == "trace":
            # The trace tier reuses the block drivers (RegionCode mirrors
            # BlockCode), so it plugs into the same dispatch slot and
            # inherits the same decoded-tier fallbacks.  ``trace_profile``
            # is the warmup run's per-block execution counts; without it,
            # regions are selected statically.
            self._decoded, decode_seconds = decode_module(module)
            self._block, compile_seconds = trace_compile(module, trace_profile)
            self.decode_seconds = decode_seconds + compile_seconds
        self._refresh_block_fast()
        self._layout_globals()

    def _refresh_block_fast(self) -> None:
        """Cache whether the block/trace program's batched accounting
        matches this CPU's timing model.

        The comparison includes a dict equality over the full cost
        table, far too expensive for every ``_call``; tests that
        customise ``timing.costs``/``issue_width`` mutate them between
        construction and :meth:`run`, so recomputing at both points
        keeps the documented fallback-to-decoded contract.
        """
        block = self._block
        self._block_fast = (
            block is not None
            and self.timing.issue_width == block.issue_width
            and self.timing.costs == DEFAULT_COSTS
        )

    # -- setup -----------------------------------------------------------------

    def _layout_globals(self) -> None:
        self.global_addresses = compute_global_layout(self.module)
        for name, gvar in self.module.globals.items():
            self._write_initializer(self.global_addresses[name], gvar)

    def _write_initializer(self, address: int, gvar: GlobalVariable) -> None:
        init = gvar.initializer
        if init is None:
            return
        if isinstance(init, bytes):
            self.memory.write_bytes(address, init)
        elif isinstance(init, int):
            self.memory.write_int(address, init, max(1, gvar.value_type.size))
        elif isinstance(init, (list, tuple)):
            elem_size = (
                gvar.value_type.element.size
                if isinstance(gvar.value_type, ArrayType)
                else 8
            )
            for i, value in enumerate(init):
                self.memory.write_int(address + i * elem_size, value, elem_size)
        else:
            raise TypeError(f"unsupported initializer for @{gvar.name}: {init!r}")

    # -- hooks used by the libc models ---------------------------------------------

    def take_input(self, channel: str, args: Sequence[int]) -> bytes:
        """External input for a read-style IC: attack payload, queued
        benign input, or empty."""
        payload = self.attack_payload(channel, args)
        if payload is not None:
            return payload
        if self.input_queue:
            return self.input_queue.popleft()
        return b""

    def attack_payload(self, channel: str, args: Sequence[int]) -> Optional[bytes]:
        """Ask the attack controller (if any) for a payload at this IC."""
        if self.attack is None:
            return None
        return self.attack.payload_for(self, channel, args)  # type: ignore[attr-defined]

    def stack_slot_address(self, name: str) -> Optional[int]:
        """Address of the named alloca in the innermost frame holding it.

        This is the adaptive attacker's eye: the threat model (§2.5)
        grants the attacker full knowledge of the binary's layout, so
        exploit scripts compute victim offsets from live addresses
        rather than hard-coding them.  Each frame indexes its allocas by
        name at layout time, so the lookup is a dict probe per live
        frame instead of a scan of every frame value.
        """
        for slots in reversed(self.frame_slots):
            address = slots.get(name)
            if address is not None:
                return address
        return None

    def external_write(self, address: int, data: bytes) -> None:
        """A library-side memory write (the IC write itself)."""
        self.memory.write_bytes(address, data)
        if self.dfi_active and data:
            self.dfi_shadow.set_range(address, len(data), DFI_EXTERNAL_WRITER)

    # -- public API -------------------------------------------------------------

    def run(
        self,
        function_name: str = "main",
        args: Sequence[int] = (),
        inputs: Optional[Sequence[bytes]] = None,
    ) -> ExecutionResult:
        """Execute ``function_name`` to completion or trap."""
        self._refresh_block_fast()
        if inputs:
            self.input_queue.extend(inputs)
        status = "ok"
        return_value: Optional[int] = None
        trap: Optional[BaseException] = None
        start = time.perf_counter()
        try:
            return_value = self._call(self.module.get_function(function_name), list(args))
        except PacAuthError as exc:
            status, trap = "pac_trap", exc
        except CanaryTrap as exc:
            status, trap = "canary_trap", exc
        except DfiTrap as exc:
            status, trap = "dfi_trap", exc
        except SectionTrap as exc:
            status, trap = "section_trap", exc
        except (MemoryFault, NullPointerTrap) as exc:
            status, trap = "fault", exc
        except OutOfMemoryError as exc:
            status, trap = "oom", exc
        except StepLimitExceeded as exc:
            status, trap = "limit", exc
        except ProgramExit as exc:
            return_value = exc.code
        wall = time.perf_counter() - start
        if trap is not None:
            # Trap-only instrumentation: nothing here runs on the hot
            # ok path.  Imported lazily so the hardware layer has no
            # module-level dependency on observability.
            from ..observability import current_tracer

            current_tracer().instant(
                f"trap.{status}", "exec", detail=str(trap)
            )
            if self.profiler is not None:
                self.profiler.trap(status, str(trap))
        return ExecutionResult(
            status=status,
            return_value=return_value,
            cycles=self.timing.cycles,
            instructions=self.timing.instructions,
            ipc=self.timing.ipc,
            # Zero entries mean "never executed" and must read as absent:
            # the trace tier's batched tally flush adds += 0 for region
            # chunks a trap or side exit skipped entirely.
            opcode_counts={
                name: count
                for name, count in self.timing.opcode_counts.items()
                if count
            },
            output=b"".join(self.output),
            steps=self.steps,
            trap=trap,
            ic_calls=dict(self.ic_calls),
            pac_sign_count=self.pac.sign_count,
            pac_auth_count=self.pac.auth_count,
            isolated_allocations=self.heap.isolated_calls,
            cache_hits=self.cache.hits if self.cache else 0,
            cache_misses=self.cache.misses if self.cache else 0,
            wall_seconds=wall,
            decode_seconds=self.decode_seconds,
            interpreter=self.interpreter,
        )

    # -- execution engine -----------------------------------------------------------

    def _call(self, function: Function, args: List[int]) -> Optional[int]:
        if function.is_declaration:
            return self._call_external(function, args)
        if self.call_fault_hook is not None:
            # Defined-function calls only: externals dispatch straight to
            # _call_external in the block/trace tiers, so hooking after
            # the declaration check keeps the event stream identical
            # across all interpreter tiers.
            function = self.call_fault_hook.on_call(self, function, args)
        self.call_depth += 1
        if self.call_depth > self.max_call_depth:
            self.call_depth -= 1
            raise MemoryFault(self.stack_top, 0, "stack overflow")
        saved_top = self.stack_top
        profiler = self.profiler
        if profiler is not None:
            profiler.enter(function.name, self.steps, self.timing.cycles)
        try:
            frame: Dict[Value, int] = {
                argument: value & _MASK64
                for argument, value in zip(function.args, args)
            }
            self.frame_slots.append(self._layout_frame(function, frame))
            self.frames.append((function, frame))
            try:
                # Dispatch inline rather than via _interpret: recursion
                # in the simulated program recurses through here, and
                # the simulated 256-frame stack limit must fire before
                # Python's own recursion limit does.
                if self._block_fast:
                    bentry = self._block.functions.get(function)
                    if bentry is not None:
                        if profiler is not None:
                            return self._interpret_block_profiled(
                                bentry, frame
                            )
                        return self._interpret_block(bentry, frame)
                decoded = self._decoded
                if decoded is not None:
                    entry = decoded.functions.get(function)
                    if entry is not None:
                        return self._interpret_decoded(entry, frame)
                return self._interpret_reference(function, frame)
            finally:
                self.frames.pop()
                self.frame_slots.pop()
        finally:
            self.stack_top = saved_top
            self.call_depth -= 1
            if profiler is not None:
                profiler.exit(self.steps, self.timing.cycles)

    def _layout_frame(self, function: Function, frame: Dict[Value, int]) -> Dict[str, int]:
        """Assign frame addresses to allocas in *program order*.

        Program order is address order: Pythia's stack re-layout pass
        reorders allocas precisely to control which variables sit next
        to each other in memory.  Returns the name -> address index used
        by :meth:`stack_slot_address`.
        """
        plan = self._frame_plans.get(function)
        if plan is None:
            offset = 0
            rel: List[Tuple[Alloca, int]] = []
            named: Dict[str, int] = {}
            for alloca in function.allocas():
                alignment = max(1, alloca.allocated_type.alignment)
                offset = (offset + alignment - 1) // alignment * alignment
                rel.append((alloca, offset))
                if alloca.name not in named:
                    named[alloca.name] = offset
                offset += max(1, alloca.allocated_type.size)
            plan = (tuple(rel), tuple(named.items()), (offset + 15) // 16 * 16)
            self._frame_plans[function] = plan
        base = (self.stack_top + 15) // 16 * 16
        for alloca, offset in plan[0]:
            frame[alloca] = base + offset
        slots = {name: base + offset for name, offset in plan[1]}
        self.stack_top = base + plan[2]
        return slots

    def _call_external(self, function: Function, args: List[int]) -> Optional[int]:
        lib = LIBRARY.get(function.name)
        if lib is None:
            raise UnknownExternalError(function.name)
        if lib.ic_kind is not None:
            self.ic_calls[function.name] = self.ic_calls.get(function.name, 0) + 1
        result = lib.handler(self, args)
        return result if result is None else result & _MASK64

    def _interpret(self, function: Function, frame: Dict[Value, int]) -> Optional[int]:
        decoded = self._decoded
        if decoded is not None:
            entry = decoded.functions.get(function)
            if entry is not None:
                return self._interpret_decoded(entry, frame)
        return self._interpret_reference(function, frame)

    # -- block-compiled backend --------------------------------------------------

    def _interpret_block(self, entry, frame: Dict[Value, int]) -> Optional[int]:
        # Direct-threaded driver: each generated block function applies
        # its own batched accounting *and* the phi routing of the edge
        # it takes (the predecessor knows which edge that is), then
        # returns the successor's pre-built (BlockCode, None) pair; this
        # loop only guards the step limit and dispatches.  A block whose
        # execution could cross the limit is delegated to the decoded
        # loop -- with no ``previous``, since any pending phi edge has
        # already been applied inline -- which raises StepLimitExceeded
        # at exactly the right op.
        timing = self.timing
        counts = timing.opcode_counts
        max_steps = self.max_steps
        pair = entry.self_pair
        while True:
            code = pair[0]
            if self.steps + code.nsteps > max_steps:
                return self._interpret_decoded(code.dblock, frame)
            pair = code.fn(self, frame, timing, counts)
            if pair[0] is BLOCK_RET:
                return pair[1]

    def _interpret_block_profiled(self, entry, frame: Dict[Value, int]) -> Optional[int]:
        # The profiled twin of _interpret_block: identical dispatch, but
        # the architectural counters are read around each generated
        # block function and the delta attributed to that block -- still
        # one batched attribution per block execution, never per op.  A
        # block containing a call attributes the callee's retirement
        # inclusively (the callee's own blocks are attributed too).
        timing = self.timing
        counts = timing.opcode_counts
        max_steps = self.max_steps
        block_hook = self.profiler.block
        pair = entry.self_pair
        while True:
            code = pair[0]
            if self.steps + code.nsteps > max_steps:
                return self._interpret_decoded(code.dblock, frame)
            steps0 = self.steps
            cycles0 = timing.cycles
            pair = code.fn(self, frame, timing, counts)
            block_hook(code.label, self.steps - steps0, timing.cycles - cycles0)
            if pair[0] is BLOCK_RET:
                return pair[1]

    # -- decoded backend ---------------------------------------------------------

    def _interpret_decoded(
        self,
        block: DecodedBlock,
        frame: Dict[Value, int],
        previous: Optional[DecodedBlock] = None,
    ) -> Optional[int]:
        # The per-step timing charge is inlined below: the same
        # arithmetic as TimingModel.charge, but against local mirrors of
        # the three hottest counters (dynamic steps, instruction count,
        # cheap-op run length).  Nothing outside the interpreter loops
        # touches those three -- library models only ever call
        # charge_cycles/charge_libcall, which update cycles and
        # opcode_counts directly -- so the mirrors need syncing only
        # around ops that may re-enter an interpreter loop (calls and
        # fallbacks, pre-flagged by the decoder) and on the way out.
        timing = self.timing
        costs_get = timing.costs.get
        counts = timing.opcode_counts
        counts_get = counts.get
        issue_width = timing.issue_width
        # decoded ops carry their DEFAULT_COSTS cost; only trust it
        # while this timing model still uses the default table
        default_costs = timing.costs == DEFAULT_COSTS
        max_steps = self.max_steps
        steps = self.steps
        instructions = timing.instructions
        cheap = timing._cheap_run
        in_call = False
        try:
            while True:
                if previous is not None and block.phi_routes:
                    # Routes exist for every decoded edge, and control
                    # only arrives here along decoded edges.
                    route = block.phi_routes[previous]
                    if route.__class__ is str:
                        raise KeyError(route)
                    if route:
                        # Parallel evaluation: read all incoming values
                        # before writing any.
                        staged = []
                        stage = staged.append
                        cost = costs_get("phi", 1)
                        for _, is_const, payload in route:
                            instructions += 1
                            counts["phi"] = counts_get("phi", 0) + 1
                            if cost <= 1:
                                cheap += 1
                                if cheap >= issue_width:
                                    timing.cycles += 1
                                    cheap = 0
                            else:
                                timing.cycles += cost
                                cheap = 0
                            stage(payload if is_const else frame[payload])
                        for entry, value in zip(route, staged):
                            frame[entry[0]] = value
                for opname, cost, impure, op in block.ops:
                    steps += 1
                    if steps > max_steps:
                        raise StepLimitExceeded(f"exceeded {max_steps} steps")
                    instructions += 1
                    counts[opname] = counts_get(opname, 0) + 1
                    if not default_costs:
                        cost = costs_get(opname, 1)
                    if cost <= 1:
                        cheap += 1
                        if cheap >= issue_width:
                            timing.cycles += 1
                            cheap = 0
                    else:
                        timing.cycles += cost
                        cheap = 0
                    if impure:
                        # Sync the mirrors so the callee's interpreter
                        # loop continues from the right counts; while
                        # in_call is set the callee owns the counters,
                        # and the finally below must not clobber them.
                        self.steps = steps
                        timing.instructions = instructions
                        timing._cheap_run = cheap
                        in_call = True
                        op(self, frame)
                        in_call = False
                        steps = self.steps
                        instructions = timing.instructions
                        cheap = timing._cheap_run
                    else:
                        op(self, frame)
                term = block.term
                kind = term[0]
                if kind == "fall":
                    source = block.source
                    owner = source.parent.name if source.parent is not None else "?"
                    raise RuntimeError(
                        f"block %{source.name} in @{owner} fell through"
                    )
                steps += 1
                if steps > max_steps:
                    raise StepLimitExceeded(f"exceeded {max_steps} steps")
                instructions += 1
                if kind == "jump" or kind == "br":
                    counts["br"] = counts_get("br", 0) + 1
                    cost = costs_get("br", 1)
                    if cost <= 1:
                        cheap += 1
                        if cheap >= issue_width:
                            timing.cycles += 1
                            cheap = 0
                    else:
                        timing.cycles += cost
                        cheap = 0
                    if kind == "jump":
                        previous, block = block, term[1]
                    else:
                        is_const, payload = term[1]
                        taken = (payload if is_const else frame[payload]) & 1
                        previous, block = block, (term[2] if taken else term[3])
                    continue
                # kind == "ret"
                counts["ret"] = counts_get("ret", 0) + 1
                cost = costs_get("ret", 1)
                if cost <= 1:
                    cheap += 1
                    if cheap >= issue_width:
                        timing.cycles += 1
                        cheap = 0
                else:
                    timing.cycles += cost
                    cheap = 0
                spec = term[1]
                if spec is None:
                    return None
                is_const, payload = spec
                return payload if is_const else frame[payload]
        finally:
            if not in_call:
                self.steps = steps
                timing.instructions = instructions
                timing._cheap_run = cheap

    # -- reference backend -------------------------------------------------------

    def _interpret_reference(
        self, function: Function, frame: Dict[Value, int]
    ) -> Optional[int]:
        block = function.entry_block
        previous: Optional[BasicBlock] = None
        while True:
            if previous is not None:
                self._run_phis(block, previous, frame)
            start = block.first_non_phi_index()
            next_block: Optional[BasicBlock] = None
            for inst in block.instructions[start:]:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise StepLimitExceeded(f"exceeded {self.max_steps} steps")
                self.timing.charge(inst.opcode)
                if isinstance(inst, Ret):
                    if inst.value is None:
                        return None
                    return self._value(inst.value, frame)
                if isinstance(inst, Jump):
                    next_block = inst.target
                    break
                if isinstance(inst, CondBranch):
                    taken = self._value(inst.condition, frame) & 1
                    next_block = inst.true_block if taken else inst.false_block
                    break
                self._execute(inst, frame)
            if next_block is None:
                raise RuntimeError(
                    f"block %{block.name} in @{function.name} fell through"
                )
            previous, block = block, next_block

    def _run_phis(
        self, block: BasicBlock, previous: BasicBlock, frame: Dict[Value, int]
    ) -> None:
        phis = block.phis
        if not phis:
            return
        # Parallel evaluation: read all incoming values before writing any.
        staged: List[Tuple[Phi, int]] = []
        for phi in phis:
            self.timing.charge("phi")
            staged.append((phi, self._value(phi.incoming_for_block(previous), frame)))
        for phi, value in staged:
            frame[phi] = value

    def _cache_access(self, address: int, size: int) -> None:
        if self.cache is None:
            return
        misses = self.cache.access(address, size)
        if misses:
            self.timing.charge_cycles(misses * self.cache.miss_penalty, "llc.miss")

    # -- operand evaluation ------------------------------------------------------------

    def _value(self, value: Value, frame: Dict[Value, int]) -> int:
        if isinstance(value, Constant):
            return value.value & _MASK64
        if isinstance(value, GlobalVariable):
            return self.global_addresses[value.name]
        if isinstance(value, UndefValue):
            return 0
        try:
            return frame[value]
        except KeyError:
            raise RuntimeError(f"use of unevaluated value %{value.name}") from None

    # -- instruction semantics ------------------------------------------------------------

    def _execute(self, inst: Instruction, frame: Dict[Value, int]) -> None:
        if isinstance(inst, Alloca):
            # Address already assigned by _layout_frame.
            return
        if isinstance(inst, Load):
            address = self._value(inst.pointer, frame)
            if address == 0:
                raise NullPointerTrap(f"load through null in {inst}")
            size = max(1, inst.type.size)
            self._cache_access(address, size)
            frame[inst] = self.memory.read_int(address, size)
            return
        if isinstance(inst, Store):
            address = self._value(inst.pointer, frame)
            if address == 0:
                raise NullPointerTrap(f"store through null in {inst}")
            size = max(1, inst.value.type.size)
            self._cache_access(address, size)
            self.memory.write_int(address, self._value(inst.value, frame), size)
            return
        if isinstance(inst, GetElementPtr):
            frame[inst] = self._gep_address(inst, frame)
            return
        if isinstance(inst, BinOp):
            frame[inst] = self._binop(inst, frame)
            return
        if isinstance(inst, ICmp):
            frame[inst] = self._icmp(inst, frame)
            return
        if isinstance(inst, Cast):
            frame[inst] = self._cast(inst, frame)
            return
        if isinstance(inst, Select):
            cond = self._value(inst.condition, frame) & 1
            chosen = inst.true_value if cond else inst.false_value
            frame[inst] = self._value(chosen, frame)
            return
        if isinstance(inst, Call):
            result = self._call(
                inst.callee, [self._value(a, frame) for a in inst.args]
            )
            if not inst.type.is_void:
                frame[inst] = 0 if result is None else result
            return
        if isinstance(inst, PacSign):
            value = self._value(inst.value, frame)
            modifier = self._value(inst.modifier, frame)
            frame[inst] = self.pac.sign(value, modifier, inst.key_id)
            return
        if isinstance(inst, PacAuth):
            value = self._value(inst.value, frame)
            modifier = self._value(inst.modifier, frame)
            frame[inst] = self.pac.auth(value, modifier, inst.key_id)
            return
        if isinstance(inst, SecAssert):
            if not (self._value(inst.condition, frame) & 1):
                raise CanaryTrap(f"{inst.kind} check failed")
            return
        if isinstance(inst, DfiSetDef):
            address = self._value(inst.pointer, frame)
            self.dfi_shadow.set_range(address, inst.size, inst.def_id)
            return
        if isinstance(inst, DfiChkDef):
            address = self._value(inst.pointer, frame)
            violation = self.dfi_shadow.check_range(address, inst.size, inst.allowed)
            if violation is not None:
                raise DfiTrap(violation[0], violation[1], inst.allowed)
            return
        raise RuntimeError(f"cannot execute instruction: {inst}")

    def _gep_address(self, inst: GetElementPtr, frame: Dict[Value, int]) -> int:
        address = self._value(inst.pointer, frame)
        pointee = inst.pointer.type.pointee  # type: ignore[union-attr]
        first = I64.to_signed(self._value(inst.indices[0], frame))
        address = (address + first * max(1, pointee.size)) & _MASK64
        current = pointee
        for index in inst.indices[1:]:
            if isinstance(current, ArrayType):
                step = I64.to_signed(self._value(index, frame))
                address = (address + step * max(1, current.element.size)) & _MASK64
                current = current.element
            elif isinstance(current, StructType):
                field_index = self._value(index, frame)
                address = (address + current.field_offset(field_index)) & _MASK64
                current = current.field_type(field_index)
            else:
                raise RuntimeError(f"malformed gep: {inst}")
        return address

    def _binop(self, inst: BinOp, frame: Dict[Value, int]) -> int:
        vtype = inst.type
        lhs = self._value(inst.lhs, frame)
        rhs = self._value(inst.rhs, frame)
        op = inst.op
        if isinstance(vtype, IntType):
            wrap = vtype.wrap
            signed = vtype.to_signed
            bits = vtype.bits
        else:  # pointer arithmetic through int ops on addresses
            wrap = lambda v: v & _MASK64  # noqa: E731
            signed = I64.to_signed
            bits = 64
        if op == "add":
            return wrap(lhs + rhs)
        if op == "sub":
            return wrap(lhs - rhs)
        if op == "mul":
            return wrap(lhs * rhs)
        if op == "sdiv":
            a, b = signed(lhs), signed(rhs)
            if b == 0:
                raise MemoryFault(0, 0, "integer divide by zero")
            return wrap(int(a / b))
        if op == "srem":
            a, b = signed(lhs), signed(rhs)
            if b == 0:
                raise MemoryFault(0, 0, "integer remainder by zero")
            return wrap(a - int(a / b) * b)
        if op == "and":
            return wrap(lhs & rhs)
        if op == "or":
            return wrap(lhs | rhs)
        if op == "xor":
            return wrap(lhs ^ rhs)
        if op == "shl":
            return wrap(lhs << (rhs % bits))
        if op == "ashr":
            return wrap(signed(lhs) >> (rhs % bits))
        if op == "lshr":
            return wrap(lhs >> (rhs % bits))
        raise RuntimeError(f"unknown binop {op}")

    def _icmp(self, inst: ICmp, frame: Dict[Value, int]) -> int:
        lhs = self._value(inst.lhs, frame)
        rhs = self._value(inst.rhs, frame)
        vtype = inst.lhs.type
        if isinstance(vtype, IntType):
            slhs, srhs = vtype.to_signed(lhs), vtype.to_signed(rhs)
        else:
            slhs, srhs = lhs, rhs
        predicate = inst.predicate
        table: Dict[str, bool] = {
            "eq": lhs == rhs,
            "ne": lhs != rhs,
            "slt": slhs < srhs,
            "sle": slhs <= srhs,
            "sgt": slhs > srhs,
            "sge": slhs >= srhs,
            "ult": lhs < rhs,
            "ule": lhs <= rhs,
            "ugt": lhs > rhs,
            "uge": lhs >= rhs,
        }
        return 1 if table[predicate] else 0

    def _cast(self, inst: Cast, frame: Dict[Value, int]) -> int:
        value = self._value(inst.value, frame)
        op = inst.op
        if op in ("trunc", "zext", "ptrtoint", "inttoptr", "bitcast"):
            if isinstance(inst.type, IntType):
                return inst.type.wrap(value)
            return value & _MASK64
        if op == "sext":
            src = inst.value.type
            if isinstance(src, IntType):
                signed = src.to_signed(value)
            else:
                signed = value
            if isinstance(inst.type, IntType):
                return inst.type.wrap(signed)
            return signed & _MASK64
        raise RuntimeError(f"unknown cast {op}")
