"""Pythia: Compiler-Guided Defense Against Non-Control Data Attacks.

A from-scratch Python reproduction of the ASPLOS 2024 system: a MiniC
compiler front-end, an LLVM-like SSA IR, the slicing and alias analyses
of §4.1, simulated ARM Pointer Authentication hardware with a sectioned
heap allocator, the three defense instrumentations (conservative CPA,
performance-aware Pythia, and the DFI baseline), attack scenarios, and
the full evaluation harness.

Quickstart::

    from repro import compile_source, protect, CPU

    module = compile_source(C_SOURCE)
    protected = protect(module, scheme="pythia")
    result = CPU(protected.module).run(inputs=[b"hello"])
    assert result.ok

See ``examples/`` for runnable end-to-end walkthroughs and
``benchmarks/`` for the scripts regenerating every table and figure of
the paper's evaluation.
"""

from .attacks import (
    AttackController,
    build_scenarios,
    overflow_payload,
    Scenario,
)
from .core import (
    DefenseConfig,
    ProtectionResult,
    SCHEMES,
    SecurityReport,
    VulnerabilityAnalysis,
    VulnerabilityReport,
    analyze_module,
    build_security_report,
    clone_module,
    protect,
    protect_all,
)
from .frontend import compile_source
from .hardware import (
    CPU,
    CanaryTrap,
    DfiTrap,
    ExecutionResult,
    MemoryFault,
    PacAuthError,
    PointerAuthentication,
)
from .ir import IRBuilder, Module, parse_module, print_module, verify_module
from .metrics import (
    attack_distance_row,
    branch_security_row,
    measure_module,
    measure_program,
)
from .perf import SuiteResult, run_suite
from .workloads import (
    ALL_PROFILES,
    BenchmarkProfile,
    generate_program,
    get_profile,
    run_nginx,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_PROFILES",
    "analyze_module",
    "attack_distance_row",
    "AttackController",
    "BenchmarkProfile",
    "branch_security_row",
    "build_scenarios",
    "build_security_report",
    "CanaryTrap",
    "clone_module",
    "compile_source",
    "CPU",
    "DefenseConfig",
    "DfiTrap",
    "ExecutionResult",
    "generate_program",
    "get_profile",
    "IRBuilder",
    "measure_module",
    "measure_program",
    "MemoryFault",
    "Module",
    "overflow_payload",
    "PacAuthError",
    "parse_module",
    "PointerAuthentication",
    "print_module",
    "protect",
    "protect_all",
    "ProtectionResult",
    "run_nginx",
    "run_suite",
    "Scenario",
    "SuiteResult",
    "SCHEMES",
    "SecurityReport",
    "verify_module",
    "VulnerabilityAnalysis",
    "VulnerabilityReport",
    "__version__",
]
