"""Program slicing: branch decomposition and input-channel construction.

This module implements the paper's two central analyses:

- **Branch decomposition** (Algorithm 1): the backward slice of a
  conditional branch's predicate, computed with a worklist over use-def
  chains, extended through memory via the alias analysis, and
  transitively through direct calls.  The result -- the *branch
  sub-variable set* -- is every program variable whose corruption could
  flip the branch.

- **Input-channel construction**: the forward slice of the variables an
  input channel writes, i.e. everything external input can reach.

Both slicers record the facts the evaluation needs: slice length (for
attack distance), pointer-arithmetic / field-access occurrences (where
DFI's reasoning terminates, §7), the input channels reached, and
whether the walk had to give up on complex interprocedural aliasing
(Pythia's own stated limitation, §6.2).

The DFI comparison baseline reuses the same machinery with
``stop_at_pointer_arithmetic=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    BinOp,
    Call,
    Cast,
    CondBranch,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import PointerType
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from .alias import AliasAnalysis, MemObject
from .callgraph import CallGraph
from .dataflow import MemoryDefUse
from .input_channels import InputChannelAnalysis, InputChannelSite


def dfi_hostile_gep(gep: GetElementPtr) -> bool:
    """True when DFI's static analysis cannot reason about this access.

    Field accesses defeat its field-insensitive points-to, and raw
    pointer arithmetic (a non-zero leading index on anything that is
    not a plain array parameter) produces pointers it cannot bound.
    Array indexing through a pointer *parameter* (``data[i]``) is the
    common analyzable case real DFI handles.
    """
    from ..ir.values import Argument

    if gep.is_field_access():
        return True
    first = gep.indices[0]
    if isinstance(first, Constant) and first.value == 0:
        return False
    return not isinstance(gep.pointer, Argument)


@dataclass
class BranchSlice:
    """The backward slice of one conditional branch (or, via
    :meth:`BackwardSlicer.slice_value`, of an arbitrary value, in which
    case ``branch`` is ``None``)."""

    branch: Optional[CondBranch]
    function: Function
    #: SSA instructions in the slice
    values: Set[Instruction] = field(default_factory=set)
    #: abstract memory objects (program variables) in the slice
    variables: Set[MemObject] = field(default_factory=set)
    #: input channels whose writes reach the slice, with traversal depth
    input_channels: List[Tuple[InputChannelSite, int]] = field(default_factory=list)
    has_pointer_arithmetic: bool = False
    has_field_access: bool = False
    #: the walk required reasoning through caller-opaque memory
    complex_interprocedural: bool = False
    #: instructions the slicer refused to cross (DFI termination points)
    terminated_at: List[Instruction] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Static slice length in IR instructions (the paper's unit of
        attack distance)."""
        return len(self.values)

    @property
    def reaches_input_channel(self) -> bool:
        return bool(self.input_channels)

    @property
    def ic_distance(self) -> Optional[int]:
        """Traversal depth (instructions) from branch to the nearest IC."""
        if not self.input_channels:
            return None
        return min(depth for _, depth in self.input_channels)

    def pointer_fraction(self) -> float:
        """Fraction of slice values that are pointer-typed (Fig. 7(a))."""
        if not self.values:
            return 0.0
        pointers = sum(
            1 for v in self.values if isinstance(v.type, PointerType)
        )
        return pointers / len(self.values)


class BackwardSlicer:
    """Branch decomposition (Algorithm 1) with pluggable termination.

    ``stop_at_pointer_arithmetic`` reproduces DFI: the walk refuses to
    cross getelementptrs that perform raw pointer arithmetic or
    field-insensitive struct access.  Pythia's slicer crosses them but
    records ``complex_interprocedural`` when it would have to reason
    about caller-opaque memory (argument-summary objects reached
    through double indirection).
    """

    def __init__(
        self,
        module: Module,
        alias: Optional[AliasAnalysis] = None,
        channels: Optional[InputChannelAnalysis] = None,
        memdu: Optional[MemoryDefUse] = None,
        callgraph: Optional[CallGraph] = None,
        stop_at_pointer_arithmetic: bool = False,
        max_visits: int = 20000,
    ):
        self.module = module
        self.alias = alias or AliasAnalysis(module)
        self.channels = channels or InputChannelAnalysis(module)
        self.memdu = memdu or MemoryDefUse(module, self.alias, self.channels)
        self.callgraph = callgraph or CallGraph(module)
        self.stop_at_pointer_arithmetic = stop_at_pointer_arithmetic
        self.max_visits = max_visits
        # Per-module call-site index, built once: slicing every branch of
        # a module used to re-scan ``channels.sites`` linearly per call.
        self._site_by_call: Dict[int, InputChannelSite] = {
            id(site.call): site for site in self.channels.sites
        }

    # -- public API -----------------------------------------------------------

    def slice_branch(self, branch: CondBranch) -> BranchSlice:
        """Compute the branch sub-variable set of ``branch``."""
        function = branch.function
        assert function is not None
        result = BranchSlice(branch=branch, function=function)
        self._walk(branch.condition, result)
        return result

    def slice_value(self, value: Value, function: Function) -> BranchSlice:
        """Backward slice of an arbitrary value."""
        result = BranchSlice(branch=None, function=function)
        self._walk(value, result)
        return result

    # -- the worklist walk ---------------------------------------------------------

    def _walk(self, root: Value, result: BranchSlice) -> None:
        worklist: List[Tuple[Value, int]] = [(root, 0)]
        visited: Set[int] = set()
        visits = 0
        while worklist:
            value, depth = worklist.pop()
            if id(value) in visited:
                continue
            visited.add(id(value))
            visits += 1
            if visits > self.max_visits:
                break
            self._visit(value, depth, result, worklist)

    def _push(
        self, worklist: List[Tuple[Value, int]], value: Value, depth: int
    ) -> None:
        if not isinstance(value, (Constant, UndefValue)):
            worklist.append((value, depth))

    def _visit(
        self,
        value: Value,
        depth: int,
        result: BranchSlice,
        worklist: List[Tuple[Value, int]],
    ) -> None:
        if isinstance(value, Argument):
            self._visit_argument(value, depth, result, worklist)
            return
        if isinstance(value, GlobalVariable):
            obj = self.alias.object_for(value)
            if obj is not None:
                self._visit_object(obj, depth, result, worklist)
            return
        if not isinstance(value, Instruction):
            return

        result.values.add(value)
        depth += 1

        if isinstance(value, Load):
            self._push(worklist, value.pointer, depth)
            self._visit_memory_read(value, depth, result, worklist)
            return
        if isinstance(value, GetElementPtr):
            if value.is_pointer_arithmetic():
                result.has_pointer_arithmetic = True
            if value.is_field_access():
                result.has_field_access = True
            if self.stop_at_pointer_arithmetic and dfi_hostile_gep(value):
                # DFI gives up here: it cannot reason about the computed
                # pointer, so the slice (and protection) ends.
                result.terminated_at.append(value)
                return
            for operand in value.operands:
                self._push(worklist, operand, depth)
            return
        if isinstance(value, Call):
            self._visit_call(value, depth, result, worklist)
            return
        if isinstance(value, (BinOp, ICmp, Cast, Select, Phi)):
            for operand in value.operands:
                self._push(worklist, operand, depth)
            return
        # Any other value-producing instruction: follow its operands.
        for operand in value.operands:
            self._push(worklist, operand, depth)

    # -- memory ----------------------------------------------------------------

    def _visit_memory_read(
        self,
        load: Load,
        depth: int,
        result: BranchSlice,
        worklist: List[Tuple[Value, int]],
    ) -> None:
        objects = self.alias.points_to(load.pointer)
        if not objects:
            # A read through memory the pointer analysis could not
            # resolve (e.g. a pointer fetched from an externally mapped
            # region): the slice cannot be extended to an input channel
            # -- Pythia's complex-interprocedural-aliasing limitation.
            result.complex_interprocedural = True
            return
        for obj in objects:
            self._visit_object(obj, depth, result, worklist)

    def _visit_object(
        self,
        obj: MemObject,
        depth: int,
        result: BranchSlice,
        worklist: List[Tuple[Value, int]],
    ) -> None:
        if obj in result.variables:
            return
        result.variables.add(obj)
        if obj.kind == "arg":
            # Memory opaque to this module position: Pythia's complex
            # interprocedural aliasing case.
            result.complex_interprocedural = True
            return
        for mdef in self.memdu.defs_of_object(obj):
            if mdef.is_input_channel:
                result.input_channels.append((mdef.ic_site, depth + 1))
                continue
            store = mdef.inst
            assert isinstance(store, Store)
            if self.stop_at_pointer_arithmetic and self._pointer_is_computed(
                store.pointer
            ):
                result.terminated_at.append(store)
                continue
            result.values.add(store)
            self._push(worklist, store.value, depth + 1)
            self._push(worklist, store.pointer, depth + 1)

    @staticmethod
    def _pointer_is_computed(pointer: Value) -> bool:
        """True when an access pointer came from DFI-hostile computation."""
        seen: Set[int] = set()
        while isinstance(pointer, (GetElementPtr, Cast)) and id(pointer) not in seen:
            seen.add(id(pointer))
            if isinstance(pointer, GetElementPtr) and dfi_hostile_gep(pointer):
                return True
            pointer = pointer.operands[0]
        return False

    # -- interprocedural extension ------------------------------------------------------

    def _visit_argument(
        self,
        argument: Argument,
        depth: int,
        result: BranchSlice,
        worklist: List[Tuple[Value, int]],
    ) -> None:
        call_sites = self.callgraph.call_sites_of(argument.function)
        if not call_sites:
            return
        for call in call_sites:
            if argument.index < len(call.args):
                self._push(worklist, call.args[argument.index], depth + 1)

    def _visit_call(
        self,
        call: Call,
        depth: int,
        result: BranchSlice,
        worklist: List[Tuple[Value, int]],
    ) -> None:
        callee = call.callee
        if callee.is_declaration:
            from .input_channels import channel_kind_of

            if channel_kind_of(callee) is not None:
                site = self._site_for_call(call)
                if site is not None:
                    result.input_channels.append((site, depth))
            # The result of a library call depends on the memory its
            # pointer arguments reference (strlen, strncmp, ...).
            for arg in call.args:
                self._push(worklist, arg, depth)
                if isinstance(arg.type, PointerType):
                    for obj in self.alias.points_to(arg):
                        self._visit_object(obj, depth, result, worklist)
            return
        # Defined callee: the value flows from its return statements.
        for block in callee.blocks:
            term = block.terminator
            if isinstance(term, Ret) and term.value is not None:
                self._push(worklist, term.value, depth + 1)
        for arg in call.args:
            self._push(worklist, arg, depth + 1)

    def _site_for_call(self, call: Call) -> Optional[InputChannelSite]:
        return self._site_by_call.get(id(call))


@dataclass
class ForwardSlice:
    """Everything reachable forward from input-channel writes."""

    sites: List[InputChannelSite]
    values: Set[Instruction] = field(default_factory=set)
    variables: Set[MemObject] = field(default_factory=set)

    @property
    def length(self) -> int:
        return len(self.values)


class ForwardSlicer:
    """Input-channel construction: forward slices from IC writes.

    Starting from the objects an input channel writes, the walk follows
    loads of those objects, every computation on the loaded values, and
    stores that propagate tainted values into further objects --
    transitively, module-wide.
    """

    def __init__(
        self,
        module: Module,
        alias: Optional[AliasAnalysis] = None,
        channels: Optional[InputChannelAnalysis] = None,
        memdu: Optional[MemoryDefUse] = None,
        max_visits: int = 50000,
    ):
        self.module = module
        self.alias = alias or AliasAnalysis(module)
        self.channels = channels or InputChannelAnalysis(module)
        self.memdu = memdu or MemoryDefUse(module, self.alias, self.channels)

        self.max_visits = max_visits

    def slice_site(self, site: InputChannelSite) -> ForwardSlice:
        """Forward slice of one IC call site."""
        return self._slice([site])

    def slice_all(self) -> ForwardSlice:
        """Forward slice of every IC in the module (the full tainted set)."""
        return self._slice(list(self.channels.sites))

    def _slice(self, sites: List[InputChannelSite]) -> ForwardSlice:
        result = ForwardSlice(sites=sites)
        tainted_objects: Set[MemObject] = set()
        worklist: List[Value] = []
        for site in sites:
            for ptr in site.written_pointers:
                tainted_objects |= self.alias.points_to(ptr)
            if site.writes_return:
                tainted_objects |= self.alias.points_to(site.call)
                worklist.append(site.call)
        result.variables |= tainted_objects

        visited: Set[int] = set()
        pending_objects = list(tainted_objects)
        visits = 0
        while worklist or pending_objects:
            visits += 1
            if visits > self.max_visits:
                break
            if pending_objects:
                obj = pending_objects.pop()
                for load in self.memdu.loads_by_object.get(obj, []):
                    if id(load) not in visited:
                        visited.add(id(load))
                        result.values.add(load)
                        worklist.extend(load.users)
                continue
            value = worklist.pop()
            if not isinstance(value, Instruction) or id(value) in visited:
                continue
            visited.add(id(value))
            result.values.add(value)
            if isinstance(value, Store):
                # Taint propagates into the stored-to objects.
                for obj in self.alias.points_to(value.pointer):
                    if obj not in result.variables:
                        result.variables.add(obj)
                        pending_objects.append(obj)
                continue
            worklist.extend(value.users)
        return result
