"""Andersen-style may-alias analysis.

The paper's algorithms all "perform alias analysis to handle pointer
variables": branch decomposition follows the may-aliases of pointers in
a slice, and the interprocedural-overflow handling checks whether a
by-reference argument may point at a vulnerable variable.

This is a classic inclusion-based (Andersen) points-to analysis:

- **memory objects** are allocation sites -- allocas, globals, heap
  allocation calls (``malloc``/``calloc``/``mmap``/...), and one opaque
  summary object per pointer-typed formal argument (standing for
  whatever the caller passes in);
- constraints are derived field-insensitively from ``gep``, ``load``,
  ``store``, ``phi``, ``select``, casts and direct calls;
- the constraint system is solved to a fixpoint with a worklist.

Context- and field-insensitivity are deliberate: they match the "LLVM
in-built alias analyses" granularity the paper builds on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    Call,
    Cast,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Module
from ..ir.types import PointerType
from ..ir.values import Argument, Constant, GlobalVariable, Value

#: Library calls whose result is a fresh heap object.
HEAP_ALLOCATORS = ("malloc", "calloc", "realloc", "mmap", "pythia_secure_malloc")


class MemObject:
    """An abstract memory object (allocation site or argument summary)."""

    __slots__ = ("kind", "anchor", "label")

    def __init__(self, kind: str, anchor: object, label: str):
        self.kind = kind  # "stack" | "global" | "heap" | "arg"
        self.anchor = anchor
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemObject {self.kind}:{self.label}>"

    @property
    def is_stack(self) -> bool:
        return self.kind == "stack"

    @property
    def is_heap(self) -> bool:
        return self.kind == "heap"


class AliasAnalysis:
    """Module-wide Andersen points-to solver with an alias query API."""

    def __init__(self, module: Module):
        self.module = module
        #: points-to sets of pointer-valued SSA values
        self.points_to_sets: Dict[Value, Set[MemObject]] = {}
        #: what each object's pointer *fields* may point to (field-insensitive)
        self.pointees: Dict[MemObject, Set[MemObject]] = {}
        self.objects: List[MemObject] = []
        self._object_for_anchor: Dict[int, MemObject] = {}
        self._copy_edges: Dict[Value, Set[Value]] = {}
        self._loads: List[Tuple[Value, Value]] = []  # (result, pointer)
        self._stores: List[Tuple[Value, Value]] = []  # (stored, pointer)
        #: frozen points-to sets, built on first query (the solver is
        #: done by then); passes call ``points_to`` per instruction, so
        #: freezing a fresh set every call dominated their runtime
        self._frozen: Dict[Value, FrozenSet[MemObject]] = {}
        self._build()
        self._solve()

    # -- object creation ----------------------------------------------------------

    def _object(self, kind: str, anchor: object, label: str) -> MemObject:
        key = id(anchor)
        existing = self._object_for_anchor.get(key)
        if existing is not None:
            return existing
        obj = MemObject(kind, anchor, label)
        self._object_for_anchor[key] = obj
        self.objects.append(obj)
        self.pointees[obj] = set()
        return obj

    def object_for(self, anchor: object) -> Optional[MemObject]:
        """The memory object created for an alloca/global/call, if any."""
        return self._object_for_anchor.get(id(anchor))

    # -- constraint generation ----------------------------------------------------------

    def _pts(self, value: Value) -> Set[MemObject]:
        return self.points_to_sets.setdefault(value, set())

    def _copy(self, dst: Value, src: Value) -> None:
        self._copy_edges.setdefault(src, set()).add(dst)

    def _build(self) -> None:
        for gvar in self.module.globals.values():
            obj = self._object("global", gvar, f"@{gvar.name}")
            self._pts(gvar).add(obj)

        # Functions with internal callers get their argument points-to
        # sets from the call edges below; only *entry points* (functions
        # never called inside the module) need opaque argument-summary
        # objects standing for whatever an external caller passes.
        called = {
            inst.callee
            for function in self.module.defined_functions()
            for inst in function.instructions()
            if isinstance(inst, Call)
        }
        for function in self.module.defined_functions():
            if function not in called:
                for argument in function.args:
                    if isinstance(argument.type, PointerType):
                        obj = self._object(
                            "arg", argument, f"@{function.name}:%{argument.name}"
                        )
                        self._pts(argument).add(obj)
            for inst in function.instructions():
                self._constrain(function, inst)

        # Direct-call parameter/return binding (context-insensitive).
        for function in self.module.defined_functions():
            for inst in function.instructions():
                if not isinstance(inst, Call):
                    continue
                callee = inst.callee
                if callee.is_declaration:
                    continue
                for formal, actual in zip(callee.args, inst.args):
                    if isinstance(formal.type, PointerType):
                        self._copy(formal, actual)
                if isinstance(inst.type, PointerType):
                    for ret in self._returns(callee):
                        self._copy(inst, ret)

    @staticmethod
    def _returns(function: Function) -> Iterable[Value]:
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, Ret) and term.value is not None:
                yield term.value

    def _constrain(self, function: Function, inst: Instruction) -> None:
        from ..ir.instructions import Alloca

        if isinstance(inst, Alloca):
            obj = self._object("stack", inst, f"@{function.name}:%{inst.name}")
            self._pts(inst).add(obj)
        elif isinstance(inst, GetElementPtr):
            # Field-insensitive: the derived pointer aliases the base object.
            self._copy(inst, inst.pointer)
        elif isinstance(inst, Cast):
            if isinstance(inst.type, PointerType) or isinstance(
                inst.value.type, PointerType
            ):
                self._copy(inst, inst.value)
        elif isinstance(inst, Phi):
            if isinstance(inst.type, PointerType):
                for value, _ in inst.incomings:
                    self._copy(inst, value)
        elif isinstance(inst, Select):
            if isinstance(inst.type, PointerType):
                self._copy(inst, inst.true_value)
                self._copy(inst, inst.false_value)
        elif isinstance(inst, Load):
            if isinstance(inst.type, PointerType):
                self._loads.append((inst, inst.pointer))
        elif isinstance(inst, Store):
            if isinstance(inst.value.type, PointerType):
                self._stores.append((inst.value, inst.pointer))
        elif isinstance(inst, Call):
            if inst.callee.is_declaration and inst.callee.name in HEAP_ALLOCATORS:
                obj = self._object(
                    "heap", inst, f"@{function.name}:%{inst.name or 'heap'}"
                )
                self._pts(inst).add(obj)

    # -- fixpoint solver ----------------------------------------------------------

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            # 1. propagate along copy edges
            for src, dsts in self._copy_edges.items():
                src_pts = self._pts(src)
                if not src_pts:
                    continue
                for dst in dsts:
                    dst_pts = self._pts(dst)
                    before = len(dst_pts)
                    dst_pts |= src_pts
                    if len(dst_pts) != before:
                        changed = True
            # 2. store edges: *(ptr) ⊇ pts(value)
            for value, ptr in self._stores:
                value_pts = self._pts(value)
                if not value_pts:
                    continue
                for obj in self._pts(ptr):
                    before = len(self.pointees[obj])
                    self.pointees[obj] |= value_pts
                    if len(self.pointees[obj]) != before:
                        changed = True
            # 3. load edges: pts(result) ⊇ *(ptr)
            for result, ptr in self._loads:
                result_pts = self._pts(result)
                before = len(result_pts)
                for obj in self._pts(ptr):
                    result_pts |= self.pointees[obj]
                if len(result_pts) != before:
                    changed = True

    # -- queries ----------------------------------------------------------

    _EMPTY: FrozenSet[MemObject] = frozenset()

    def points_to(self, value: Value) -> FrozenSet[MemObject]:
        """The set of objects ``value`` may point to."""
        frozen = self._frozen.get(value)
        if frozen is None:
            frozen = frozenset(self.points_to_sets.get(value, ())) or self._EMPTY
            self._frozen[value] = frozen
        return frozen

    def may_alias(self, a: Value, b: Value) -> bool:
        """True when two pointers may reference the same object."""
        return bool(self.points_to(a) & self.points_to(b))

    def must_alias_single(self, value: Value) -> Optional[MemObject]:
        """The single object ``value`` must point to, or ``None``.

        Heap and argument-summary objects stand for many runtime
        objects, so they never qualify.
        """
        pts = self.points_to(value)
        if len(pts) != 1:
            return None
        (obj,) = pts
        return obj if obj.kind in ("stack", "global") else None

    def aliasing_pointers(self, obj: MemObject) -> List[Value]:
        """Every pointer value that may point at ``obj``."""
        return [v for v, pts in self.points_to_sets.items() if obj in pts]
